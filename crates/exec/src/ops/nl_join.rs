//! Block nested-loops join.
//!
//! Nested-loops joins have no preprocessing phase — the outer input is
//! joined as it is read — so per §4.1.3 the framework's estimation here
//! *is* the dne estimator (driver = outer input).

use std::sync::Arc;

use qprog_core::dne::DneEstimator;
use qprog_types::{BatchStatus, QError, QResult, Row, RowBatch, SchemaRef};

use crate::expr::Expr;
use crate::metrics::OpMetrics;
use crate::ops::{BoxedOp, Operator};

/// Join condition for the nested-loops join.
pub enum NlCondition {
    /// Equi-join on single columns (outer col, inner col).
    Equi(usize, usize),
    /// Arbitrary theta predicate over the concatenated (outer ++ inner) row.
    Theta(Expr),
    /// Cross product.
    Cross,
}

/// Nested-loops join: the inner input is materialized once, the outer
/// streams.
pub struct NestedLoopsJoin {
    outer: BoxedOp,
    inner: Option<BoxedOp>,
    condition: NlCondition,
    schema: SchemaRef,
    metrics: Arc<OpMetrics>,
    dne: Option<DneEstimator>,
    inner_rows: Vec<Row>,
    /// Outer row currently being matched against the inner rows.
    current_outer: Option<Row>,
    inner_pos: usize,
    /// Buffered outer rows not yet promoted to `current_outer`. Driver
    /// accounting happens at promotion time, so batching the pull changes
    /// nothing observable.
    outer_buf: Option<RowBatch>,
    outer_pos: usize,
    outer_done: bool,
    /// The output batch filled up just as an inner scan completed: the next
    /// outer row (and its driver accounting) must wait for the next call.
    advance_pending: bool,
    started: bool,
    done: bool,
}

impl NestedLoopsJoin {
    /// New nested-loops join (schema: outer columns then inner columns).
    pub fn new(
        outer: BoxedOp,
        inner: BoxedOp,
        condition: NlCondition,
        metrics: Arc<OpMetrics>,
    ) -> Self {
        let schema = outer.schema().join(&inner.schema()).into_ref();
        NestedLoopsJoin {
            outer,
            inner: Some(inner),
            condition,
            schema,
            metrics,
            dne: None,
            inner_rows: Vec::new(),
            current_outer: None,
            inner_pos: 0,
            outer_buf: None,
            outer_pos: 0,
            outer_done: false,
            advance_pending: false,
            started: false,
            done: false,
        }
    }

    /// Enable dne refinement given the outer input size and the optimizer's
    /// output estimate.
    pub fn with_dne(mut self, outer_size: u64, optimizer_estimate: f64) -> Self {
        self.dne = Some(DneEstimator::new(outer_size, optimizer_estimate));
        self
    }

    fn matches(&self, outer: &Row, inner: &Row) -> QResult<bool> {
        match &self.condition {
            NlCondition::Cross => Ok(true),
            NlCondition::Equi(oc, ic) => {
                let a = outer.get(*oc)?;
                let b = inner.get(*ic)?;
                Ok(a.sql_eq(b).unwrap_or(false))
            }
            NlCondition::Theta(pred) => {
                // Evaluate over the concatenated row so column indices match
                // the output schema.
                let combined = outer.concat(inner);
                pred.eval_predicate(&combined)
            }
        }
    }

    fn advance_outer(&mut self, batch_cap: usize) -> QResult<Option<Row>> {
        if self.outer_buf.is_none() {
            let arity = self.outer.schema().arity();
            self.outer_buf = Some(RowBatch::with_capacity(arity, batch_cap));
        }
        loop {
            let buf = self.outer_buf.as_mut().expect("outer buffer just ensured");
            if self.outer_pos < buf.len() {
                let row = buf.row(self.outer_pos);
                self.outer_pos += 1;
                self.metrics.record_driver(1);
                if let Some(dne) = &mut self.dne {
                    dne.observe_driver(1);
                    self.metrics.set_estimated_total(dne.estimate());
                }
                return Ok(Some(row));
            }
            if self.outer_done {
                return Ok(None);
            }
            buf.clear();
            self.outer_pos = 0;
            let status = self.outer.next_batch(buf)?;
            if status.is_exhausted() {
                self.outer_done = true;
            }
        }
    }
}

impl Operator for NestedLoopsJoin {
    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn next_batch(&mut self, out: &mut RowBatch) -> QResult<BatchStatus> {
        out.clear();
        if self.done {
            return Ok(BatchStatus::Exhausted);
        }
        if !self.started {
            self.started = true;
            let mut inner = self
                .inner
                .take()
                .ok_or_else(|| QError::internal("nested-loops inner input consumed twice"))?;
            let mut scratch = RowBatch::with_capacity(inner.schema().arity(), out.capacity());
            loop {
                let status = inner.next_batch(&mut scratch)?;
                let n = scratch.len();
                if n > 0 {
                    self.metrics.checkpoint(n as u64)?;
                    scratch.append_rows_to(&mut self.inner_rows);
                }
                if status.is_exhausted() {
                    break;
                }
            }
            self.current_outer = self.advance_outer(out.capacity())?;
        }
        if self.advance_pending {
            self.advance_pending = false;
            self.current_outer = self.advance_outer(out.capacity())?;
        }
        loop {
            let Some(outer) = self.current_outer.take() else {
                self.done = true;
                self.metrics.mark_finished();
                return Ok(BatchStatus::Exhausted);
            };
            while self.inner_pos < self.inner_rows.len() {
                if out.is_full() {
                    self.current_outer = Some(outer);
                    return Ok(BatchStatus::HasMore);
                }
                let i = self.inner_pos;
                self.inner_pos += 1;
                if self.matches(&outer, &self.inner_rows[i])? {
                    out.push_concat(outer.values(), self.inner_rows[i].values());
                    self.metrics.record_emitted();
                    if let Some(dne) = &mut self.dne {
                        dne.observe_output(1);
                        self.metrics.set_estimated_total(dne.estimate());
                    }
                }
            }
            self.inner_pos = 0;
            if out.is_full() {
                self.advance_pending = true;
                return Ok(BatchStatus::HasMore);
            }
            self.current_outer = self.advance_outer(out.capacity())?;
        }
    }

    fn name(&self) -> &str {
        "nl_join"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::ops::test_util::{drain, int_table};
    use crate::ops::TableScan;

    fn scan1(name: &str, vals: &[i64]) -> BoxedOp {
        let t = int_table(name, "k", vals).into_shared();
        Box::new(TableScan::new(t, OpMetrics::with_initial_estimate(0.0)))
    }

    #[test]
    fn equi_join_matches_hash_join_semantics() {
        let r = [1i64, 1, 2, 3];
        let s = [1i64, 2, 2];
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = NestedLoopsJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            NlCondition::Equi(0, 0),
            Arc::clone(&m),
        );
        let rows = drain(&mut j);
        assert_eq!(rows.len(), 4); // 1×1 twice + 2×2 twice
        assert_eq!(m.emitted(), 4);
        assert!(m.is_finished());
    }

    #[test]
    fn theta_join() {
        let r = [1i64, 5];
        let s = [2i64, 3];
        let m = OpMetrics::with_initial_estimate(0.0);
        // r.k < s.k: concatenated row cols are (outer=0, inner=1)
        let pred = Expr::binary(BinOp::Lt, Expr::col(0), Expr::col(1));
        let mut j =
            NestedLoopsJoin::new(scan1("r", &r), scan1("s", &s), NlCondition::Theta(pred), m);
        let rows = drain(&mut j);
        assert_eq!(rows.len(), 2); // (1,2), (1,3)
    }

    #[test]
    fn cross_product() {
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = NestedLoopsJoin::new(
            scan1("r", &[1, 2]),
            scan1("s", &[10, 20, 30]),
            NlCondition::Cross,
            m,
        );
        assert_eq!(drain(&mut j).len(), 6);
    }

    #[test]
    fn dne_tracks_outer_progress() {
        // uniform matching: each outer row matches exactly one inner row
        let r: Vec<i64> = (0..100).collect();
        let s: Vec<i64> = (0..100).collect();
        let m = OpMetrics::with_initial_estimate(5.0);
        let mut j = NestedLoopsJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            NlCondition::Equi(0, 0),
            Arc::clone(&m),
        )
        .with_dne(100, 5.0);
        let mut src = crate::ops::RowSource::new(&mut j);
        let mut seen = 0;
        while let Some(_row) = src.next_row().unwrap() {
            seen += 1;
            if seen == 50 {
                let e = m.estimated_total();
                assert!((80.0..=120.0).contains(&e), "mid estimate {e}");
            }
        }
        assert_eq!(seen, 100);
        assert_eq!(m.estimated_total(), 100.0);
    }

    #[test]
    fn null_keys_do_not_equi_join() {
        use qprog_types::{DataType, Field, Schema, Value};
        let mut t = qprog_storage::Table::new(
            "n",
            Schema::new(vec![Field::new("k", DataType::Int64).with_nullable(true)]),
        );
        t.push(Row::new(vec![Value::Null])).unwrap();
        t.push(Row::new(vec![Value::Int64(3)])).unwrap();
        let t = t.into_shared();
        let outer: BoxedOp = Box::new(TableScan::new(
            Arc::clone(&t),
            OpMetrics::with_initial_estimate(0.0),
        ));
        let inner: BoxedOp = Box::new(TableScan::new(t, OpMetrics::with_initial_estimate(0.0)));
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = NestedLoopsJoin::new(outer, inner, NlCondition::Equi(0, 0), m);
        assert_eq!(drain(&mut j).len(), 1);
    }

    #[test]
    fn empty_inner() {
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j =
            NestedLoopsJoin::new(scan1("r", &[1, 2]), scan1("s", &[]), NlCondition::Cross, m);
        assert!(crate::ops::RowSource::new(&mut j)
            .next_row()
            .unwrap()
            .is_none());
    }

    #[test]
    fn wide_batches_match_strict_mode() {
        let r: Vec<i64> = (0..200).collect();
        let s: Vec<i64> = (0..200).rev().collect();
        let run = |cap: usize| {
            let m = OpMetrics::with_initial_estimate(0.0);
            let mut j =
                NestedLoopsJoin::new(scan1("r", &r), scan1("s", &s), NlCondition::Equi(0, 0), m);
            crate::ops::test_util::drain_batched(&mut j, cap)
                .iter()
                .map(|row| row.to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(64));
    }
}
