//! Hash aggregation (GROUP BY) with online group-count estimation (§4.2).
//!
//! The consume phase sees the entire input before any group is emitted —
//! the preprocessing window in which the paper's GEE/MLE estimators (with
//! the γ² chooser) refine the output cardinality. When the input is the
//! clustered output of a join on the grouping attribute, estimation is
//! instead *pushed down* into that join (see
//! [`HashJoin::with_agg_pushdown`](crate::ops::hash_join::HashJoin::with_agg_pushdown))
//! and this operator merely publishes the shared tracker's estimates.

use std::sync::Arc;

use crate::sync::Mutex;
use qprog_core::distinct::DistinctTracker;
use qprog_core::fx::FxHashMap;
use qprog_types::{
    BatchStatus, CompositeKey, DataType, Key, QError, QResult, Row, RowBatch, SchemaRef, Value,
};

use crate::metrics::OpMetrics;
use crate::ops::sort::{compare_rows, SortKey};
use crate::ops::{BoxedOp, Operator};
use crate::trace::Phase;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)`.
    CountStar,
    /// `COUNT(col)` — non-null values.
    Count,
    /// `SUM(col)`.
    Sum,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
    /// `AVG(col)`.
    Avg,
}

impl AggFunc {
    /// Output type given the input column type.
    pub fn output_type(self, input: Option<DataType>) -> DataType {
        match self {
            AggFunc::CountStar | AggFunc::Count => DataType::Int64,
            AggFunc::Avg => DataType::Float64,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => input.unwrap_or(DataType::Int64),
        }
    }
}

/// One aggregate to compute: function plus input column (`None` only for
/// `COUNT(*)`).
#[derive(Debug, Clone, Copy)]
pub struct AggSpec {
    pub func: AggFunc,
    pub col: Option<usize>,
}

/// Group-count estimation strategy.
pub enum AggEstimation {
    /// No estimation.
    Off,
    /// Observe the grouping key online (input in random order);
    /// `input_size_hint` is the known or estimated input size.
    Track { input_size_hint: u64 },
    /// Publish estimates from a tracker fed by a join below (push-down).
    Pushdown(Arc<Mutex<DistinctTracker>>),
}

#[derive(Debug, Clone)]
enum Acc {
    Count(u64),
    SumI { sum: i128, seen: bool },
    SumF { sum: f64, seen: bool },
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: u64 },
}

impl Acc {
    fn new(func: AggFunc, input_type: Option<DataType>) -> Acc {
        match func {
            AggFunc::CountStar | AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => match input_type {
                Some(DataType::Float64) => Acc::SumF {
                    sum: 0.0,
                    seen: false,
                },
                _ => Acc::SumI {
                    sum: 0,
                    seen: false,
                },
            },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
        }
    }

    fn update(&mut self, func: AggFunc, row: &Row, col: Option<usize>) -> QResult<()> {
        let value = match col {
            Some(c) => Some(row.get(c)?),
            None => None,
        };
        self.update_value(func, value)
    }

    /// Core accumulator step over an already-fetched value (the batch path
    /// reads column-major storage directly, without materializing rows).
    fn update_value(&mut self, func: AggFunc, value: Option<&Value>) -> QResult<()> {
        match (self, func) {
            (Acc::Count(n), AggFunc::CountStar) => *n += 1,
            (Acc::Count(n), AggFunc::Count) => {
                if value.is_some_and(|v| !v.is_null()) {
                    *n += 1;
                }
            }
            (Acc::SumI { sum, seen }, _) => {
                if let Some(v) = value.filter(|v| !v.is_null()) {
                    *sum += v.as_i64()? as i128;
                    *seen = true;
                }
            }
            (Acc::SumF { sum, seen }, _) => {
                if let Some(v) = value.filter(|v| !v.is_null()) {
                    *sum += v.as_f64()?;
                    *seen = true;
                }
            }
            (Acc::Min(cur), _) => {
                if let Some(v) = value.filter(|v| !v.is_null()) {
                    let replace = cur
                        .as_ref()
                        .map(|c| v.total_cmp(c) == std::cmp::Ordering::Less)
                        .unwrap_or(true);
                    if replace {
                        *cur = Some(v.clone());
                    }
                }
            }
            (Acc::Max(cur), _) => {
                if let Some(v) = value.filter(|v| !v.is_null()) {
                    let replace = cur
                        .as_ref()
                        .map(|c| v.total_cmp(c) == std::cmp::Ordering::Greater)
                        .unwrap_or(true);
                    if replace {
                        *cur = Some(v.clone());
                    }
                }
            }
            (Acc::Avg { sum, n }, _) => {
                if let Some(v) = value.filter(|v| !v.is_null()) {
                    *sum += v.as_f64()?;
                    *n += 1;
                }
            }
            (acc, f) => {
                return Err(QError::internal(format!(
                    "accumulator {acc:?} does not match function {f:?}"
                )))
            }
        }
        Ok(())
    }

    fn finalize(self) -> Value {
        match self {
            Acc::Count(n) => Value::Int64(n as i64),
            Acc::SumI { sum, seen } => {
                if seen {
                    Value::Int64(sum as i64)
                } else {
                    Value::Null
                }
            }
            Acc::SumF { sum, seen } => {
                if seen {
                    Value::Float64(sum)
                } else {
                    Value::Null
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Value::Null),
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float64(sum / n as f64)
                }
            }
        }
    }
}

/// Fold a *group-sorted* row run into one output row per group (group
/// values then finalized aggregates). Shared by the sort-based aggregate;
/// a global aggregation (`group_cols` empty) over an empty input still
/// produces one row.
pub(crate) fn accumulate_sorted_groups(
    rows: &[Row],
    group_cols: &[usize],
    aggs: &[AggSpec],
    input_types: &[Option<DataType>],
) -> QResult<Vec<Row>> {
    let new_accs = || -> Vec<Acc> {
        aggs.iter()
            .zip(input_types)
            .map(|(a, t)| Acc::new(a.func, *t))
            .collect()
    };
    let finalize = |group_vals: Row, accs: Vec<Acc>| -> Row {
        let mut vals = group_vals.into_values();
        vals.extend(accs.into_iter().map(Acc::finalize));
        Row::new(vals)
    };
    let mut out = Vec::new();
    let mut current: Option<(CompositeKey, Row, Vec<Acc>)> = None;
    for row in rows {
        let key = row.composite_key(group_cols)?;
        let same_group = current.as_ref().is_some_and(|(k, _, _)| *k == key);
        if !same_group {
            if let Some((_, gv, accs)) = current.take() {
                out.push(finalize(gv, accs));
            }
            current = Some((key, row.project(group_cols)?, new_accs()));
        }
        let (_, _, accs) = current.as_mut().expect("group just ensured");
        for (i, spec) in aggs.iter().enumerate() {
            accs[i].update(spec.func, row, spec.col)?;
        }
    }
    if let Some((_, gv, accs)) = current.take() {
        out.push(finalize(gv, accs));
    }
    if group_cols.is_empty() && out.is_empty() {
        out.push(finalize(Row::default(), new_accs()));
    }
    Ok(out)
}

enum AState {
    Consuming,
    Emitting { rows: std::vec::IntoIter<Row> },
    Done,
}

/// Hash-based GROUP BY.
///
/// With no group columns, behaves as a global aggregation producing exactly
/// one row (even on empty input). Group rows are emitted in sorted group-key
/// order for determinism.
pub struct HashAggregate {
    input: BoxedOp,
    group_cols: Vec<usize>,
    aggs: Vec<AggSpec>,
    schema: SchemaRef,
    metrics: Arc<OpMetrics>,
    estimation: AggEstimation,
    tracker: Option<DistinctTracker>,
    state: AState,
}

impl HashAggregate {
    /// New aggregation; `schema` is the output schema (group columns then
    /// aggregate results) computed by the planner.
    pub fn new(
        input: BoxedOp,
        group_cols: Vec<usize>,
        aggs: Vec<AggSpec>,
        schema: SchemaRef,
        estimation: AggEstimation,
        metrics: Arc<OpMetrics>,
    ) -> Self {
        let tracker = match (&estimation, group_cols.len()) {
            (AggEstimation::Track { input_size_hint }, 1) => {
                Some(DistinctTracker::new(*input_size_hint))
            }
            _ => None,
        };
        HashAggregate {
            input,
            group_cols,
            aggs,
            schema,
            metrics,
            estimation,
            tracker,
            state: AState::Consuming,
        }
    }

    /// Replace the internal distinct tracker (e.g. to force a specific
    /// estimator or recomputation interval in experiments). Only meaningful
    /// with single-column grouping; ignored otherwise.
    pub fn with_tracker(mut self, tracker: DistinctTracker) -> Self {
        if self.group_cols.len() == 1 {
            self.tracker = Some(tracker);
        }
        self
    }

    fn consume(&mut self, batch_cap: usize) -> QResult<Vec<Row>> {
        self.metrics.trace_phase(Phase::Init, Phase::Accumulate);
        let input_schema = self.input.schema();
        let input_types: Vec<Option<DataType>> = self
            .aggs
            .iter()
            .map(|a| {
                a.col
                    .and_then(|c| input_schema.field(c).ok().map(|f| f.data_type))
            })
            .collect();
        for spec in &self.aggs {
            if let Some(c) = spec.col {
                if c >= input_schema.arity() {
                    return Err(QError::internal(format!(
                        "aggregate column {c} out of bounds for arity {}",
                        input_schema.arity()
                    )));
                }
            }
        }
        let mut groups: FxHashMap<CompositeKey, (Row, Vec<Acc>)> = FxHashMap::default();
        // Reused per-row key scratch: hits resolve through a borrowed
        // `&[Key]` lookup (see `CompositeKey: Borrow<[Key]>`), so only the
        // first row of each group allocates a boxed key.
        let mut key_buf: Vec<Key> = Vec::with_capacity(self.group_cols.len());
        let mut scratch = RowBatch::with_capacity(input_schema.arity(), batch_cap);
        loop {
            let status = self.input.next_batch(&mut scratch)?;
            let n = scratch.len();
            if n > 0 {
                self.metrics.checkpoint(n as u64)?;
                qprog_fault::fail_point!("exec/agg/accumulate");
                self.metrics.record_driver(n as u64);
            }
            for r in 0..n {
                key_buf.clear();
                for &c in &self.group_cols {
                    key_buf.push(scratch.key(r, c)?);
                }
                if let Some(tracker) = &mut self.tracker {
                    tracker.observe(&key_buf[0]);
                }
                if let Some((_, accs)) = groups.get_mut(key_buf.as_slice()) {
                    for (i, spec) in self.aggs.iter().enumerate() {
                        let value = spec.col.map(|c| scratch.value(r, c));
                        accs[i].update_value(spec.func, value)?;
                    }
                } else {
                    let group_vals = Row::new(
                        self.group_cols
                            .iter()
                            .map(|&c| scratch.value(r, c).clone())
                            .collect(),
                    );
                    let mut accs: Vec<Acc> = self
                        .aggs
                        .iter()
                        .zip(&input_types)
                        .map(|(a, t)| Acc::new(a.func, *t))
                        .collect();
                    for (i, spec) in self.aggs.iter().enumerate() {
                        let value = spec.col.map(|c| scratch.value(r, c));
                        accs[i].update_value(spec.func, value)?;
                    }
                    let key = CompositeKey(key_buf.as_slice().into());
                    groups.insert(key, (group_vals, accs));
                }
            }
            // Estimates are published once per batch, after K_i has been
            // advanced for the whole batch: a concurrent fraction sample
            // never sees N_i rise while K_i is stalled mid-batch (the
            // monotonicity contract). At batch_rows = 1 this is the exact
            // per-row publish sequence of the serial engine.
            if n > 0 {
                if let Some(tracker) = &self.tracker {
                    self.metrics.set_estimated_total(tracker.estimate());
                } else if let AggEstimation::Pushdown(shared) = &self.estimation {
                    self.metrics.set_estimated_total(shared.lock().estimate());
                }
            }
            if status.is_exhausted() {
                break;
            }
        }
        // Global aggregation over an empty input still yields one row.
        if self.group_cols.is_empty() && groups.is_empty() {
            let accs: Vec<Acc> = self
                .aggs
                .iter()
                .zip(&input_types)
                .map(|(a, t)| Acc::new(a.func, *t))
                .collect();
            groups.insert(CompositeKey(Box::new([])), (Row::default(), accs));
        }
        // The consume phase has enumerated the groups: exact cardinality.
        self.metrics.set_estimated_total(groups.len() as f64);

        let mut out: Vec<Row> = groups
            .into_values()
            .map(|(group_vals, accs)| {
                let mut vals = group_vals.into_values();
                vals.extend(accs.into_iter().map(Acc::finalize));
                Row::new(vals)
            })
            .collect();
        let sort_keys: Vec<SortKey> = (0..self.group_cols.len())
            .map(|col| SortKey {
                col,
                ascending: true,
            })
            .collect();
        out.sort_by(|a, b| compare_rows(a, b, &sort_keys));
        Ok(out)
    }

    /// The internal tracker (for tests and experiment harnesses).
    pub fn tracker(&self) -> Option<&DistinctTracker> {
        self.tracker.as_ref()
    }
}

impl Operator for HashAggregate {
    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn next_batch(&mut self, out: &mut RowBatch) -> QResult<BatchStatus> {
        out.clear();
        loop {
            match &mut self.state {
                AState::Consuming => {
                    let rows = self.consume(out.capacity())?;
                    self.metrics.trace_phase(Phase::Accumulate, Phase::Emit);
                    self.state = AState::Emitting {
                        rows: rows.into_iter(),
                    };
                }
                AState::Emitting { rows } => {
                    while !out.is_full() {
                        match rows.next() {
                            Some(r) => out.push_row(r),
                            None => {
                                self.metrics.record_emitted_n(out.len() as u64);
                                self.metrics.mark_finished();
                                self.state = AState::Done;
                                return Ok(BatchStatus::Exhausted);
                            }
                        }
                    }
                    self.metrics.record_emitted_n(out.len() as u64);
                    return Ok(BatchStatus::HasMore);
                }
                AState::Done => return Ok(BatchStatus::Exhausted),
            }
        }
    }

    fn name(&self) -> &str {
        "hash_agg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::test_util::{col_i64, drain, int2_table};
    use crate::ops::TableScan;
    use qprog_types::{Field, Schema};

    fn scan2(vals: &[(i64, i64)]) -> BoxedOp {
        let t = int2_table("t", ("g", "v"), vals).into_shared();
        Box::new(TableScan::new(t, OpMetrics::with_initial_estimate(0.0)))
    }

    fn out_schema(names: &[(&str, DataType)]) -> SchemaRef {
        Schema::new(
            names
                .iter()
                .map(|(n, t)| Field::new(*n, *t).with_nullable(true))
                .collect(),
        )
        .into_ref()
    }

    #[test]
    fn group_by_with_all_functions() {
        let data = [(1i64, 10i64), (1, 20), (2, 5), (2, 15), (2, 40)];
        let m = OpMetrics::with_initial_estimate(0.0);
        let schema = out_schema(&[
            ("g", DataType::Int64),
            ("cnt", DataType::Int64),
            ("sum", DataType::Int64),
            ("min", DataType::Int64),
            ("max", DataType::Int64),
            ("avg", DataType::Float64),
        ]);
        let mut agg = HashAggregate::new(
            scan2(&data),
            vec![0],
            vec![
                AggSpec {
                    func: AggFunc::CountStar,
                    col: None,
                },
                AggSpec {
                    func: AggFunc::Sum,
                    col: Some(1),
                },
                AggSpec {
                    func: AggFunc::Min,
                    col: Some(1),
                },
                AggSpec {
                    func: AggFunc::Max,
                    col: Some(1),
                },
                AggSpec {
                    func: AggFunc::Avg,
                    col: Some(1),
                },
            ],
            schema,
            AggEstimation::Off,
            Arc::clone(&m),
        );
        let rows = drain(&mut agg);
        assert_eq!(rows.len(), 2);
        // sorted by group key: g=1 first
        assert_eq!(col_i64(&rows, 0), vec![1, 2]);
        assert_eq!(col_i64(&rows, 1), vec![2, 3]); // counts
        assert_eq!(col_i64(&rows, 2), vec![30, 60]); // sums
        assert_eq!(col_i64(&rows, 3), vec![10, 5]); // mins
        assert_eq!(col_i64(&rows, 4), vec![20, 40]); // maxs
        assert_eq!(rows[0].get(5).unwrap().as_f64().unwrap(), 15.0);
        assert_eq!(rows[1].get(5).unwrap().as_f64().unwrap(), 20.0);
        assert_eq!(m.emitted(), 2);
        assert_eq!(m.estimated_total(), 2.0);
    }

    #[test]
    fn global_aggregation_on_empty_input() {
        let m = OpMetrics::with_initial_estimate(0.0);
        let schema = out_schema(&[("cnt", DataType::Int64), ("sum", DataType::Int64)]);
        let mut agg = HashAggregate::new(
            scan2(&[]),
            vec![],
            vec![
                AggSpec {
                    func: AggFunc::CountStar,
                    col: None,
                },
                AggSpec {
                    func: AggFunc::Sum,
                    col: Some(1),
                },
            ],
            schema,
            AggEstimation::Off,
            m,
        );
        let rows = drain(&mut agg);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0).unwrap().as_i64().unwrap(), 0);
        assert!(rows[0].get(1).unwrap().is_null());
    }

    #[test]
    fn count_ignores_nulls_sum_of_nothing_is_null() {
        use qprog_types::Row as TRow;
        let mut t = qprog_storage::Table::new(
            "t",
            Schema::new(vec![
                Field::new("g", DataType::Int64),
                Field::new("v", DataType::Int64).with_nullable(true),
            ]),
        );
        t.push(TRow::new(vec![Value::Int64(1), Value::Null]))
            .unwrap();
        t.push(TRow::new(vec![Value::Int64(1), Value::Int64(4)]))
            .unwrap();
        let scan: BoxedOp = Box::new(TableScan::new(
            t.into_shared(),
            OpMetrics::with_initial_estimate(0.0),
        ));
        let m = OpMetrics::with_initial_estimate(0.0);
        let schema = out_schema(&[("g", DataType::Int64), ("cnt", DataType::Int64)]);
        let mut agg = HashAggregate::new(
            scan,
            vec![0],
            vec![AggSpec {
                func: AggFunc::Count,
                col: Some(1),
            }],
            schema,
            AggEstimation::Off,
            m,
        );
        let rows = drain(&mut agg);
        assert_eq!(rows[0].get(1).unwrap().as_i64().unwrap(), 1);
    }

    #[test]
    fn tracking_estimation_publishes_and_finishes_exact() {
        let data: Vec<(i64, i64)> = (0..500).map(|i| (i % 20, i)).collect();
        let m = OpMetrics::with_initial_estimate(0.0);
        let schema = out_schema(&[("g", DataType::Int64), ("cnt", DataType::Int64)]);
        let mut agg = HashAggregate::new(
            scan2(&data),
            vec![0],
            vec![AggSpec {
                func: AggFunc::CountStar,
                col: None,
            }],
            schema,
            AggEstimation::Track {
                input_size_hint: 500,
            },
            Arc::clone(&m),
        );
        let rows = drain(&mut agg);
        assert_eq!(rows.len(), 20);
        assert_eq!(m.estimated_total(), 20.0);
        assert_eq!(agg.tracker().unwrap().groups_seen(), 20);
    }

    #[test]
    fn multi_column_grouping() {
        let t = int2_table("t", ("a", "b"), &[(1, 1), (1, 2), (1, 1), (2, 1)]).into_shared();
        let scan: BoxedOp = Box::new(TableScan::new(t, OpMetrics::with_initial_estimate(0.0)));
        let m = OpMetrics::with_initial_estimate(0.0);
        let schema = out_schema(&[
            ("a", DataType::Int64),
            ("b", DataType::Int64),
            ("cnt", DataType::Int64),
        ]);
        let mut agg = HashAggregate::new(
            scan,
            vec![0, 1],
            vec![AggSpec {
                func: AggFunc::CountStar,
                col: None,
            }],
            schema,
            AggEstimation::Track {
                input_size_hint: 4, // multi-column: tracker is disabled
            },
            m,
        );
        let rows = drain(&mut agg);
        assert_eq!(rows.len(), 3);
        assert!(agg.tracker().is_none());
        assert_eq!(col_i64(&rows, 2), vec![2, 1, 1]);
    }
}
