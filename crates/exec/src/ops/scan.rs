//! Table scans with sample-first block ordering.

use std::sync::Arc;

use qprog_storage::{ScanOrder, Table};
use qprog_types::{QResult, Row, SchemaRef};

use crate::metrics::OpMetrics;
use crate::ops::Operator;

/// Scans a table block by block.
///
/// With a sampling [`ScanOrder`] the scan first delivers a block-level
/// random sample and then the remaining blocks in storage order — the
/// sample-first protocol of the paper's §3 that makes the leading prefix of
/// every base-table stream a genuine random sample.
pub struct TableScan {
    table: Arc<Table>,
    order: ScanOrder,
    name: String,
    metrics: Arc<OpMetrics>,
    /// Simulated per-block I/O latency (see [`with_io_cost`](Self::with_io_cost)).
    io_cost: std::time::Duration,
    /// Position: index into `order.blocks()` and offset within the block.
    block_idx: usize,
    row_offset: usize,
    done: bool,
}

impl TableScan {
    /// Sequential (storage-order) scan.
    pub fn new(table: Arc<Table>, metrics: Arc<OpMetrics>) -> Self {
        let order = ScanOrder::sequential(table.num_blocks());
        TableScan::with_order(table, order, metrics)
    }

    /// Sample-first scan delivering a `fraction` block sample first.
    pub fn sampled(table: Arc<Table>, fraction: f64, seed: u64, metrics: Arc<OpMetrics>) -> Self {
        let order = ScanOrder::for_table(&table, fraction, seed);
        TableScan::with_order(table, order, metrics)
    }

    /// Scan with an explicit block order.
    pub fn with_order(table: Arc<Table>, order: ScanOrder, metrics: Arc<OpMetrics>) -> Self {
        TableScan {
            name: format!("scan({})", table.name()),
            table,
            order,
            metrics,
            io_cost: std::time::Duration::ZERO,
            block_idx: 0,
            row_offset: 0,
            done: false,
        }
    }

    /// Attach a simulated per-block I/O latency (busy-wait, so it is
    /// deterministic at microsecond granularity). Tables here live in
    /// memory; the paper's prototype read from disk, where a block costs a
    /// page read — this knob reproduces that cost model for the overhead
    /// experiments.
    pub fn with_io_cost(mut self, cost: std::time::Duration) -> Self {
        self.io_cost = cost;
        self
    }

    /// The number of leading rows that constitute the random sample
    /// (approximate: whole blocks).
    pub fn sample_rows(&self) -> usize {
        self.order.blocks()[..self.order.sample_blocks()]
            .iter()
            .map(|&b| self.table.block(b).map(|blk| blk.len()).unwrap_or(0))
            .sum()
    }
}

impl Operator for TableScan {
    fn schema(&self) -> SchemaRef {
        Arc::clone(self.table.schema())
    }

    fn next(&mut self) -> QResult<Option<Row>> {
        if self.done {
            return Ok(None);
        }
        loop {
            let Some(&block_id) = self.order.blocks().get(self.block_idx) else {
                self.done = true;
                self.metrics.mark_finished();
                return Ok(None);
            };
            let block = self.table.block(block_id)?;
            if self.row_offset == 0 && !self.io_cost.is_zero() && !block.is_empty() {
                let start = std::time::Instant::now();
                while start.elapsed() < self.io_cost {
                    std::hint::spin_loop();
                }
            }
            if let Some(row) = block.row(self.row_offset) {
                self.metrics.checkpoint(1)?;
                qprog_fault::fail_point!("exec/scan/next");
                self.row_offset += 1;
                self.metrics.record_emitted();
                return Ok(Some(row.clone()));
            }
            self.block_idx += 1;
            self.row_offset = 0;
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::test_util::{col_i64, drain, int_table};
    use std::collections::HashSet;

    fn scan_all(vals: &[i64], fraction: f64) -> (Vec<i64>, usize) {
        let t = int_table("t", "a", vals).into_shared();
        let m = OpMetrics::with_initial_estimate(vals.len() as f64);
        let mut s = TableScan::sampled(Arc::clone(&t), fraction, 7, m);
        let sample = s.sample_rows();
        let rows = drain(&mut s);
        (col_i64(&rows, 0), sample)
    }

    #[test]
    fn sequential_scan_preserves_order() {
        let vals: Vec<i64> = (0..1000).collect();
        let t = int_table("t", "a", &vals).into_shared();
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut s = TableScan::new(t, Arc::clone(&m));
        let rows = drain(&mut s);
        assert_eq!(col_i64(&rows, 0), vals);
        assert_eq!(m.emitted(), 1000);
        assert!(m.is_finished());
        // idempotent end
        assert!(s.next().unwrap().is_none());
    }

    #[test]
    fn sampled_scan_is_a_permutation() {
        let vals: Vec<i64> = (0..2000).collect();
        let (got, sample) = scan_all(&vals, 0.25);
        assert!(sample > 0);
        let set: HashSet<i64> = got.iter().copied().collect();
        assert_eq!(set.len(), 2000);
        assert_eq!(got.len(), 2000);
        // the sample prefix is not simply the table prefix
        assert_ne!(&got[..sample], &vals[..sample]);
    }

    #[test]
    fn empty_table_scan() {
        let (got, sample) = scan_all(&[], 0.5);
        assert!(got.is_empty());
        assert_eq!(sample, 0);
    }

    #[test]
    fn full_fraction_samples_everything() {
        let vals: Vec<i64> = (0..600).collect();
        let (got, sample) = scan_all(&vals, 1.0);
        assert_eq!(sample, 600);
        assert_eq!(got.len(), 600);
    }

    #[test]
    fn schema_comes_from_table() {
        let t = int_table("orders", "okey", &[1]).into_shared();
        let m = OpMetrics::with_initial_estimate(0.0);
        let s = TableScan::new(t, m);
        assert_eq!(s.schema().index_of("orders.okey").unwrap(), 0);
        assert_eq!(s.name(), "scan(orders)");
    }
}
