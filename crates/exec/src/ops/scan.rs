//! Table scans with sample-first block ordering.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use qprog_storage::{ScanOrder, Table};
use qprog_types::{BatchStatus, QResult, RowBatch, SchemaRef};

use crate::metrics::OpMetrics;
use crate::ops::{BoxedOp, Operator};

/// Scans a table block by block.
///
/// With a sampling [`ScanOrder`] the scan first delivers a block-level
/// random sample and then the remaining blocks in storage order — the
/// sample-first protocol of the paper's §3 that makes the leading prefix of
/// every base-table stream a genuine random sample.
pub struct TableScan {
    table: Arc<Table>,
    order: ScanOrder,
    name: String,
    metrics: Arc<OpMetrics>,
    /// Simulated per-block I/O latency (see [`with_io_cost`](Self::with_io_cost)).
    io_cost: std::time::Duration,
    /// Position: index into `order.blocks()` and offset within the block.
    block_idx: usize,
    row_offset: usize,
    done: bool,
    /// For sub-scans created by [`Operator::try_split`]: remaining sibling
    /// count; the last sibling to exhaust marks the shared metrics finished.
    finish_latch: Option<Arc<AtomicUsize>>,
}

impl TableScan {
    /// Sequential (storage-order) scan.
    pub fn new(table: Arc<Table>, metrics: Arc<OpMetrics>) -> Self {
        let order = ScanOrder::sequential(table.num_blocks());
        TableScan::with_order(table, order, metrics)
    }

    /// Sample-first scan delivering a `fraction` block sample first.
    pub fn sampled(table: Arc<Table>, fraction: f64, seed: u64, metrics: Arc<OpMetrics>) -> Self {
        let order = ScanOrder::for_table(&table, fraction, seed);
        TableScan::with_order(table, order, metrics)
    }

    /// Scan with an explicit block order.
    pub fn with_order(table: Arc<Table>, order: ScanOrder, metrics: Arc<OpMetrics>) -> Self {
        TableScan {
            name: format!("scan({})", table.name()),
            table,
            order,
            metrics,
            io_cost: std::time::Duration::ZERO,
            block_idx: 0,
            row_offset: 0,
            done: false,
            finish_latch: None,
        }
    }

    /// Attach a simulated per-block I/O latency (a true sleep: blocked-on-
    /// I/O time is idle, so parallel sub-scans overlap it the way concurrent
    /// disk reads would). Tables here live in memory; the paper's prototype
    /// read from disk, where a block costs a page read — this knob
    /// reproduces that cost model for the overhead and scaling experiments.
    pub fn with_io_cost(mut self, cost: std::time::Duration) -> Self {
        self.io_cost = cost;
        self
    }

    /// The number of leading rows that constitute the random sample
    /// (approximate: whole blocks).
    pub fn sample_rows(&self) -> usize {
        self.order.blocks()[..self.order.sample_blocks()]
            .iter()
            .map(|&b| self.table.block(b).map(|blk| blk.len()).unwrap_or(0))
            .sum()
    }
}

impl Operator for TableScan {
    fn schema(&self) -> SchemaRef {
        Arc::clone(self.table.schema())
    }

    fn next_batch(&mut self, out: &mut RowBatch) -> QResult<BatchStatus> {
        out.clear();
        if self.done {
            return Ok(BatchStatus::Exhausted);
        }
        loop {
            let Some(&block_id) = self.order.blocks().get(self.block_idx) else {
                self.done = true;
                match &self.finish_latch {
                    // Sub-scans share one metrics handle; only the last
                    // sibling to exhaust may pin N_i = K_i, otherwise the
                    // first finisher would mark the scan done early.
                    Some(latch) => {
                        if latch.fetch_sub(1, Ordering::AcqRel) == 1 {
                            self.metrics.mark_finished();
                        }
                    }
                    None => self.metrics.mark_finished(),
                }
                return Ok(BatchStatus::Exhausted);
            };
            let block = self.table.block(block_id)?;
            if self.row_offset == 0 && !self.io_cost.is_zero() && !block.is_empty() {
                // A real sleep, not a spin: emulated I/O waits must be idle
                // time so that partition-parallel sub-scans overlap them the
                // way concurrent disk reads would, independent of core count.
                std::thread::sleep(self.io_cost);
            }
            let avail = block.len().saturating_sub(self.row_offset);
            if avail == 0 {
                self.block_idx += 1;
                self.row_offset = 0;
                continue;
            }
            // Copy a contiguous column-slice chunk straight out of the
            // block; checkpoint/failpoint/metrics amortize to the chunk.
            let take = avail.min(out.remaining());
            self.metrics.checkpoint(take as u64)?;
            qprog_fault::fail_point!("exec/scan/next");
            out.extend_from_cols(block.cols(), self.row_offset..self.row_offset + take);
            self.row_offset += take;
            self.metrics.record_emitted_n(take as u64);
            if out.is_full() {
                return Ok(BatchStatus::HasMore);
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn try_split(&mut self, ways: usize) -> Option<Vec<BoxedOp>> {
        // Only a fresh, un-split scan can be partitioned: splitting
        // mid-stream would double-deliver rows, and splitting a sub-scan
        // would orphan its siblings' finish latch.
        if ways <= 1
            || self.done
            || self.block_idx != 0
            || self.row_offset != 0
            || self.finish_latch.is_some()
        {
            return None;
        }
        let latch = Arc::new(AtomicUsize::new(ways));
        let subs = self
            .order
            .split(ways)
            .into_iter()
            .map(|order| {
                Box::new(TableScan {
                    name: self.name.clone(),
                    table: Arc::clone(&self.table),
                    order,
                    metrics: Arc::clone(&self.metrics),
                    io_cost: self.io_cost,
                    block_idx: 0,
                    row_offset: 0,
                    done: false,
                    finish_latch: Some(Arc::clone(&latch)),
                }) as BoxedOp
            })
            .collect();
        // Retire the original: its next_batch() now reports Exhausted
        // without touching the (shared) metrics.
        self.done = true;
        Some(subs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::test_util::{col_i64, drain, int_table};
    use std::collections::HashSet;

    fn scan_all(vals: &[i64], fraction: f64) -> (Vec<i64>, usize) {
        let t = int_table("t", "a", vals).into_shared();
        let m = OpMetrics::with_initial_estimate(vals.len() as f64);
        let mut s = TableScan::sampled(Arc::clone(&t), fraction, 7, m);
        let sample = s.sample_rows();
        let rows = drain(&mut s);
        (col_i64(&rows, 0), sample)
    }

    #[test]
    fn sequential_scan_preserves_order() {
        let vals: Vec<i64> = (0..1000).collect();
        let t = int_table("t", "a", &vals).into_shared();
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut s = TableScan::new(t, Arc::clone(&m));
        let rows = drain(&mut s);
        assert_eq!(col_i64(&rows, 0), vals);
        assert_eq!(m.emitted(), 1000);
        assert!(m.is_finished());
        // idempotent end
        assert!(crate::ops::RowSource::new(&mut s)
            .next_row()
            .unwrap()
            .is_none());
    }

    #[test]
    fn sampled_scan_is_a_permutation() {
        let vals: Vec<i64> = (0..2000).collect();
        let (got, sample) = scan_all(&vals, 0.25);
        assert!(sample > 0);
        let set: HashSet<i64> = got.iter().copied().collect();
        assert_eq!(set.len(), 2000);
        assert_eq!(got.len(), 2000);
        // the sample prefix is not simply the table prefix
        assert_ne!(&got[..sample], &vals[..sample]);
    }

    #[test]
    fn empty_table_scan() {
        let (got, sample) = scan_all(&[], 0.5);
        assert!(got.is_empty());
        assert_eq!(sample, 0);
    }

    #[test]
    fn full_fraction_samples_everything() {
        let vals: Vec<i64> = (0..600).collect();
        let (got, sample) = scan_all(&vals, 1.0);
        assert_eq!(sample, 600);
        assert_eq!(got.len(), 600);
    }

    #[test]
    fn split_sub_scans_concatenate_to_serial_order() {
        let vals: Vec<i64> = (0..1500).collect();
        let t = int_table("t", "a", &vals).into_shared();
        let m = OpMetrics::with_initial_estimate(vals.len() as f64);
        let mut serial = TableScan::sampled(Arc::clone(&t), 0.2, 3, Arc::clone(&m));
        let expect = col_i64(&drain(&mut serial), 0);

        let m2 = OpMetrics::with_initial_estimate(vals.len() as f64);
        let mut whole = TableScan::sampled(Arc::clone(&t), 0.2, 3, Arc::clone(&m2));
        let subs = whole.try_split(4).expect("fresh scan splits");
        assert_eq!(subs.len(), 4);
        // The original is retired without touching metrics.
        assert!(crate::ops::RowSource::new(&mut whole)
            .next_row()
            .unwrap()
            .is_none());
        assert!(!m2.is_finished());
        let mut got = Vec::new();
        for mut sub in subs {
            got.extend(col_i64(&drain(sub.as_mut()), 0));
        }
        assert_eq!(got, expect);
        assert_eq!(m2.emitted(), 1500);
        assert!(m2.is_finished());
    }

    #[test]
    fn only_last_sub_scan_finishes_metrics() {
        let vals: Vec<i64> = (0..400).collect();
        let t = int_table("t", "a", &vals).into_shared();
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut whole = TableScan::new(t, Arc::clone(&m));
        let mut subs = whole.try_split(2).unwrap();
        drain(subs[0].as_mut());
        assert!(!m.is_finished(), "first finisher must not pin the scan");
        drain(subs[1].as_mut());
        assert!(m.is_finished());
    }

    #[test]
    fn started_or_split_scans_refuse_to_split() {
        let vals: Vec<i64> = (0..100).collect();
        let t = int_table("t", "a", &vals).into_shared();
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut started = TableScan::new(Arc::clone(&t), Arc::clone(&m));
        crate::ops::RowSource::new(&mut started).next_row().unwrap();
        assert!(started.try_split(2).is_none());
        let mut fresh = TableScan::new(t, m);
        assert!(fresh.try_split(1).is_none());
        let mut subs = fresh.try_split(2).unwrap();
        assert!(
            subs[0].try_split(2).is_none(),
            "sub-scans must not re-split"
        );
    }

    #[test]
    fn schema_comes_from_table() {
        let t = int_table("orders", "okey", &[1]).into_shared();
        let m = OpMetrics::with_initial_estimate(0.0);
        let s = TableScan::new(t, m);
        assert_eq!(s.schema().index_of("orders.okey").unwrap(), 0);
        assert_eq!(s.name(), "scan(orders)");
    }
}
