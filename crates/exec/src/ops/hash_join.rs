//! Grace-style partitioned hash join with online estimation hooks.
//!
//! Execution phases (§4.1.1 of the paper):
//!
//! 1. **Build**: the build input is drained and hash-partitioned. With
//!    `once` estimation, the exact frequency histogram `N_R` of the build
//!    join key is constructed *interleaved with partitioning*.
//! 2. **Probe partitioning**: the probe input is drained and partitioned.
//!    This is where `once` estimation runs — each probe key updates
//!    `D_{t+1} = (D_t·t + N_R[i]·|S|)/(t+1)` — and why it converges to the
//!    exact join cardinality *before any output exists*.
//! 3. **Partition-wise join**: for each partition, a hash table is built
//!    over the build rows and probed with the probe rows. Output therefore
//!    emerges clustered by key — the reordering that makes the `dne`/`byte`
//!    baselines (which watch this phase) fluctuate under skew (Fig. 4).
//!
//! All three phases are columnar: partitions are [`RowBatch`] accumulators
//! filled by selection-vector gathers, the per-partition tables map keys to
//! build-row indices, and an inner join emits whole batches of
//! `(build, probe)` pairs with one column-wise gather. Estimation, governor
//! checkpoints, and metrics are accounted **per batch** — the `K_i` deltas
//! of a batch are summed and applied at its boundary, so published
//! fractions and converged estimates are identical to the per-tuple
//! engine, which a capacity-1 batch reproduces exactly.
//!
//! In a pipeline of hash joins, all joins share a
//! [`PipelineHandle`]; each feeds its build tuples to the shared
//! [`PipelineEstimator`] and the lowest join drives probe observation
//! (Algorithm 1 push-down, §4.1.4), locking the shared state once per
//! batch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::sync::Mutex;
use qprog_core::byte::ByteEstimator;
use qprog_core::distinct::DistinctTracker;
use qprog_core::dne::DneEstimator;
use qprog_core::freq_hist::FreqHist;
use qprog_core::fx::FxHashMap;
use qprog_core::join_est::{JoinKind, OnceJoinEstimator, ProbeFragment};
use qprog_core::pipeline_est::PipelineEstimator;
use qprog_types::{BatchStatus, Key, QError, QResult, Row, RowBatch, SchemaRef};

use crate::metrics::OpMetrics;
use crate::ops::{partition_of, BoxedOp, Operator, PUBLISH_EVERY};
use crate::parallel;
use crate::trace::{DegradeReason, Phase};

/// Default number of grace partitions.
pub const DEFAULT_PARTITIONS: usize = 16;

/// `Z_α` used for published confidence bounds (two-sided 99%).
const CI_Z: f64 = 2.576;

/// Shared pipeline estimation state: the Algorithm-1 estimator plus the
/// metrics handle of each join in the pipeline (bottom-up order) for
/// publishing refined estimates.
#[derive(Debug)]
pub struct PipelineShared {
    /// The push-down estimator (joins indexed bottom-up).
    pub estimator: PipelineEstimator,
    /// Metrics of each join, indexed like the estimator's joins.
    pub metrics: Vec<Arc<OpMetrics>>,
}

impl PipelineShared {
    /// Publish every join's current estimate to its metrics handle.
    pub fn publish(&self) {
        for (u, m) in self.metrics.iter().enumerate() {
            if self.estimator.probe_seen() > 0 {
                m.set_estimated_total(self.estimator.estimate(u));
            }
        }
    }
}

/// Handle shared by all hash joins of one pipeline.
pub type PipelineHandle = Arc<Mutex<PipelineShared>>;

/// Which online estimation strategy this join runs.
pub enum JoinEstimation {
    /// No estimation.
    Off,
    /// The paper's framework on a standalone binary join; `probe_size_hint`
    /// is the known or optimizer-estimated probe input size.
    Once { probe_size_hint: u64 },
    /// Algorithm-1 pipeline push-down; this join is `join_index` in the
    /// shared estimator and drives probe observation iff `lowest`.
    Pipeline {
        handle: PipelineHandle,
        join_index: usize,
        lowest: bool,
    },
    /// Driver-node baseline (driver = probe rows consumed in the join
    /// pass).
    Dne { optimizer_estimate: f64 },
    /// Byte-model baseline.
    Byte {
        optimizer_estimate: f64,
        probe_row_bytes: u64,
    },
}

enum JState {
    /// Build + probe-partition phases not yet run.
    Init,
    /// Joining partition `part`; `probe_pos` indexes its probe rows.
    Joining {
        part: usize,
        /// Build-row indices (into the partition's batch) per key.
        table: FxHashMap<Key, Vec<u32>>,
        probe_pos: usize,
        /// Partially emitted match group: (probe row index, cursor into
        /// its match list) — resumes when the output batch filled mid-group.
        pending: Option<(usize, usize)>,
    },
    Done,
}

/// Grace hash join on single-column equi-keys, supporting inner,
/// (probe-preserving) left outer, semi and anti semantics.
pub struct HashJoin {
    build: Option<BoxedOp>,
    probe: Option<BoxedOp>,
    build_key: usize,
    probe_key: usize,
    kind: JoinKind,
    schema: SchemaRef,
    /// Build-arity NULL padding for outer-join misses.
    null_pad: Row,
    /// NULL-key probe rows stashed during partitioning; LeftOuter/Anti
    /// emit them at the end (NULL keys never match anything).
    null_probe_rows: Vec<Row>,
    metrics: Arc<OpMetrics>,
    estimation: JoinEstimation,
    num_partitions: usize,
    /// Degree of parallelism for the build/probe drains (1 = the serial
    /// engine, byte-for-byte).
    threads: usize,
    /// Columnar partition accumulators, filled by gathers.
    build_parts: Vec<RowBatch>,
    probe_parts: Vec<RowBatch>,
    /// Reused `(build row, probe row)` gather list for inner-join output.
    pair_buf: Vec<(u32, u32)>,
    once: Option<OnceJoinEstimator>,
    dne: Option<DneEstimator>,
    byte: Option<ByteEstimator>,
    /// Optional aggregation push-down (§4.2 end): tracks the distinct
    /// values of the join key in the join *output* distribution.
    agg_pushdown: Option<Arc<Mutex<DistinctTracker>>>,
    state: JState,
}

impl HashJoin {
    /// New hash join; `build_key`/`probe_key` are column indices of the
    /// equi-join key in the respective child schemas.
    pub fn new(
        build: BoxedOp,
        probe: BoxedOp,
        build_key: usize,
        probe_key: usize,
        estimation: JoinEstimation,
        metrics: Arc<OpMetrics>,
    ) -> Self {
        let schema = build.schema().join(&probe.schema()).into_ref();
        HashJoin {
            build: Some(build),
            probe: Some(probe),
            build_key,
            probe_key,
            kind: JoinKind::Inner,
            schema,
            null_pad: Row::default(),
            null_probe_rows: Vec::new(),
            metrics,
            estimation,
            num_partitions: DEFAULT_PARTITIONS,
            threads: 1,
            build_parts: Vec::new(),
            probe_parts: Vec::new(),
            pair_buf: Vec::new(),
            once: None,
            dne: None,
            byte: None,
            agg_pushdown: None,
            state: JState::Init,
        }
    }

    /// Select the join semantics; recomputes the output schema:
    /// `Inner` → build ++ probe, `LeftOuter` → nullable(build) ++ probe,
    /// `Semi`/`Anti` → probe only. Call before execution starts.
    pub fn with_join_kind(mut self, kind: JoinKind) -> Self {
        self.kind = kind;
        let build_schema = self
            .build
            .as_ref()
            .expect("with_join_kind before execution")
            .schema();
        let probe_schema = self
            .probe
            .as_ref()
            .expect("with_join_kind before execution")
            .schema();
        self.schema = match kind {
            JoinKind::Inner => build_schema.join(&probe_schema).into_ref(),
            JoinKind::LeftOuter => {
                let nullable_build = qprog_types::Schema::new(
                    build_schema
                        .fields()
                        .iter()
                        .map(|f| f.clone().with_nullable(true))
                        .collect(),
                );
                nullable_build.join(&probe_schema).into_ref()
            }
            JoinKind::Semi | JoinKind::Anti => Arc::clone(&probe_schema),
        };
        self.null_pad = Row::new(vec![qprog_types::Value::Null; build_schema.arity()]);
        self
    }

    /// The configured join semantics.
    pub fn join_kind(&self) -> JoinKind {
        self.kind
    }

    /// Override the partition count (≥ 1).
    pub fn with_partitions(mut self, n: usize) -> Self {
        self.num_partitions = n.max(1);
        self
    }

    /// Set the degree of parallelism for the build and probe drains. At 1
    /// (the default) the serial engine runs verbatim. At `n > 1` each drain
    /// splits its input scan into `n` contiguous chunks executed across
    /// worker threads; per-worker histogram and `D_{t+1}` fragments are
    /// merged associatively in worker order, so both the output row order
    /// and the converged join estimate are identical to serial execution.
    /// Pipeline-estimated joins (Algorithm 1 push-down) always run serial —
    /// the shared estimator's push-down protocol is order-sensitive.
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Effective worker-pool width for the drains.
    fn pool_width(&self) -> usize {
        match self.estimation {
            JoinEstimation::Pipeline { .. } => 1,
            _ => self.threads,
        }
    }

    /// Attach aggregation push-down: the tracker observes the join-key
    /// distribution of the join *output* during the probe-partitioning
    /// pass, so a GROUP BY on the join attribute above this join gets
    /// GEE/MLE estimates long before the aggregation sees a tuple.
    pub fn with_agg_pushdown(mut self, tracker: Arc<Mutex<DistinctTracker>>) -> Self {
        self.agg_pushdown = Some(tracker);
        self
    }

    /// Run the build and probe-partitioning phases.
    fn preprocess(&mut self, batch_cap: usize) -> QResult<()> {
        let mut build = self
            .build
            .take()
            .ok_or_else(|| QError::internal("hash join build input consumed twice"))?;
        let mut probe = self
            .probe
            .take()
            .ok_or_else(|| QError::internal("hash join probe input consumed twice"))?;
        let build_arity = build.schema().arity();
        let probe_arity = probe.schema().arity();

        self.build_parts = (0..self.num_partitions)
            .map(|_| RowBatch::accumulator(build_arity))
            .collect();
        self.probe_parts = (0..self.num_partitions)
            .map(|_| RowBatch::accumulator(probe_arity))
            .collect();

        // ---- Build phase ----
        self.metrics.trace_phase(Phase::Init, Phase::Build);
        let width = self.pool_width();
        let mut worker_busy: Vec<Duration> = Vec::new();
        let mut build_hist = match self.estimation {
            JoinEstimation::Once { .. } => Some(FreqHist::new()),
            _ => None,
        };
        if let JoinEstimation::Pipeline {
            handle, join_index, ..
        } = &self.estimation
        {
            handle.lock().estimator.begin_build(*join_index)?;
        }
        let split_build = if width > 1 {
            build.try_split(width)
        } else {
            None
        };
        if let Some(subs) = split_build {
            build_hist =
                self.drain_build_parallel(subs, build_hist.is_some(), batch_cap, &mut worker_busy)?;
            // The soft histogram budget is checked on the *merged* histogram:
            // workers accumulate disjoint fragments, so the serial path's
            // mid-build degradation point has no parallel equivalent, but
            // the ladder (exact histogram → dne) and its trace event are the
            // same.
            if let Some(h) = &build_hist {
                if self.metrics.hist_budget_exceeded(h.memory_allocated()) {
                    build_hist = None;
                    self.estimation = JoinEstimation::Dne {
                        optimizer_estimate: self.metrics.estimated_total(),
                    };
                    self.metrics.trace_degraded(DegradeReason::HistogramMemory);
                }
            }
        } else {
            let mut scratch = RowBatch::with_capacity(build_arity, batch_cap);
            let mut sel: Vec<Vec<usize>> = (0..self.num_partitions).map(|_| Vec::new()).collect();
            loop {
                let status = build.next_batch(&mut scratch)?;
                let n = scratch.len();
                if n > 0 {
                    self.metrics.checkpoint(n as u64)?;
                    qprog_fault::fail_point!("exec/hash_build/insert");
                }
                for s in &mut sel {
                    s.clear();
                }
                if let JoinEstimation::Pipeline {
                    handle, join_index, ..
                } = &self.estimation
                {
                    // One shared-state lock per batch; the estimator sees
                    // rows in scan order, exactly as per-tuple execution.
                    let mut shared = handle.lock();
                    for r in 0..n {
                        let key = scratch.key(r, self.build_key)?;
                        if key.is_null() {
                            continue; // NULL keys never equi-join
                        }
                        shared
                            .estimator
                            .build_tuple_with(*join_index, |col| scratch.key(r, col))?;
                        sel[partition_of(&key, self.num_partitions)].push(r);
                    }
                } else {
                    for r in 0..n {
                        let key = scratch.key(r, self.build_key)?;
                        if key.is_null() {
                            continue; // NULL keys never equi-join
                        }
                        if let Some(h) = &mut build_hist {
                            h.observe(&key);
                            // Soft histogram-memory budget: degrade the estimator one
                            // rung (exact frequency histogram → dne baseline) instead
                            // of aborting the query (ladder documented in DESIGN.md §5).
                            if self.metrics.hist_budget_exceeded(h.memory_allocated()) {
                                build_hist = None;
                                self.estimation = JoinEstimation::Dne {
                                    optimizer_estimate: self.metrics.estimated_total(),
                                };
                                self.metrics.trace_degraded(DegradeReason::HistogramMemory);
                            }
                        }
                        sel[partition_of(&key, self.num_partitions)].push(r);
                    }
                }
                for (p, s) in sel.iter().enumerate() {
                    if !s.is_empty() {
                        self.build_parts[p].gather_from(&scratch, s);
                    }
                }
                if status.is_exhausted() {
                    break;
                }
            }
        }
        if let JoinEstimation::Pipeline {
            handle, join_index, ..
        } = &self.estimation
        {
            handle.lock().estimator.end_build(*join_index)?;
        }
        if let JoinEstimation::Once { probe_size_hint } = self.estimation {
            self.once = Some(OnceJoinEstimator::with_kind(
                build_hist.take().expect("histogram built in Once mode"),
                probe_size_hint,
                self.kind,
            ));
        }

        // ---- Probe partitioning phase ----
        self.metrics.trace_phase(Phase::Build, Phase::Probe);
        let mut probe_rows: u64 = 0;
        let split_probe = if width > 1 {
            probe.try_split(width)
        } else {
            None
        };
        if let Some(subs) = split_probe {
            probe_rows = self.drain_probe_parallel(subs, batch_cap, &mut worker_busy)?;
        } else {
            let keep_nulls = matches!(self.kind, JoinKind::LeftOuter | JoinKind::Anti);
            let mut scratch = RowBatch::with_capacity(probe_arity, batch_cap);
            let mut sel: Vec<Vec<usize>> = (0..self.num_partitions).map(|_| Vec::new()).collect();
            // Per-batch (key, multiplicity) staging for the push-down
            // tracker, applied under one lock per batch.
            let mut agg_buf: Vec<(Key, u64)> = Vec::new();
            loop {
                let status = probe.next_batch(&mut scratch)?;
                let n = scratch.len();
                if n > 0 {
                    self.metrics.checkpoint(n as u64)?;
                    qprog_fault::fail_point!("exec/hash_probe/observe");
                }
                for s in &mut sel {
                    s.clear();
                }
                for r in 0..n {
                    probe_rows += 1;
                    let key = scratch.key(r, self.probe_key)?;
                    if let Some(once) = &mut self.once {
                        let mult = once.observe_probe(&key);
                        if mult > 0 && self.agg_pushdown.is_some() {
                            agg_buf.push((key.clone(), mult));
                        }
                    }
                    if key.is_null() {
                        if keep_nulls {
                            self.null_probe_rows.push(scratch.row(r));
                        }
                        continue;
                    }
                    sel[partition_of(&key, self.num_partitions)].push(r);
                }
                // Algorithm-1 push-down: the lowest join feeds the shared
                // estimator under one lock per batch, in scan order.
                if n > 0 {
                    if let JoinEstimation::Pipeline {
                        handle,
                        lowest: true,
                        ..
                    } = &self.estimation
                    {
                        let mut shared = handle.lock();
                        for r in 0..n {
                            shared
                                .estimator
                                .observe_probe_with(|col| scratch.key(r, col))?;
                        }
                        shared.publish();
                    }
                    // Batch-boundary estimate publication — the per-tuple
                    // cadence of the paper when `batch_rows = 1`.
                    if let Some(once) = &mut self.once {
                        self.metrics.set_estimated_total(once.estimate());
                        let ci = once.confidence_interval(CI_Z);
                        self.metrics.set_estimated_bounds(ci.lo, ci.hi);
                        if let Some(tracker) = &self.agg_pushdown {
                            let mut t = tracker.lock();
                            for (key, mult) in agg_buf.drain(..) {
                                t.observe_n(&key, mult);
                            }
                            t.set_input_size(once.estimate().round() as u64);
                        }
                    }
                }
                for (p, s) in sel.iter().enumerate() {
                    if !s.is_empty() {
                        self.probe_parts[p].gather_from(&scratch, s);
                    }
                }
                if status.is_exhausted() {
                    break;
                }
            }
        }
        // Per-worker wall-time attribution (build + probe busy combined);
        // serial drains leave `worker_busy` empty, so no events appear.
        for (w, busy) in worker_busy.iter().enumerate() {
            if !busy.is_zero() {
                self.metrics.record_worker_busy(w as u32, *busy);
            }
        }
        // The probe input is now exhausted: |S| is exact.
        if let Some(once) = &mut self.once {
            once.set_probe_size(probe_rows);
            self.metrics.set_estimated_total(once.estimate());
            self.metrics
                .set_estimated_bounds(once.estimate(), once.estimate());
            if let Some(tracker) = &self.agg_pushdown {
                tracker
                    .lock()
                    .set_input_size(once.estimate().round() as u64);
            }
        }
        if let JoinEstimation::Pipeline { handle, lowest, .. } = &self.estimation {
            if *lowest {
                let mut shared = handle.lock();
                shared.estimator.set_probe_size(probe_rows);
                shared.publish();
            }
        }
        match self.estimation {
            JoinEstimation::Dne { optimizer_estimate } => {
                self.dne = Some(DneEstimator::new(probe_rows, optimizer_estimate));
                self.metrics.set_estimated_total(optimizer_estimate);
            }
            JoinEstimation::Byte {
                optimizer_estimate,
                probe_row_bytes,
            } => {
                self.byte = Some(ByteEstimator::new(
                    probe_rows,
                    probe_row_bytes,
                    optimizer_estimate,
                ));
                self.metrics.set_estimated_total(optimizer_estimate);
            }
            _ => {}
        }

        self.metrics.trace_phase(Phase::Probe, Phase::PartitionJoin);
        self.load_partition(0)?;
        Ok(())
    }

    /// Drain pre-split build chunks across worker threads. Each worker
    /// hash-partitions its chunk into columnar accumulators and builds a
    /// local [`FreqHist`] fragment; fragments are merged **in worker
    /// order**, which — because chunks are contiguous slices of the scan
    /// order — reproduces the serial partition contents and histogram state
    /// exactly.
    fn drain_build_parallel(
        &mut self,
        subs: Vec<BoxedOp>,
        want_hist: bool,
        batch_cap: usize,
        worker_busy: &mut Vec<Duration>,
    ) -> QResult<Option<FreqHist>> {
        let build_key = self.build_key;
        let num_partitions = self.num_partitions;
        let tasks: Vec<_> = subs
            .into_iter()
            .map(|mut op| {
                let metrics = Arc::clone(&self.metrics);
                move |_w: usize| -> QResult<(Vec<RowBatch>, Option<FreqHist>)> {
                    let arity = op.schema().arity();
                    let mut parts: Vec<RowBatch> = (0..num_partitions)
                        .map(|_| RowBatch::accumulator(arity))
                        .collect();
                    let mut hist = if want_hist {
                        Some(FreqHist::new())
                    } else {
                        None
                    };
                    let mut sel: Vec<Vec<usize>> =
                        (0..num_partitions).map(|_| Vec::new()).collect();
                    let mut scratch = RowBatch::with_capacity(arity, batch_cap);
                    loop {
                        let status = op.next_batch(&mut scratch)?;
                        let n = scratch.len();
                        if n > 0 {
                            metrics.checkpoint(n as u64)?;
                            qprog_fault::fail_point!("exec/hash_build/insert");
                        }
                        for s in &mut sel {
                            s.clear();
                        }
                        for r in 0..n {
                            let key = scratch.key(r, build_key)?;
                            if key.is_null() {
                                continue; // NULL keys never equi-join
                            }
                            if let Some(h) = &mut hist {
                                h.observe(&key);
                            }
                            sel[partition_of(&key, num_partitions)].push(r);
                        }
                        for (p, s) in sel.iter().enumerate() {
                            if !s.is_empty() {
                                parts[p].gather_from(&scratch, s);
                            }
                        }
                        if status.is_exhausted() {
                            break;
                        }
                    }
                    Ok((parts, hist))
                }
            })
            .collect();
        let outputs = parallel::run_tasks(tasks)?;
        let mut merged = if want_hist {
            Some(FreqHist::new())
        } else {
            None
        };
        for (w, out) in outputs.into_iter().enumerate() {
            if w >= worker_busy.len() {
                worker_busy.resize(w + 1, Duration::ZERO);
            }
            worker_busy[w] += out.busy;
            let (mut parts, hist) = out.value;
            for (p, batch) in parts.iter_mut().enumerate() {
                self.build_parts[p].append_batch(batch);
            }
            if let (Some(m), Some(h)) = (&mut merged, hist) {
                m.merge(&h);
            }
        }
        Ok(merged)
    }

    /// Drain pre-split probe chunks across worker threads. Each worker
    /// partitions its chunk, runs the `D_{t+1}` refinement against the
    /// (read-only) build histogram into a local [`ProbeFragment`], and
    /// records agg-push-down observations in arrival order; fragments are
    /// absorbed in worker order, so the converged estimate and all
    /// partition/tracker state are identical to serial execution. Workers
    /// publish a combined mid-flight estimate through shared counters every
    /// [`PUBLISH_EVERY`] local rows (confidence bounds are published only at
    /// the exact end-of-probe point when parallel).
    fn drain_probe_parallel(
        &mut self,
        subs: Vec<BoxedOp>,
        batch_cap: usize,
        worker_busy: &mut Vec<Duration>,
    ) -> QResult<u64> {
        struct ProbeChunk {
            parts: Vec<RowBatch>,
            nulls: Vec<Row>,
            rows: u64,
            frag: ProbeFragment,
            agg: Vec<(Key, u64)>,
        }
        let probe_key = self.probe_key;
        let num_partitions = self.num_partitions;
        let kind = self.kind;
        let keep_nulls = matches!(self.kind, JoinKind::LeftOuter | JoinKind::Anti);
        let want_agg = self.agg_pushdown.is_some();
        let hint = match self.estimation {
            JoinEstimation::Once { probe_size_hint } => probe_size_hint,
            _ => 0,
        };
        let hist = self.once.as_ref().map(|o| o.build_histogram());
        let seen = AtomicU64::new(0);
        let matched = AtomicU64::new(0);
        let tasks: Vec<_> = subs
            .into_iter()
            .map(|mut op| {
                let metrics = Arc::clone(&self.metrics);
                let (seen, matched) = (&seen, &matched);
                move |_w: usize| -> QResult<ProbeChunk> {
                    let arity = op.schema().arity();
                    let mut chunk = ProbeChunk {
                        parts: (0..num_partitions)
                            .map(|_| RowBatch::accumulator(arity))
                            .collect(),
                        nulls: Vec::new(),
                        rows: 0,
                        frag: ProbeFragment::new(),
                        agg: Vec::new(),
                    };
                    let mut sel: Vec<Vec<usize>> =
                        (0..num_partitions).map(|_| Vec::new()).collect();
                    let (mut flushed_t, mut flushed_sum) = (0u64, 0u128);
                    let mut scratch = RowBatch::with_capacity(arity, batch_cap);
                    loop {
                        let status = op.next_batch(&mut scratch)?;
                        let n = scratch.len();
                        if n > 0 {
                            metrics.checkpoint(n as u64)?;
                            qprog_fault::fail_point!("exec/hash_probe/observe");
                        }
                        for s in &mut sel {
                            s.clear();
                        }
                        for r in 0..n {
                            chunk.rows += 1;
                            let key = scratch.key(r, probe_key)?;
                            if let Some(h) = hist {
                                let mult = chunk.frag.observe(h, kind, &key);
                                if want_agg && mult > 0 {
                                    chunk.agg.push((key.clone(), mult));
                                }
                                if chunk.rows.is_multiple_of(PUBLISH_EVERY) {
                                    let dt = chunk.frag.seen() - flushed_t;
                                    let ds = (chunk.frag.matched() - flushed_sum) as u64;
                                    flushed_t = chunk.frag.seen();
                                    flushed_sum = chunk.frag.matched();
                                    let t = seen.fetch_add(dt, Ordering::Relaxed) + dt;
                                    let s = matched.fetch_add(ds, Ordering::Relaxed) + ds;
                                    if t > 0 {
                                        let est = s as f64 / t as f64 * hint.max(t) as f64;
                                        metrics.set_estimated_total(est);
                                    }
                                }
                            }
                            if key.is_null() {
                                if keep_nulls {
                                    chunk.nulls.push(scratch.row(r));
                                }
                                continue;
                            }
                            sel[partition_of(&key, num_partitions)].push(r);
                        }
                        for (p, s) in sel.iter().enumerate() {
                            if !s.is_empty() {
                                chunk.parts[p].gather_from(&scratch, s);
                            }
                        }
                        if status.is_exhausted() {
                            break;
                        }
                    }
                    Ok(chunk)
                }
            })
            .collect();
        let outputs = parallel::run_tasks(tasks)?;
        let mut probe_rows = 0;
        for (w, out) in outputs.into_iter().enumerate() {
            if w >= worker_busy.len() {
                worker_busy.resize(w + 1, Duration::ZERO);
            }
            worker_busy[w] += out.busy;
            let mut chunk = out.value;
            probe_rows += chunk.rows;
            for (p, batch) in chunk.parts.iter_mut().enumerate() {
                self.probe_parts[p].append_batch(batch);
            }
            self.null_probe_rows.extend(chunk.nulls);
            if let Some(once) = &mut self.once {
                once.absorb(&chunk.frag);
            }
            if let Some(tracker) = &self.agg_pushdown {
                let mut t = tracker.lock();
                for (key, mult) in chunk.agg {
                    t.observe_n(&key, mult);
                }
            }
        }
        Ok(probe_rows)
    }

    /// Build the in-memory hash table for partition `part`.
    fn load_partition(&mut self, part: usize) -> QResult<()> {
        let bpart = &self.build_parts[part];
        let mut table: FxHashMap<Key, Vec<u32>> = FxHashMap::default();
        for i in 0..bpart.len() {
            let key = bpart.key(i, self.build_key)?;
            table.entry(key).or_default().push(i as u32);
        }
        self.state = JState::Joining {
            part,
            table,
            probe_pos: 0,
            pending: None,
        };
        Ok(())
    }
}

/// Apply one output batch's accumulated bookkeeping: `drv` probe rows
/// consumed and `emit` rows emitted since the last flush. Governor
/// checkpoints, gnm counters, and baseline estimators all advance by the
/// summed deltas; with capacity-1 batches this runs once per tuple, the
/// legacy cadence. Free function so it can run while the join state is
/// mutably borrowed.
fn flush_join_batch(
    metrics: &OpMetrics,
    dne: &mut Option<DneEstimator>,
    byte: &mut Option<ByteEstimator>,
    drv: &mut u64,
    emit: &mut u64,
) -> QResult<()> {
    if *drv == 0 && *emit == 0 {
        return Ok(());
    }
    if *drv > 0 {
        metrics.checkpoint(*drv)?;
        metrics.record_driver(*drv);
        if let Some(dne) = dne {
            dne.observe_driver(*drv);
        }
        if let Some(byte) = byte {
            byte.observe_input_rows(*drv);
        }
    }
    if *emit > 0 {
        metrics.record_emitted_n(*emit);
        if let Some(dne) = dne {
            dne.observe_output(*emit);
        }
        if let Some(byte) = byte {
            byte.observe_output_rows(*emit);
        }
    }
    if let Some(dne) = dne {
        metrics.set_estimated_total(dne.estimate());
    }
    if let Some(byte) = byte {
        metrics.set_estimated_total(byte.estimate());
    }
    *drv = 0;
    *emit = 0;
    Ok(())
}

impl Operator for HashJoin {
    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn next_batch(&mut self, out: &mut RowBatch) -> QResult<BatchStatus> {
        out.clear();
        if matches!(self.state, JState::Init) {
            self.preprocess(out.capacity())?;
        }
        let mut drv = 0u64;
        let mut emit = 0u64;
        loop {
            match &mut self.state {
                JState::Init => unreachable!("preprocessed above"),
                JState::Done => return Ok(BatchStatus::Exhausted),
                JState::Joining {
                    part,
                    table,
                    probe_pos,
                    pending,
                } => {
                    let part_idx = *part;
                    let bpart = &self.build_parts[part_idx];
                    let ppart = &self.probe_parts[part_idx];
                    // Governor granularity: at most one output batch worth
                    // of probe rows is consumed between flushes, even when
                    // nothing matches.
                    let chunk = out.capacity().max(1);
                    match self.kind {
                        JoinKind::Inner => {
                            // Vectorized fast path: collect (build, probe)
                            // index pairs, then emit them with one
                            // column-wise gather.
                            self.pair_buf.clear();
                            let room = out.remaining();
                            if let Some((pidx, cur)) = pending.take() {
                                let key = ppart.key(pidx, self.probe_key)?;
                                let matches = table.get(&key).map_or(&[][..], Vec::as_slice);
                                let take = (matches.len() - cur).min(room);
                                self.pair_buf.extend(
                                    matches[cur..cur + take].iter().map(|&b| (b, pidx as u32)),
                                );
                                if cur + take < matches.len() {
                                    *pending = Some((pidx, cur + take));
                                }
                            }
                            let mut scanned = 0usize;
                            while self.pair_buf.len() < room
                                && scanned < chunk
                                && *probe_pos < ppart.len()
                            {
                                let pidx = *probe_pos;
                                *probe_pos += 1;
                                drv += 1;
                                scanned += 1;
                                let key = ppart.key(pidx, self.probe_key)?;
                                if let Some(matches) = table.get(&key) {
                                    let take = matches.len().min(room - self.pair_buf.len());
                                    self.pair_buf
                                        .extend(matches[..take].iter().map(|&b| (b, pidx as u32)));
                                    if take < matches.len() {
                                        *pending = Some((pidx, take));
                                    }
                                }
                            }
                            out.gather_concat_from(bpart, ppart, &self.pair_buf);
                            emit += self.pair_buf.len() as u64;
                        }
                        _ => {
                            // LeftOuter / Semi / Anti: misses interleave
                            // with matches in probe order, row-wise.
                            if let Some((pidx, cur)) = pending.take() {
                                let key = ppart.key(pidx, self.probe_key)?;
                                let matches = table.get(&key).map_or(&[][..], Vec::as_slice);
                                let mut c = cur;
                                while c < matches.len() && !out.is_full() {
                                    out.gather_concat_from(
                                        bpart,
                                        ppart,
                                        &[(matches[c], pidx as u32)],
                                    );
                                    emit += 1;
                                    c += 1;
                                }
                                if c < matches.len() {
                                    *pending = Some((pidx, c));
                                }
                            }
                            let mut scanned = 0usize;
                            while !out.is_full() && scanned < chunk && *probe_pos < ppart.len() {
                                let pidx = *probe_pos;
                                *probe_pos += 1;
                                drv += 1;
                                scanned += 1;
                                let key = ppart.key(pidx, self.probe_key)?;
                                match (self.kind, table.get(&key)) {
                                    (JoinKind::LeftOuter, Some(matches)) => {
                                        let mut c = 0;
                                        while c < matches.len() && !out.is_full() {
                                            out.gather_concat_from(
                                                bpart,
                                                ppart,
                                                &[(matches[c], pidx as u32)],
                                            );
                                            emit += 1;
                                            c += 1;
                                        }
                                        if c < matches.len() {
                                            *pending = Some((pidx, c));
                                        }
                                    }
                                    (JoinKind::LeftOuter, None) => {
                                        out.push_concat_row_from(
                                            self.null_pad.values(),
                                            ppart,
                                            pidx,
                                        );
                                        emit += 1;
                                    }
                                    (JoinKind::Semi, Some(_)) | (JoinKind::Anti, None) => {
                                        out.push_from(ppart, pidx);
                                        emit += 1;
                                    }
                                    _ => {}
                                }
                            }
                        }
                    }
                    let more_here = *probe_pos < ppart.len() || pending.is_some();
                    flush_join_batch(
                        &self.metrics,
                        &mut self.dne,
                        &mut self.byte,
                        &mut drv,
                        &mut emit,
                    )?;
                    if out.is_full() {
                        return Ok(BatchStatus::HasMore);
                    }
                    if more_here {
                        continue; // chunk boundary; same partition
                    }
                    // Partition exhausted: move to the next.
                    let next_part = part_idx + 1;
                    if next_part < self.num_partitions {
                        self.load_partition(next_part)?;
                        continue;
                    }
                    // NULL-key probe rows never match: LeftOuter pads
                    // them, Anti passes them through.
                    while !out.is_full() {
                        let Some(row) = self.null_probe_rows.pop() else {
                            break;
                        };
                        match self.kind {
                            JoinKind::LeftOuter => {
                                out.push_concat(self.null_pad.values(), row.values())
                            }
                            _ => out.push_row(row),
                        }
                        emit += 1;
                    }
                    flush_join_batch(
                        &self.metrics,
                        &mut self.dne,
                        &mut self.byte,
                        &mut drv,
                        &mut emit,
                    )?;
                    if out.is_full() {
                        return Ok(BatchStatus::HasMore);
                    }
                    self.state = JState::Done;
                    self.metrics.mark_finished();
                    return Ok(BatchStatus::Exhausted);
                }
            }
        }
    }

    fn name(&self) -> &str {
        "hash_join"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::test_util::{drain, int_table};
    use crate::ops::TableScan;
    use qprog_core::pipeline_est::{AttrSource, JoinSpec};

    fn scan1(name: &str, vals: &[i64]) -> BoxedOp {
        let t = int_table(name, "k", vals).into_shared();
        Box::new(TableScan::new(t, OpMetrics::with_initial_estimate(0.0)))
    }

    fn exact_join(r: &[i64], s: &[i64]) -> usize {
        r.iter()
            .map(|a| s.iter().filter(|&&b| b == *a).count())
            .sum()
    }

    #[test]
    fn joins_correctly() {
        let r = [1i64, 1, 2, 3];
        let s = [1i64, 2, 2, 4];
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = HashJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            JoinEstimation::Off,
            Arc::clone(&m),
        );
        let rows = drain(&mut j);
        assert_eq!(rows.len(), exact_join(&r, &s)); // 1×2 + 2×2 = 4
        for row in &rows {
            assert_eq!(row.arity(), 2);
            assert_eq!(row.get(0).unwrap(), row.get(1).unwrap());
        }
        assert_eq!(m.emitted(), 4);
        assert!(m.is_finished());
    }

    #[test]
    fn null_keys_never_join() {
        use qprog_types::{DataType, Field, Row, Schema, Value};
        let mut t = qprog_storage::Table::new(
            "n",
            Schema::new(vec![Field::new("k", DataType::Int64).with_nullable(true)]),
        );
        t.push(Row::new(vec![Value::Null])).unwrap();
        t.push(Row::new(vec![Value::Int64(1)])).unwrap();
        let t = t.into_shared();
        let left: BoxedOp = Box::new(TableScan::new(
            Arc::clone(&t),
            OpMetrics::with_initial_estimate(0.0),
        ));
        let right: BoxedOp = Box::new(TableScan::new(t, OpMetrics::with_initial_estimate(0.0)));
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = HashJoin::new(left, right, 0, 0, JoinEstimation::Off, m);
        let rows = drain(&mut j);
        assert_eq!(rows.len(), 1); // only 1 = 1
    }

    #[test]
    fn once_estimate_converges_before_output() {
        let r: Vec<i64> = (0..500).map(|i| i % 50).collect();
        let s: Vec<i64> = (0..800).map(|i| i % 100).collect();
        let truth = exact_join(&r, &s) as f64;
        let m = OpMetrics::with_initial_estimate(1.0);
        let mut j = HashJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            JoinEstimation::Once {
                probe_size_hint: s.len() as u64,
            },
            Arc::clone(&m),
        );
        // Pull exactly one output row: preprocessing (build + probe
        // partitioning) has completed, so the estimate must already be exact.
        {
            let mut src = crate::ops::RowSource::new(&mut j);
            let first = src.next_row().unwrap();
            assert!(first.is_some());
        }
        assert_eq!(m.estimated_total(), truth);
        let rest = drain(&mut j);
        assert_eq!(rest.len() + 1, truth as usize);
    }

    #[test]
    fn once_corrects_bad_probe_size_hint() {
        let r = [5i64, 5];
        let s = [5i64, 5, 5, 6];
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = HashJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            JoinEstimation::Once {
                probe_size_hint: 4000, // wildly wrong
            },
            Arc::clone(&m),
        );
        let rows = drain(&mut j);
        assert_eq!(rows.len(), 6);
        assert_eq!(m.estimated_total(), 6.0);
    }

    #[test]
    fn dne_fluctuates_with_partition_clustered_output() {
        // Skewed: one hot value. dne watches the join pass, whose output is
        // clustered by partition, so its estimate must move a lot.
        let r: Vec<i64> = std::iter::repeat_n(7, 200).chain(0..50).collect();
        let s: Vec<i64> = (0..1000).map(|i| i % 100).collect();
        let m = OpMetrics::with_initial_estimate(50.0);
        let mut j = HashJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            JoinEstimation::Dne {
                optimizer_estimate: 50.0,
            },
            Arc::clone(&m),
        );
        let mut estimates = Vec::new();
        let mut src = crate::ops::RowSource::new(&mut j);
        while let Some(_row) = src.next_row().unwrap() {
            estimates.push(m.estimated_total());
        }
        let truth = exact_join(&r, &s) as f64;
        // converged once every probe row has been joined
        assert_eq!(m.estimated_total(), truth);
        // ...but wandered on the way: relative spread well above 30%.
        let min = estimates.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = estimates.iter().cloned().fold(0.0, f64::max);
        assert!(
            max / min > 1.3,
            "dne should fluctuate under clustering: min {min} max {max} truth {truth}"
        );
    }

    #[test]
    fn byte_estimator_publishes_and_converges() {
        let r: Vec<i64> = (0..100).collect();
        let s: Vec<i64> = (0..100).collect();
        let m = OpMetrics::with_initial_estimate(13.0);
        let mut j = HashJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            JoinEstimation::Byte {
                optimizer_estimate: 13.0,
                probe_row_bytes: 8,
            },
            Arc::clone(&m),
        );
        let rows = drain(&mut j);
        assert_eq!(rows.len(), 100);
        assert_eq!(m.estimated_total(), 100.0);
    }

    #[test]
    fn pipeline_mode_two_joins_same_attribute() {
        // upper: A ⋈ (B ⋈ C) all on col 0. Exec tree: HashJoin(build=A,
        // probe=HashJoin(build=B, probe=C)).
        let a = [1i64, 1, 2];
        let b = [1i64, 2, 2];
        let c = [1i64, 2, 9];
        let specs = vec![
            JoinSpec {
                build_attr_col: 0,
                probe_attr: AttrSource::Probe { col: 0 },
            };
            2
        ];
        let m_lower = OpMetrics::with_initial_estimate(0.0);
        let m_upper = OpMetrics::with_initial_estimate(0.0);
        let shared: PipelineHandle = Arc::new(Mutex::new(PipelineShared {
            estimator: PipelineEstimator::new(specs, c.len() as u64).unwrap(),
            metrics: vec![Arc::clone(&m_lower), Arc::clone(&m_upper)],
        }));
        let lower = HashJoin::new(
            scan1("b", &b),
            scan1("c", &c),
            0,
            0,
            JoinEstimation::Pipeline {
                handle: Arc::clone(&shared),
                join_index: 0,
                lowest: true,
            },
            Arc::clone(&m_lower),
        );
        let mut upper = HashJoin::new(
            scan1("a", &a),
            Box::new(lower),
            0,
            0,
            JoinEstimation::Pipeline {
                handle: Arc::clone(&shared),
                join_index: 1,
                lowest: false,
            },
            Arc::clone(&m_upper),
        );
        let rows = drain(&mut upper);
        // lower join: 1→1, 2→2 matches = 3 rows (c=1:1, c=2:2)
        // upper: c=1 → 1·2(A has two 1s)=2; c=2 → 2·1 = 2 → 4 rows
        assert_eq!(rows.len(), 4);
        assert_eq!(m_lower.estimated_total(), 3.0);
        assert_eq!(m_upper.estimated_total(), 4.0);
    }

    #[test]
    fn agg_pushdown_tracks_output_distinct() {
        let r = [1i64, 1, 2, 3];
        let s = [1i64, 2, 2, 5];
        // join output keys: 1 (×2), 2 (×2) → 2 distinct
        let tracker = Arc::new(Mutex::new(DistinctTracker::new(10)));
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = HashJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            JoinEstimation::Once { probe_size_hint: 4 },
            Arc::clone(&m),
        )
        .with_agg_pushdown(Arc::clone(&tracker));
        let rows = drain(&mut j);
        assert_eq!(rows.len(), 4);
        let t = tracker.lock();
        assert_eq!(t.groups_seen(), 2);
        assert_eq!(t.estimate(), 2.0);
    }

    #[test]
    fn join_kinds_semantics_and_estimates() {
        use qprog_types::Value;
        let r = [1i64, 1, 2, 3];
        let s = [1i64, 2, 2, 4, 9];
        // truths: inner 4 (1×2 + 2×1 + 2×1); semi 3; anti 2; louter 4+2=6
        for (kind, expect_rows, expect_arity) in [
            (JoinKind::Inner, 4usize, 2usize),
            (JoinKind::Semi, 3, 1),
            (JoinKind::Anti, 2, 1),
            (JoinKind::LeftOuter, 6, 2),
        ] {
            let m = OpMetrics::with_initial_estimate(0.0);
            let mut j = HashJoin::new(
                scan1("r", &r),
                scan1("s", &s),
                0,
                0,
                JoinEstimation::Once {
                    probe_size_hint: s.len() as u64,
                },
                Arc::clone(&m),
            )
            .with_join_kind(kind);
            assert_eq!(j.schema().arity(), expect_arity, "{kind:?}");
            let rows = drain(&mut j);
            assert_eq!(rows.len(), expect_rows, "{kind:?}");
            // once estimate exact at completion for every kind
            assert_eq!(m.estimated_total(), expect_rows as f64, "{kind:?}");
            if kind == JoinKind::LeftOuter {
                // unmatched probe rows are NULL-padded on the build side
                let padded = rows
                    .iter()
                    .filter(|row| row.get(0).unwrap() == &Value::Null)
                    .count();
                assert_eq!(padded, 2);
            }
        }
    }

    #[test]
    fn null_probe_keys_per_kind() {
        use qprog_types::{DataType, Field, Schema, Value};
        let mut t = qprog_storage::Table::new(
            "p",
            Schema::new(vec![Field::new("k", DataType::Int64).with_nullable(true)]),
        );
        t.push(Row::new(vec![Value::Null])).unwrap();
        t.push(Row::new(vec![Value::Int64(1)])).unwrap();
        let t = t.into_shared();
        for (kind, expect) in [
            (JoinKind::Inner, 1usize), // only 1=1
            (JoinKind::Semi, 1),       // the matching row
            (JoinKind::Anti, 1),       // the NULL row (no match)
            (JoinKind::LeftOuter, 2),  // match + padded NULL row
        ] {
            let probe: BoxedOp = Box::new(TableScan::new(
                Arc::clone(&t),
                OpMetrics::with_initial_estimate(0.0),
            ));
            let m = OpMetrics::with_initial_estimate(0.0);
            let mut j = HashJoin::new(scan1("r", &[1, 2]), probe, 0, 0, JoinEstimation::Off, m)
                .with_join_kind(kind);
            assert_eq!(drain(&mut j).len(), expect, "{kind:?}");
        }
    }

    /// Run the skewed reference join at a given thread count and return
    /// (output rows, final estimate, tracker distinct estimate).
    fn skewed_join_at(threads: usize, kind: JoinKind) -> (Vec<Row>, f64, f64) {
        let r: Vec<i64> = (0..700)
            .map(|i| if i % 3 == 0 { 7 } else { i % 90 })
            .collect();
        let s: Vec<i64> = (0..1100).map(|i| i % 130).collect();
        let tracker = Arc::new(Mutex::new(DistinctTracker::new(1 << 20)));
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = HashJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            JoinEstimation::Once {
                probe_size_hint: s.len() as u64,
            },
            Arc::clone(&m),
        )
        .with_join_kind(kind)
        .with_threads(threads)
        .with_agg_pushdown(Arc::clone(&tracker));
        let rows = drain(&mut j);
        let distinct = tracker.lock().estimate();
        (rows, m.estimated_total(), distinct)
    }

    #[test]
    fn parallel_drains_are_byte_identical_to_serial() {
        for kind in [
            JoinKind::Inner,
            JoinKind::LeftOuter,
            JoinKind::Semi,
            JoinKind::Anti,
        ] {
            let (serial_rows, serial_est, serial_distinct) = skewed_join_at(1, kind);
            for threads in [2usize, 4] {
                let (rows, est, distinct) = skewed_join_at(threads, kind);
                assert_eq!(rows, serial_rows, "{kind:?} threads={threads}");
                assert_eq!(
                    est.to_bits(),
                    serial_est.to_bits(),
                    "{kind:?} threads={threads}"
                );
                assert_eq!(
                    distinct.to_bits(),
                    serial_distinct.to_bits(),
                    "{kind:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_join_reports_worker_attribution() {
        let r: Vec<i64> = (0..2000).map(|i| i % 40).collect();
        let s: Vec<i64> = (0..2000).map(|i| i % 55).collect();
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = HashJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            JoinEstimation::Once {
                probe_size_hint: s.len() as u64,
            },
            Arc::clone(&m),
        )
        .with_threads(4);
        drain(&mut j);
        assert_eq!(m.workers(), Some(4));
        // serial runs never report workers
        let m1 = OpMetrics::with_initial_estimate(0.0);
        let mut j1 = HashJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            JoinEstimation::Off,
            Arc::clone(&m1),
        );
        drain(&mut j1);
        assert_eq!(m1.workers(), None);
    }

    #[test]
    fn parallel_threads_exceeding_blocks_still_correct() {
        // More workers than blocks: some sub-scans are empty.
        let r = [1i64, 2, 3];
        let s = [1i64, 1, 3];
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = HashJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            JoinEstimation::Once { probe_size_hint: 3 },
            Arc::clone(&m),
        )
        .with_threads(8);
        assert_eq!(drain(&mut j).len(), 3);
        assert_eq!(m.estimated_total(), 3.0);
    }

    #[test]
    fn single_partition_degenerate_case() {
        let r = [1i64, 2];
        let s = [2i64, 1];
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = HashJoin::new(scan1("r", &r), scan1("s", &s), 0, 0, JoinEstimation::Off, m)
            .with_partitions(1);
        assert_eq!(drain(&mut j).len(), 2);
    }

    #[test]
    fn empty_inputs() {
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = HashJoin::new(
            scan1("r", &[]),
            scan1("s", &[1, 2]),
            0,
            0,
            JoinEstimation::Once { probe_size_hint: 2 },
            Arc::clone(&m),
        );
        assert!(crate::ops::RowSource::new(&mut j)
            .next_row()
            .unwrap()
            .is_none());
        assert_eq!(m.estimated_total(), 0.0);
        let m2 = OpMetrics::with_initial_estimate(0.0);
        let mut j = HashJoin::new(
            scan1("r", &[1]),
            scan1("s", &[]),
            0,
            0,
            JoinEstimation::Off,
            m2,
        );
        assert!(crate::ops::RowSource::new(&mut j)
            .next_row()
            .unwrap()
            .is_none());
    }

    #[test]
    fn wide_batches_match_strict_mode() {
        let r: Vec<i64> = (0..700)
            .map(|i| if i % 3 == 0 { 7 } else { i % 90 })
            .collect();
        let s: Vec<i64> = (0..1100).map(|i| i % 130).collect();
        let run = |cap: usize| {
            let m = OpMetrics::with_initial_estimate(0.0);
            let mut j = HashJoin::new(
                scan1("r", &r),
                scan1("s", &s),
                0,
                0,
                JoinEstimation::Once {
                    probe_size_hint: s.len() as u64,
                },
                Arc::clone(&m),
            );
            let rows: Vec<String> = crate::ops::test_util::drain_batched(&mut j, cap)
                .iter()
                .map(|row| row.to_string())
                .collect();
            (rows, m.estimated_total())
        };
        assert_eq!(run(1), run(1024));
    }

    #[test]
    fn wide_batches_match_strict_mode_all_kinds() {
        let r: Vec<i64> = (0..300)
            .map(|i| if i % 4 == 0 { 9 } else { i % 40 })
            .collect();
        let s: Vec<i64> = (0..500).map(|i| i % 55).collect();
        for kind in [
            JoinKind::Inner,
            JoinKind::LeftOuter,
            JoinKind::Semi,
            JoinKind::Anti,
        ] {
            let run = |cap: usize| {
                let m = OpMetrics::with_initial_estimate(0.0);
                let mut j = HashJoin::new(
                    scan1("r", &r),
                    scan1("s", &s),
                    0,
                    0,
                    JoinEstimation::Once {
                        probe_size_hint: s.len() as u64,
                    },
                    Arc::clone(&m),
                )
                .with_join_kind(kind);
                let rows: Vec<String> = crate::ops::test_util::drain_batched(&mut j, cap)
                    .iter()
                    .map(|row| row.to_string())
                    .collect();
                (rows, m.estimated_total(), m.emitted(), m.driver_consumed())
            };
            let strict = run(1);
            for cap in [7usize, 64, 1024] {
                assert_eq!(run(cap), strict, "{kind:?} cap={cap}");
            }
        }
    }
}
