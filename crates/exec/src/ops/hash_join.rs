//! Grace-style partitioned hash join with online estimation hooks.
//!
//! Execution phases (§4.1.1 of the paper):
//!
//! 1. **Build**: the build input is drained and hash-partitioned. With
//!    `once` estimation, the exact frequency histogram `N_R` of the build
//!    join key is constructed *interleaved with partitioning*.
//! 2. **Probe partitioning**: the probe input is drained and partitioned.
//!    This is where `once` estimation runs — each probe key updates
//!    `D_{t+1} = (D_t·t + N_R[i]·|S|)/(t+1)` — and why it converges to the
//!    exact join cardinality *before any output exists*.
//! 3. **Partition-wise join**: for each partition, a hash table is built
//!    over the build rows and probed with the probe rows. Output therefore
//!    emerges clustered by key — the reordering that makes the `dne`/`byte`
//!    baselines (which watch this phase) fluctuate under skew (Fig. 4).
//!
//! In a pipeline of hash joins, all joins share a
//! [`PipelineHandle`]; each feeds its build tuples to the shared
//! [`PipelineEstimator`] and the lowest join drives probe observation
//! (Algorithm 1 push-down, §4.1.4).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::sync::Mutex;
use qprog_core::byte::ByteEstimator;
use qprog_core::distinct::DistinctTracker;
use qprog_core::dne::DneEstimator;
use qprog_core::freq_hist::FreqHist;
use qprog_core::join_est::{JoinKind, OnceJoinEstimator, ProbeFragment};
use qprog_core::pipeline_est::PipelineEstimator;
use qprog_types::{Key, QError, QResult, Row, SchemaRef};

use crate::metrics::OpMetrics;
use crate::ops::{partition_of, BoxedOp, Operator, PUBLISH_EVERY};
use crate::parallel;
use crate::trace::{DegradeReason, Phase};

/// Default number of grace partitions.
pub const DEFAULT_PARTITIONS: usize = 16;

/// `Z_α` used for published confidence bounds (two-sided 99%).
const CI_Z: f64 = 2.576;

/// Shared pipeline estimation state: the Algorithm-1 estimator plus the
/// metrics handle of each join in the pipeline (bottom-up order) for
/// publishing refined estimates.
#[derive(Debug)]
pub struct PipelineShared {
    /// The push-down estimator (joins indexed bottom-up).
    pub estimator: PipelineEstimator,
    /// Metrics of each join, indexed like the estimator's joins.
    pub metrics: Vec<Arc<OpMetrics>>,
}

impl PipelineShared {
    /// Publish every join's current estimate to its metrics handle.
    pub fn publish(&self) {
        for (u, m) in self.metrics.iter().enumerate() {
            if self.estimator.probe_seen() > 0 {
                m.set_estimated_total(self.estimator.estimate(u));
            }
        }
    }
}

/// Handle shared by all hash joins of one pipeline.
pub type PipelineHandle = Arc<Mutex<PipelineShared>>;

/// Which online estimation strategy this join runs.
pub enum JoinEstimation {
    /// No estimation.
    Off,
    /// The paper's framework on a standalone binary join; `probe_size_hint`
    /// is the known or optimizer-estimated probe input size.
    Once { probe_size_hint: u64 },
    /// Algorithm-1 pipeline push-down; this join is `join_index` in the
    /// shared estimator and drives probe observation iff `lowest`.
    Pipeline {
        handle: PipelineHandle,
        join_index: usize,
        lowest: bool,
    },
    /// Driver-node baseline (driver = probe rows consumed in the join
    /// pass).
    Dne { optimizer_estimate: f64 },
    /// Byte-model baseline.
    Byte {
        optimizer_estimate: f64,
        probe_row_bytes: u64,
    },
}

enum JState {
    /// Build + probe-partition phases not yet run.
    Init,
    /// Joining partition `part`; `probe_pos` indexes its probe rows.
    Joining {
        part: usize,
        table: HashMap<Key, Vec<usize>>,
        probe_pos: usize,
        /// Pending matches: (build row indices, probe row) with cursor.
        pending: Option<(Vec<usize>, Row, usize)>,
    },
    Done,
}

/// Grace hash join on single-column equi-keys, supporting inner,
/// (probe-preserving) left outer, semi and anti semantics.
pub struct HashJoin {
    build: Option<BoxedOp>,
    probe: Option<BoxedOp>,
    build_key: usize,
    probe_key: usize,
    kind: JoinKind,
    schema: SchemaRef,
    /// Build-arity NULL padding for outer-join misses.
    null_pad: Row,
    /// NULL-key probe rows stashed during partitioning; LeftOuter/Anti
    /// emit them at the end (NULL keys never match anything).
    null_probe_rows: Vec<Row>,
    metrics: Arc<OpMetrics>,
    estimation: JoinEstimation,
    num_partitions: usize,
    /// Degree of parallelism for the build/probe drains (1 = the serial
    /// engine, byte-for-byte).
    threads: usize,
    build_parts: Vec<Vec<Row>>,
    probe_parts: Vec<Vec<Row>>,
    once: Option<OnceJoinEstimator>,
    dne: Option<DneEstimator>,
    byte: Option<ByteEstimator>,
    /// Optional aggregation push-down (§4.2 end): tracks the distinct
    /// values of the join key in the join *output* distribution.
    agg_pushdown: Option<Arc<Mutex<DistinctTracker>>>,
    state: JState,
}

impl HashJoin {
    /// New hash join; `build_key`/`probe_key` are column indices of the
    /// equi-join key in the respective child schemas.
    pub fn new(
        build: BoxedOp,
        probe: BoxedOp,
        build_key: usize,
        probe_key: usize,
        estimation: JoinEstimation,
        metrics: Arc<OpMetrics>,
    ) -> Self {
        let schema = build.schema().join(&probe.schema()).into_ref();
        HashJoin {
            build: Some(build),
            probe: Some(probe),
            build_key,
            probe_key,
            kind: JoinKind::Inner,
            schema,
            null_pad: Row::default(),
            null_probe_rows: Vec::new(),
            metrics,
            estimation,
            num_partitions: DEFAULT_PARTITIONS,
            threads: 1,
            build_parts: Vec::new(),
            probe_parts: Vec::new(),
            once: None,
            dne: None,
            byte: None,
            agg_pushdown: None,
            state: JState::Init,
        }
    }

    /// Select the join semantics; recomputes the output schema:
    /// `Inner` → build ++ probe, `LeftOuter` → nullable(build) ++ probe,
    /// `Semi`/`Anti` → probe only. Call before execution starts.
    pub fn with_join_kind(mut self, kind: JoinKind) -> Self {
        self.kind = kind;
        let build_schema = self
            .build
            .as_ref()
            .expect("with_join_kind before execution")
            .schema();
        let probe_schema = self
            .probe
            .as_ref()
            .expect("with_join_kind before execution")
            .schema();
        self.schema = match kind {
            JoinKind::Inner => build_schema.join(&probe_schema).into_ref(),
            JoinKind::LeftOuter => {
                let nullable_build = qprog_types::Schema::new(
                    build_schema
                        .fields()
                        .iter()
                        .map(|f| f.clone().with_nullable(true))
                        .collect(),
                );
                nullable_build.join(&probe_schema).into_ref()
            }
            JoinKind::Semi | JoinKind::Anti => Arc::clone(&probe_schema),
        };
        self.null_pad = Row::new(vec![qprog_types::Value::Null; build_schema.arity()]);
        self
    }

    /// The configured join semantics.
    pub fn join_kind(&self) -> JoinKind {
        self.kind
    }

    /// Override the partition count (≥ 1).
    pub fn with_partitions(mut self, n: usize) -> Self {
        self.num_partitions = n.max(1);
        self
    }

    /// Set the degree of parallelism for the build and probe drains. At 1
    /// (the default) the serial engine runs verbatim. At `n > 1` each drain
    /// splits its input scan into `n` contiguous chunks executed across
    /// worker threads; per-worker histogram and `D_{t+1}` fragments are
    /// merged associatively in worker order, so both the output row order
    /// and the converged join estimate are identical to serial execution.
    /// Pipeline-estimated joins (Algorithm 1 push-down) always run serial —
    /// the shared estimator's push-down protocol is order-sensitive.
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Effective worker-pool width for the drains.
    fn pool_width(&self) -> usize {
        match self.estimation {
            JoinEstimation::Pipeline { .. } => 1,
            _ => self.threads,
        }
    }

    /// Attach aggregation push-down: the tracker observes the join-key
    /// distribution of the join *output* during the probe-partitioning
    /// pass, so a GROUP BY on the join attribute above this join gets
    /// GEE/MLE estimates long before the aggregation sees a tuple.
    pub fn with_agg_pushdown(mut self, tracker: Arc<Mutex<DistinctTracker>>) -> Self {
        self.agg_pushdown = Some(tracker);
        self
    }

    /// Run the build and probe-partitioning phases.
    fn preprocess(&mut self) -> QResult<()> {
        let mut build = self
            .build
            .take()
            .ok_or_else(|| QError::internal("hash join build input consumed twice"))?;
        let mut probe = self
            .probe
            .take()
            .ok_or_else(|| QError::internal("hash join probe input consumed twice"))?;

        self.build_parts = (0..self.num_partitions).map(|_| Vec::new()).collect();
        self.probe_parts = (0..self.num_partitions).map(|_| Vec::new()).collect();

        // ---- Build phase ----
        self.metrics.trace_phase(Phase::Init, Phase::Build);
        let width = self.pool_width();
        let mut worker_busy: Vec<Duration> = Vec::new();
        let mut build_hist = match self.estimation {
            JoinEstimation::Once { .. } => Some(FreqHist::new()),
            _ => None,
        };
        if let JoinEstimation::Pipeline {
            handle, join_index, ..
        } = &self.estimation
        {
            handle.lock().estimator.begin_build(*join_index)?;
        }
        let split_build = if width > 1 {
            build.try_split(width)
        } else {
            None
        };
        if let Some(subs) = split_build {
            build_hist = self.drain_build_parallel(subs, build_hist.is_some(), &mut worker_busy)?;
            // The soft histogram budget is checked on the *merged* histogram:
            // workers accumulate disjoint fragments, so the serial path's
            // mid-build degradation point has no parallel equivalent, but
            // the ladder (exact histogram → dne) and its trace event are the
            // same.
            if let Some(h) = &build_hist {
                if self.metrics.hist_budget_exceeded(h.memory_allocated()) {
                    build_hist = None;
                    self.estimation = JoinEstimation::Dne {
                        optimizer_estimate: self.metrics.estimated_total(),
                    };
                    self.metrics.trace_degraded(DegradeReason::HistogramMemory);
                }
            }
        } else {
            while let Some(row) = build.next()? {
                self.metrics.checkpoint(1)?;
                qprog_fault::fail_point!("exec/hash_build/insert");
                let key = row.key(self.build_key)?;
                if key.is_null() {
                    continue; // NULL keys never equi-join
                }
                if let Some(h) = &mut build_hist {
                    h.observe(&key);
                    // Soft histogram-memory budget: degrade the estimator one
                    // rung (exact frequency histogram → dne baseline) instead
                    // of aborting the query (ladder documented in DESIGN.md §5).
                    if self.metrics.hist_budget_exceeded(h.memory_allocated()) {
                        build_hist = None;
                        self.estimation = JoinEstimation::Dne {
                            optimizer_estimate: self.metrics.estimated_total(),
                        };
                        self.metrics.trace_degraded(DegradeReason::HistogramMemory);
                    }
                }
                if let JoinEstimation::Pipeline {
                    handle, join_index, ..
                } = &self.estimation
                {
                    handle.lock().estimator.build_tuple(*join_index, &row)?;
                }
                let p = partition_of(&key, self.num_partitions);
                self.build_parts[p].push(row);
            }
        }
        if let JoinEstimation::Pipeline {
            handle, join_index, ..
        } = &self.estimation
        {
            handle.lock().estimator.end_build(*join_index)?;
        }
        if let JoinEstimation::Once { probe_size_hint } = self.estimation {
            self.once = Some(OnceJoinEstimator::with_kind(
                build_hist.take().expect("histogram built in Once mode"),
                probe_size_hint,
                self.kind,
            ));
        }

        // ---- Probe partitioning phase ----
        self.metrics.trace_phase(Phase::Build, Phase::Probe);
        // Estimates are published (and the push-down tracker's input size
        // refreshed) in batches: per-tuple publication is measurable
        // overhead for a monitor that polls far less often anyway.
        let mut probe_rows: u64 = 0;
        let split_probe = if width > 1 {
            probe.try_split(width)
        } else {
            None
        };
        if let Some(subs) = split_probe {
            probe_rows = self.drain_probe_parallel(subs, &mut worker_busy)?;
        } else {
            while let Some(row) = probe.next()? {
                self.metrics.checkpoint(1)?;
                qprog_fault::fail_point!("exec/hash_probe/observe");
                probe_rows += 1;
                let publish = probe_rows.is_multiple_of(PUBLISH_EVERY);
                let key = row.key(self.probe_key)?;
                if let Some(once) = &mut self.once {
                    let mult = once.observe_probe(&key);
                    if publish {
                        self.metrics.set_estimated_total(once.estimate());
                        let ci = once.confidence_interval(CI_Z);
                        self.metrics.set_estimated_bounds(ci.lo, ci.hi);
                    }
                    if let Some(tracker) = &self.agg_pushdown {
                        let mut t = tracker.lock();
                        if mult > 0 {
                            t.observe_n(&key, mult);
                        }
                        if publish {
                            t.set_input_size(once.estimate().round() as u64);
                        }
                    }
                }
                if let JoinEstimation::Pipeline { handle, lowest, .. } = &self.estimation {
                    if *lowest {
                        let mut shared = handle.lock();
                        shared.estimator.observe_probe(&row)?;
                        if publish {
                            shared.publish();
                        }
                    }
                }
                if key.is_null() {
                    if matches!(self.kind, JoinKind::LeftOuter | JoinKind::Anti) {
                        self.null_probe_rows.push(row);
                    }
                    continue;
                }
                let p = partition_of(&key, self.num_partitions);
                self.probe_parts[p].push(row);
            }
        }
        // Per-worker wall-time attribution (build + probe busy combined);
        // serial drains leave `worker_busy` empty, so no events appear.
        for (w, busy) in worker_busy.iter().enumerate() {
            if !busy.is_zero() {
                self.metrics.record_worker_busy(w as u32, *busy);
            }
        }
        // The probe input is now exhausted: |S| is exact.
        if let Some(once) = &mut self.once {
            once.set_probe_size(probe_rows);
            self.metrics.set_estimated_total(once.estimate());
            self.metrics
                .set_estimated_bounds(once.estimate(), once.estimate());
            if let Some(tracker) = &self.agg_pushdown {
                tracker
                    .lock()
                    .set_input_size(once.estimate().round() as u64);
            }
        }
        if let JoinEstimation::Pipeline { handle, lowest, .. } = &self.estimation {
            if *lowest {
                let mut shared = handle.lock();
                shared.estimator.set_probe_size(probe_rows);
                shared.publish();
            }
        }
        match self.estimation {
            JoinEstimation::Dne { optimizer_estimate } => {
                self.dne = Some(DneEstimator::new(probe_rows, optimizer_estimate));
                self.metrics.set_estimated_total(optimizer_estimate);
            }
            JoinEstimation::Byte {
                optimizer_estimate,
                probe_row_bytes,
            } => {
                self.byte = Some(ByteEstimator::new(
                    probe_rows,
                    probe_row_bytes,
                    optimizer_estimate,
                ));
                self.metrics.set_estimated_total(optimizer_estimate);
            }
            _ => {}
        }

        self.metrics.trace_phase(Phase::Probe, Phase::PartitionJoin);
        self.state = JState::Joining {
            part: 0,
            table: HashMap::new(),
            probe_pos: 0,
            pending: None,
        };
        self.load_partition(0)?;
        Ok(())
    }

    /// Drain pre-split build chunks across worker threads. Each worker
    /// hash-partitions its chunk and accumulates a local [`FreqHist`]
    /// fragment; fragments are merged **in worker order**, which — because
    /// chunks are contiguous slices of the scan order — reproduces the
    /// serial partition contents and histogram state exactly.
    fn drain_build_parallel(
        &mut self,
        subs: Vec<BoxedOp>,
        want_hist: bool,
        worker_busy: &mut Vec<Duration>,
    ) -> QResult<Option<FreqHist>> {
        let build_key = self.build_key;
        let num_partitions = self.num_partitions;
        let tasks: Vec<_> = subs
            .into_iter()
            .map(|mut op| {
                let metrics = Arc::clone(&self.metrics);
                move |_w: usize| -> QResult<(Vec<Vec<Row>>, Option<FreqHist>)> {
                    let mut parts: Vec<Vec<Row>> =
                        (0..num_partitions).map(|_| Vec::new()).collect();
                    let mut hist = if want_hist {
                        Some(FreqHist::new())
                    } else {
                        None
                    };
                    while let Some(row) = op.next()? {
                        metrics.checkpoint(1)?;
                        qprog_fault::fail_point!("exec/hash_build/insert");
                        let key = row.key(build_key)?;
                        if key.is_null() {
                            continue; // NULL keys never equi-join
                        }
                        if let Some(h) = &mut hist {
                            h.observe(&key);
                        }
                        parts[partition_of(&key, num_partitions)].push(row);
                    }
                    Ok((parts, hist))
                }
            })
            .collect();
        let outputs = parallel::run_tasks(tasks)?;
        let mut merged = if want_hist {
            Some(FreqHist::new())
        } else {
            None
        };
        for (w, out) in outputs.into_iter().enumerate() {
            if w >= worker_busy.len() {
                worker_busy.resize(w + 1, Duration::ZERO);
            }
            worker_busy[w] += out.busy;
            let (parts, hist) = out.value;
            for (p, rows) in parts.into_iter().enumerate() {
                self.build_parts[p].extend(rows);
            }
            if let (Some(m), Some(h)) = (&mut merged, hist) {
                m.merge(&h);
            }
        }
        Ok(merged)
    }

    /// Drain pre-split probe chunks across worker threads. Each worker
    /// partitions its chunk, runs the `D_{t+1}` refinement against the
    /// (read-only) build histogram into a local [`ProbeFragment`], and
    /// records agg-push-down observations in arrival order; fragments are
    /// absorbed in worker order, so the converged estimate and all
    /// partition/tracker state are identical to serial execution. Workers
    /// publish a combined mid-flight estimate through shared counters every
    /// [`PUBLISH_EVERY`] local rows (confidence bounds are published only at
    /// the exact end-of-probe point when parallel).
    fn drain_probe_parallel(
        &mut self,
        subs: Vec<BoxedOp>,
        worker_busy: &mut Vec<Duration>,
    ) -> QResult<u64> {
        struct ProbeChunk {
            parts: Vec<Vec<Row>>,
            nulls: Vec<Row>,
            rows: u64,
            frag: ProbeFragment,
            agg: Vec<(Key, u64)>,
        }
        let probe_key = self.probe_key;
        let num_partitions = self.num_partitions;
        let kind = self.kind;
        let keep_nulls = matches!(self.kind, JoinKind::LeftOuter | JoinKind::Anti);
        let want_agg = self.agg_pushdown.is_some();
        let hint = match self.estimation {
            JoinEstimation::Once { probe_size_hint } => probe_size_hint,
            _ => 0,
        };
        let hist = self.once.as_ref().map(|o| o.build_histogram());
        let seen = AtomicU64::new(0);
        let matched = AtomicU64::new(0);
        let tasks: Vec<_> = subs
            .into_iter()
            .map(|mut op| {
                let metrics = Arc::clone(&self.metrics);
                let (seen, matched) = (&seen, &matched);
                move |_w: usize| -> QResult<ProbeChunk> {
                    let mut chunk = ProbeChunk {
                        parts: (0..num_partitions).map(|_| Vec::new()).collect(),
                        nulls: Vec::new(),
                        rows: 0,
                        frag: ProbeFragment::new(),
                        agg: Vec::new(),
                    };
                    let (mut flushed_t, mut flushed_sum) = (0u64, 0u128);
                    while let Some(row) = op.next()? {
                        metrics.checkpoint(1)?;
                        qprog_fault::fail_point!("exec/hash_probe/observe");
                        chunk.rows += 1;
                        let key = row.key(probe_key)?;
                        if let Some(h) = hist {
                            let mult = chunk.frag.observe(h, kind, &key);
                            if want_agg && mult > 0 {
                                chunk.agg.push((key.clone(), mult));
                            }
                            if chunk.rows.is_multiple_of(PUBLISH_EVERY) {
                                let dt = chunk.frag.seen() - flushed_t;
                                let ds = (chunk.frag.matched() - flushed_sum) as u64;
                                flushed_t = chunk.frag.seen();
                                flushed_sum = chunk.frag.matched();
                                let t = seen.fetch_add(dt, Ordering::Relaxed) + dt;
                                let s = matched.fetch_add(ds, Ordering::Relaxed) + ds;
                                if t > 0 {
                                    let est = s as f64 / t as f64 * hint.max(t) as f64;
                                    metrics.set_estimated_total(est);
                                }
                            }
                        }
                        if key.is_null() {
                            if keep_nulls {
                                chunk.nulls.push(row);
                            }
                            continue;
                        }
                        chunk.parts[partition_of(&key, num_partitions)].push(row);
                    }
                    Ok(chunk)
                }
            })
            .collect();
        let outputs = parallel::run_tasks(tasks)?;
        let mut probe_rows = 0;
        for (w, out) in outputs.into_iter().enumerate() {
            if w >= worker_busy.len() {
                worker_busy.resize(w + 1, Duration::ZERO);
            }
            worker_busy[w] += out.busy;
            let chunk = out.value;
            probe_rows += chunk.rows;
            for (p, rows) in chunk.parts.into_iter().enumerate() {
                self.probe_parts[p].extend(rows);
            }
            self.null_probe_rows.extend(chunk.nulls);
            if let Some(once) = &mut self.once {
                once.absorb(&chunk.frag);
            }
            if let Some(tracker) = &self.agg_pushdown {
                let mut t = tracker.lock();
                for (key, mult) in chunk.agg {
                    t.observe_n(&key, mult);
                }
            }
        }
        Ok(probe_rows)
    }

    /// Build the in-memory hash table for partition `part`.
    fn load_partition(&mut self, part: usize) -> QResult<()> {
        let mut table: HashMap<Key, Vec<usize>> = HashMap::new();
        for (i, row) in self.build_parts[part].iter().enumerate() {
            let key = row.key(self.build_key)?;
            table.entry(key).or_default().push(i);
        }
        self.state = JState::Joining {
            part,
            table,
            probe_pos: 0,
            pending: None,
        };
        Ok(())
    }
}

/// Baseline bookkeeping for one probe row consumed in the join pass.
/// Free function so it can run while `self.state` is mutably borrowed.
fn observe_join_driver(
    dne: &mut Option<DneEstimator>,
    byte: &mut Option<ByteEstimator>,
    metrics: &OpMetrics,
) {
    if let Some(dne) = dne {
        dne.observe_driver(1);
        metrics.set_estimated_total(dne.estimate());
    }
    if let Some(byte) = byte {
        byte.observe_input_rows(1);
        metrics.set_estimated_total(byte.estimate());
    }
}

/// Baseline bookkeeping for one output row emitted in the join pass.
fn observe_join_output(
    dne: &mut Option<DneEstimator>,
    byte: &mut Option<ByteEstimator>,
    metrics: &OpMetrics,
) {
    if let Some(dne) = dne {
        dne.observe_output(1);
        metrics.set_estimated_total(dne.estimate());
    }
    if let Some(byte) = byte {
        byte.observe_output_rows(1);
        metrics.set_estimated_total(byte.estimate());
    }
}

impl Operator for HashJoin {
    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn next(&mut self) -> QResult<Option<Row>> {
        if matches!(self.state, JState::Init) {
            self.preprocess()?;
        }
        loop {
            match &mut self.state {
                JState::Init => unreachable!("preprocessed above"),
                JState::Done => return Ok(None),
                JState::Joining {
                    part,
                    table,
                    probe_pos,
                    pending,
                } => {
                    // Emit from the pending match group first (Inner /
                    // matched LeftOuter emit one row per build match).
                    if let Some((matches, probe_row, cursor)) = pending {
                        if *cursor < matches.len() {
                            let build_row = &self.build_parts[*part][matches[*cursor]];
                            let out = build_row.concat(probe_row);
                            *cursor += 1;
                            self.metrics.record_emitted();
                            observe_join_output(&mut self.dne, &mut self.byte, &self.metrics);
                            return Ok(Some(out));
                        }
                        *pending = None;
                    }
                    // Advance within the current partition's probe rows.
                    if let Some(probe_row) = self.probe_parts[*part].get(*probe_pos) {
                        self.metrics.checkpoint(1)?;
                        let probe_row = probe_row.clone();
                        *probe_pos += 1;
                        self.metrics.record_driver(1);
                        let key = probe_row.key(self.probe_key)?;
                        let matches = table.get(&key).cloned().unwrap_or_default();
                        observe_join_driver(&mut self.dne, &mut self.byte, &self.metrics);
                        let emit_single = match (self.kind, matches.is_empty()) {
                            (JoinKind::Inner | JoinKind::LeftOuter, false) => {
                                *pending = Some((matches, probe_row, 0));
                                None
                            }
                            (JoinKind::LeftOuter, true) => Some(self.null_pad.concat(&probe_row)),
                            (JoinKind::Semi, false) | (JoinKind::Anti, true) => Some(probe_row),
                            _ => None,
                        };
                        if let Some(out) = emit_single {
                            self.metrics.record_emitted();
                            observe_join_output(&mut self.dne, &mut self.byte, &self.metrics);
                            return Ok(Some(out));
                        }
                        continue;
                    }
                    // Partition exhausted: move to the next.
                    let next_part = *part + 1;
                    if next_part < self.num_partitions {
                        self.load_partition(next_part)?;
                    } else if let Some(row) = self.null_probe_rows.pop() {
                        // NULL-key probe rows never match: LeftOuter pads
                        // them, Anti passes them through.
                        let out = match self.kind {
                            JoinKind::LeftOuter => self.null_pad.concat(&row),
                            _ => row,
                        };
                        self.metrics.record_emitted();
                        observe_join_output(&mut self.dne, &mut self.byte, &self.metrics);
                        return Ok(Some(out));
                    } else {
                        self.state = JState::Done;
                        self.metrics.mark_finished();
                        return Ok(None);
                    }
                }
            }
        }
    }

    fn name(&self) -> &str {
        "hash_join"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::test_util::{drain, int_table};
    use crate::ops::TableScan;
    use qprog_core::pipeline_est::{AttrSource, JoinSpec};

    fn scan1(name: &str, vals: &[i64]) -> BoxedOp {
        let t = int_table(name, "k", vals).into_shared();
        Box::new(TableScan::new(t, OpMetrics::with_initial_estimate(0.0)))
    }

    fn exact_join(r: &[i64], s: &[i64]) -> usize {
        r.iter()
            .map(|a| s.iter().filter(|&&b| b == *a).count())
            .sum()
    }

    #[test]
    fn joins_correctly() {
        let r = [1i64, 1, 2, 3];
        let s = [1i64, 2, 2, 4];
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = HashJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            JoinEstimation::Off,
            Arc::clone(&m),
        );
        let rows = drain(&mut j);
        assert_eq!(rows.len(), exact_join(&r, &s)); // 1×2 + 2×2 = 4
        for row in &rows {
            assert_eq!(row.arity(), 2);
            assert_eq!(row.get(0).unwrap(), row.get(1).unwrap());
        }
        assert_eq!(m.emitted(), 4);
        assert!(m.is_finished());
    }

    #[test]
    fn null_keys_never_join() {
        use qprog_types::{DataType, Field, Row, Schema, Value};
        let mut t = qprog_storage::Table::new(
            "n",
            Schema::new(vec![Field::new("k", DataType::Int64).with_nullable(true)]),
        );
        t.push(Row::new(vec![Value::Null])).unwrap();
        t.push(Row::new(vec![Value::Int64(1)])).unwrap();
        let t = t.into_shared();
        let left: BoxedOp = Box::new(TableScan::new(
            Arc::clone(&t),
            OpMetrics::with_initial_estimate(0.0),
        ));
        let right: BoxedOp = Box::new(TableScan::new(t, OpMetrics::with_initial_estimate(0.0)));
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = HashJoin::new(left, right, 0, 0, JoinEstimation::Off, m);
        let rows = drain(&mut j);
        assert_eq!(rows.len(), 1); // only 1 = 1
    }

    #[test]
    fn once_estimate_converges_before_output() {
        let r: Vec<i64> = (0..500).map(|i| i % 50).collect();
        let s: Vec<i64> = (0..800).map(|i| i % 100).collect();
        let truth = exact_join(&r, &s) as f64;
        let m = OpMetrics::with_initial_estimate(1.0);
        let mut j = HashJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            JoinEstimation::Once {
                probe_size_hint: s.len() as u64,
            },
            Arc::clone(&m),
        );
        // Pull exactly one output row: preprocessing (build + probe
        // partitioning) has completed, so the estimate must already be exact.
        let first = j.next().unwrap();
        assert!(first.is_some());
        assert_eq!(m.estimated_total(), truth);
        let rest = drain(&mut j);
        assert_eq!(rest.len() + 1, truth as usize);
    }

    #[test]
    fn once_corrects_bad_probe_size_hint() {
        let r = [5i64, 5];
        let s = [5i64, 5, 5, 6];
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = HashJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            JoinEstimation::Once {
                probe_size_hint: 4000, // wildly wrong
            },
            Arc::clone(&m),
        );
        let rows = drain(&mut j);
        assert_eq!(rows.len(), 6);
        assert_eq!(m.estimated_total(), 6.0);
    }

    #[test]
    fn dne_fluctuates_with_partition_clustered_output() {
        // Skewed: one hot value. dne watches the join pass, whose output is
        // clustered by partition, so its estimate must move a lot.
        let r: Vec<i64> = std::iter::repeat_n(7, 200).chain(0..50).collect();
        let s: Vec<i64> = (0..1000).map(|i| i % 100).collect();
        let m = OpMetrics::with_initial_estimate(50.0);
        let mut j = HashJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            JoinEstimation::Dne {
                optimizer_estimate: 50.0,
            },
            Arc::clone(&m),
        );
        let mut estimates = Vec::new();
        while let Some(_row) = j.next().unwrap() {
            estimates.push(m.estimated_total());
        }
        let truth = exact_join(&r, &s) as f64;
        // converged once every probe row has been joined
        assert_eq!(m.estimated_total(), truth);
        // ...but wandered on the way: relative spread well above 30%.
        let min = estimates.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = estimates.iter().cloned().fold(0.0, f64::max);
        assert!(
            max / min > 1.3,
            "dne should fluctuate under clustering: min {min} max {max} truth {truth}"
        );
    }

    #[test]
    fn byte_estimator_publishes_and_converges() {
        let r: Vec<i64> = (0..100).collect();
        let s: Vec<i64> = (0..100).collect();
        let m = OpMetrics::with_initial_estimate(13.0);
        let mut j = HashJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            JoinEstimation::Byte {
                optimizer_estimate: 13.0,
                probe_row_bytes: 8,
            },
            Arc::clone(&m),
        );
        let rows = drain(&mut j);
        assert_eq!(rows.len(), 100);
        assert_eq!(m.estimated_total(), 100.0);
    }

    #[test]
    fn pipeline_mode_two_joins_same_attribute() {
        // upper: A ⋈ (B ⋈ C) all on col 0. Exec tree: HashJoin(build=A,
        // probe=HashJoin(build=B, probe=C)).
        let a = [1i64, 1, 2];
        let b = [1i64, 2, 2];
        let c = [1i64, 2, 9];
        let specs = vec![
            JoinSpec {
                build_attr_col: 0,
                probe_attr: AttrSource::Probe { col: 0 },
            };
            2
        ];
        let m_lower = OpMetrics::with_initial_estimate(0.0);
        let m_upper = OpMetrics::with_initial_estimate(0.0);
        let shared: PipelineHandle = Arc::new(Mutex::new(PipelineShared {
            estimator: PipelineEstimator::new(specs, c.len() as u64).unwrap(),
            metrics: vec![Arc::clone(&m_lower), Arc::clone(&m_upper)],
        }));
        let lower = HashJoin::new(
            scan1("b", &b),
            scan1("c", &c),
            0,
            0,
            JoinEstimation::Pipeline {
                handle: Arc::clone(&shared),
                join_index: 0,
                lowest: true,
            },
            Arc::clone(&m_lower),
        );
        let mut upper = HashJoin::new(
            scan1("a", &a),
            Box::new(lower),
            0,
            0,
            JoinEstimation::Pipeline {
                handle: Arc::clone(&shared),
                join_index: 1,
                lowest: false,
            },
            Arc::clone(&m_upper),
        );
        let rows = drain(&mut upper);
        // lower join: 1→1, 2→2 matches = 3 rows (c=1:1, c=2:2)
        // upper: c=1 → 1·2(A has two 1s)=2; c=2 → 2·1 = 2 → 4 rows
        assert_eq!(rows.len(), 4);
        assert_eq!(m_lower.estimated_total(), 3.0);
        assert_eq!(m_upper.estimated_total(), 4.0);
    }

    #[test]
    fn agg_pushdown_tracks_output_distinct() {
        let r = [1i64, 1, 2, 3];
        let s = [1i64, 2, 2, 5];
        // join output keys: 1 (×2), 2 (×2) → 2 distinct
        let tracker = Arc::new(Mutex::new(DistinctTracker::new(10)));
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = HashJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            JoinEstimation::Once { probe_size_hint: 4 },
            Arc::clone(&m),
        )
        .with_agg_pushdown(Arc::clone(&tracker));
        let rows = drain(&mut j);
        assert_eq!(rows.len(), 4);
        let t = tracker.lock();
        assert_eq!(t.groups_seen(), 2);
        assert_eq!(t.estimate(), 2.0);
    }

    #[test]
    fn join_kinds_semantics_and_estimates() {
        use qprog_types::Value;
        let r = [1i64, 1, 2, 3];
        let s = [1i64, 2, 2, 4, 9];
        // truths: inner 4 (1×2 + 2×1 + 2×1); semi 3; anti 2; louter 4+2=6
        for (kind, expect_rows, expect_arity) in [
            (JoinKind::Inner, 4usize, 2usize),
            (JoinKind::Semi, 3, 1),
            (JoinKind::Anti, 2, 1),
            (JoinKind::LeftOuter, 6, 2),
        ] {
            let m = OpMetrics::with_initial_estimate(0.0);
            let mut j = HashJoin::new(
                scan1("r", &r),
                scan1("s", &s),
                0,
                0,
                JoinEstimation::Once {
                    probe_size_hint: s.len() as u64,
                },
                Arc::clone(&m),
            )
            .with_join_kind(kind);
            assert_eq!(j.schema().arity(), expect_arity, "{kind:?}");
            let rows = drain(&mut j);
            assert_eq!(rows.len(), expect_rows, "{kind:?}");
            // once estimate exact at completion for every kind
            assert_eq!(m.estimated_total(), expect_rows as f64, "{kind:?}");
            if kind == JoinKind::LeftOuter {
                // unmatched probe rows are NULL-padded on the build side
                let padded = rows
                    .iter()
                    .filter(|row| row.get(0).unwrap() == &Value::Null)
                    .count();
                assert_eq!(padded, 2);
            }
        }
    }

    #[test]
    fn null_probe_keys_per_kind() {
        use qprog_types::{DataType, Field, Schema, Value};
        let mut t = qprog_storage::Table::new(
            "p",
            Schema::new(vec![Field::new("k", DataType::Int64).with_nullable(true)]),
        );
        t.push(Row::new(vec![Value::Null])).unwrap();
        t.push(Row::new(vec![Value::Int64(1)])).unwrap();
        let t = t.into_shared();
        for (kind, expect) in [
            (JoinKind::Inner, 1usize), // only 1=1
            (JoinKind::Semi, 1),       // the matching row
            (JoinKind::Anti, 1),       // the NULL row (no match)
            (JoinKind::LeftOuter, 2),  // match + padded NULL row
        ] {
            let probe: BoxedOp = Box::new(TableScan::new(
                Arc::clone(&t),
                OpMetrics::with_initial_estimate(0.0),
            ));
            let m = OpMetrics::with_initial_estimate(0.0);
            let mut j = HashJoin::new(scan1("r", &[1, 2]), probe, 0, 0, JoinEstimation::Off, m)
                .with_join_kind(kind);
            assert_eq!(drain(&mut j).len(), expect, "{kind:?}");
        }
    }

    /// Run the skewed reference join at a given thread count and return
    /// (output rows, final estimate, tracker distinct estimate).
    fn skewed_join_at(threads: usize, kind: JoinKind) -> (Vec<Row>, f64, f64) {
        let r: Vec<i64> = (0..700)
            .map(|i| if i % 3 == 0 { 7 } else { i % 90 })
            .collect();
        let s: Vec<i64> = (0..1100).map(|i| i % 130).collect();
        let tracker = Arc::new(Mutex::new(DistinctTracker::new(1 << 20)));
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = HashJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            JoinEstimation::Once {
                probe_size_hint: s.len() as u64,
            },
            Arc::clone(&m),
        )
        .with_join_kind(kind)
        .with_threads(threads)
        .with_agg_pushdown(Arc::clone(&tracker));
        let rows = drain(&mut j);
        let distinct = tracker.lock().estimate();
        (rows, m.estimated_total(), distinct)
    }

    #[test]
    fn parallel_drains_are_byte_identical_to_serial() {
        for kind in [
            JoinKind::Inner,
            JoinKind::LeftOuter,
            JoinKind::Semi,
            JoinKind::Anti,
        ] {
            let (serial_rows, serial_est, serial_distinct) = skewed_join_at(1, kind);
            for threads in [2usize, 4] {
                let (rows, est, distinct) = skewed_join_at(threads, kind);
                assert_eq!(rows, serial_rows, "{kind:?} threads={threads}");
                assert_eq!(
                    est.to_bits(),
                    serial_est.to_bits(),
                    "{kind:?} threads={threads}"
                );
                assert_eq!(
                    distinct.to_bits(),
                    serial_distinct.to_bits(),
                    "{kind:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_join_reports_worker_attribution() {
        let r: Vec<i64> = (0..2000).map(|i| i % 40).collect();
        let s: Vec<i64> = (0..2000).map(|i| i % 55).collect();
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = HashJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            JoinEstimation::Once {
                probe_size_hint: s.len() as u64,
            },
            Arc::clone(&m),
        )
        .with_threads(4);
        drain(&mut j);
        assert_eq!(m.workers(), Some(4));
        // serial runs never report workers
        let m1 = OpMetrics::with_initial_estimate(0.0);
        let mut j1 = HashJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            JoinEstimation::Off,
            Arc::clone(&m1),
        );
        drain(&mut j1);
        assert_eq!(m1.workers(), None);
    }

    #[test]
    fn parallel_threads_exceeding_blocks_still_correct() {
        // More workers than blocks: some sub-scans are empty.
        let r = [1i64, 2, 3];
        let s = [1i64, 1, 3];
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = HashJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            JoinEstimation::Once { probe_size_hint: 3 },
            Arc::clone(&m),
        )
        .with_threads(8);
        assert_eq!(drain(&mut j).len(), 3);
        assert_eq!(m.estimated_total(), 3.0);
    }

    #[test]
    fn single_partition_degenerate_case() {
        let r = [1i64, 2];
        let s = [2i64, 1];
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = HashJoin::new(scan1("r", &r), scan1("s", &s), 0, 0, JoinEstimation::Off, m)
            .with_partitions(1);
        assert_eq!(drain(&mut j).len(), 2);
    }

    #[test]
    fn empty_inputs() {
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = HashJoin::new(
            scan1("r", &[]),
            scan1("s", &[1, 2]),
            0,
            0,
            JoinEstimation::Once { probe_size_hint: 2 },
            Arc::clone(&m),
        );
        assert!(j.next().unwrap().is_none());
        assert_eq!(m.estimated_total(), 0.0);
        let m2 = OpMetrics::with_initial_estimate(0.0);
        let mut j = HashJoin::new(
            scan1("r", &[1]),
            scan1("s", &[]),
            0,
            0,
            JoinEstimation::Off,
            m2,
        );
        assert!(j.next().unwrap().is_none());
    }
}
