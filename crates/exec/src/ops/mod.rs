//! Physical operators.

pub mod agg;
pub mod filter;
pub mod hash_join;
pub mod limit;
pub mod merge_join;
pub mod nl_join;
pub mod project;
pub mod scan;
pub mod sort;
pub mod sort_agg;

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use qprog_types::{Key, QResult, Row, SchemaRef};

pub use agg::{AggFunc, AggSpec, HashAggregate};
pub use filter::Filter;
pub use hash_join::{HashJoin, JoinEstimation, PipelineHandle};
pub use limit::Limit;
pub use merge_join::MergeJoin;
pub use nl_join::NestedLoopsJoin;
pub use project::Project;
pub use scan::TableScan;
pub use sort::Sort;
pub use sort_agg::SortAggregate;

/// The Volcano iterator interface. One [`next`](Operator::next) call per
/// output tuple — the `getnext()` event counted by the gnm progress model.
pub trait Operator: Send {
    /// Output schema.
    fn schema(&self) -> SchemaRef;

    /// Produce the next output row, or `None` when exhausted.
    fn next(&mut self) -> QResult<Option<Row>>;

    /// Operator name for plan display and metrics registration.
    fn name(&self) -> &str;

    /// Attempt to split this not-yet-started operator into `ways`
    /// independent sub-operators that partition its remaining output.
    /// Concatenating the sub-operators' streams in index order reproduces
    /// this operator's output order **exactly** — the invariant the
    /// partition-parallel hash join relies on for byte-identical results at
    /// any thread count.
    ///
    /// On `Some`, this operator is retired (its `next` returns `None`
    /// without touching metrics) and the sub-operators share its metrics
    /// handle; the last sub-operator to exhaust marks it finished. Only
    /// partitionable leaves (table scans) support splitting; the default
    /// declines.
    fn try_split(&mut self, ways: usize) -> Option<Vec<BoxedOp>> {
        let _ = ways;
        None
    }
}

/// Boxed operator, the unit of plan composition.
pub type BoxedOp = Box<dyn Operator>;

/// How many tuples pass between refreshed estimate publications during
/// tight preprocessing loops. Monitors poll at millisecond granularity;
/// publishing every tuple is pure overhead.
pub const PUBLISH_EVERY: u64 = 256;

/// Stable partition hash for grace-join partitioning (independent of the
/// hash used inside per-partition join tables, so partitioning skew does not
/// correlate with bucket collisions).
pub(crate) fn partition_of(key: &Key, partitions: usize) -> usize {
    let mut h = DefaultHasher::new();
    // Fixed tag decorrelates this from HashMap's SipHash usage.
    0x9E37_79B9_7F4A_7C15_u64.hash(&mut h);
    key.hash(&mut h);
    (h.finish() % partitions as u64) as usize
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use qprog_storage::Table;
    use qprog_types::{row, DataType, Field, Schema};

    /// Build a one-column BIGINT table from values.
    pub fn int_table(name: &str, col: &str, vals: &[i64]) -> Table {
        let mut t = Table::new(name, Schema::new(vec![Field::new(col, DataType::Int64)]));
        for &v in vals {
            t.push(row![v]).unwrap();
        }
        t
    }

    /// Build a two-column BIGINT table from (a, b) pairs.
    pub fn int2_table(name: &str, cols: (&str, &str), vals: &[(i64, i64)]) -> Table {
        let mut t = Table::new(
            name,
            Schema::new(vec![
                Field::new(cols.0, DataType::Int64),
                Field::new(cols.1, DataType::Int64),
            ]),
        );
        for &(a, b) in vals {
            t.push(row![a, b]).unwrap();
        }
        t
    }

    /// Drain an operator into a vector.
    pub fn drain(op: &mut dyn Operator) -> Vec<Row> {
        let mut out = Vec::new();
        while let Some(r) = op.next().unwrap() {
            out.push(r);
        }
        out
    }

    /// Extract column `c` of every row as i64.
    pub fn col_i64(rows: &[Row], c: usize) -> Vec<i64> {
        rows.iter()
            .map(|r| r.get(c).unwrap().as_i64().unwrap())
            .collect()
    }
}
