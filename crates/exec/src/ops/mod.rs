//! Physical operators.

pub mod agg;
pub mod filter;
pub mod hash_join;
pub mod limit;
pub mod merge_join;
pub mod nl_join;
pub mod project;
pub mod scan;
pub mod sort;
pub mod sort_agg;

use std::hash::{Hash, Hasher};

use qprog_types::{BatchStatus, Key, QResult, Row, RowBatch, SchemaRef};

pub use agg::{AggFunc, AggSpec, HashAggregate};
pub use filter::Filter;
pub use hash_join::{HashJoin, JoinEstimation, PipelineHandle};
pub use limit::Limit;
pub use merge_join::MergeJoin;
pub use nl_join::NestedLoopsJoin;
pub use project::Project;
pub use scan::TableScan;
pub use sort::Sort;
pub use sort_agg::SortAggregate;

/// The vectorized pull interface. One [`next_batch`](Operator::next_batch)
/// call refills the caller's [`RowBatch`] with up to `out.capacity()` rows;
/// every row appended is a `getnext()` event of the gnm progress model, and
/// each operator sums its `K_i` deltas per batch — exact, because the model
/// counts events, not call boundaries.
///
/// Contract:
/// - `next_batch` **clears** `out` before producing (callers never see
///   stale rows, operators never append to a predecessor's output).
/// - [`BatchStatus::Exhausted`] may accompany final rows; the caller
///   consumes `out` and then stops. Operators are *fused*: further calls
///   after exhaustion return an empty `Exhausted` with no side effects.
/// - With `out.capacity() == 1` (the strict legacy-equivalent mode) an
///   operator performs exactly the per-tuple bookkeeping the
///   tuple-at-a-time engine performed, in the same order, so traces are
///   byte-identical.
pub trait Operator: Send {
    /// Output schema.
    fn schema(&self) -> SchemaRef;

    /// Clear `out` and refill it with up to `out.capacity()` output rows.
    fn next_batch(&mut self, out: &mut RowBatch) -> QResult<BatchStatus>;

    /// Operator name for plan display and metrics registration.
    fn name(&self) -> &str;

    /// Attempt to split this not-yet-started operator into `ways`
    /// independent sub-operators that partition its remaining output.
    /// Concatenating the sub-operators' streams in index order reproduces
    /// this operator's output order **exactly** — the invariant the
    /// partition-parallel hash join relies on for byte-identical results at
    /// any thread count.
    ///
    /// On `Some`, this operator is retired (its `next_batch` reports
    /// `Exhausted` without touching metrics) and the sub-operators share
    /// its metrics handle; the last sub-operator to exhaust marks it
    /// finished. Only partitionable leaves (table scans) support splitting;
    /// the default declines.
    fn try_split(&mut self, ways: usize) -> Option<Vec<BoxedOp>> {
        let _ = ways;
        None
    }
}

/// Boxed operator, the unit of plan composition.
pub type BoxedOp = Box<dyn Operator>;

/// Row-at-a-time adapter over a batch [`Operator`] — the Volcano `next()`
/// the pre-vectorized engine exposed, for tests, examples, and stepping
/// monitors that want single-row granularity.
///
/// Internally reuses one capacity-1 batch, so each `next_row()` performs the
/// strict-mode per-tuple bookkeeping and no per-call allocation.
pub struct RowSource<'a> {
    op: &'a mut dyn Operator,
    buf: RowBatch,
    /// Rows of `buf` already handed out (buf holds ≤1 row, but a defensive
    /// cursor keeps this correct even if an operator over-fills).
    pos: usize,
    exhausted: bool,
}

impl<'a> RowSource<'a> {
    /// Wrap `op` for row-at-a-time consumption.
    pub fn new(op: &'a mut dyn Operator) -> Self {
        let arity = op.schema().arity();
        RowSource {
            op,
            buf: RowBatch::with_capacity(arity, 1),
            pos: 0,
            exhausted: false,
        }
    }

    /// Produce the next output row, or `None` when exhausted.
    pub fn next_row(&mut self) -> QResult<Option<Row>> {
        loop {
            if self.pos < self.buf.len() {
                let row = self.buf.row(self.pos);
                self.pos += 1;
                return Ok(Some(row));
            }
            if self.exhausted {
                return Ok(None);
            }
            let status = self.op.next_batch(&mut self.buf)?;
            self.pos = 0;
            self.exhausted = status.is_exhausted();
        }
    }
}

/// How many tuples pass between refreshed estimate publications during
/// tight preprocessing loops. Monitors poll at millisecond granularity;
/// publishing every tuple is pure overhead.
pub const PUBLISH_EVERY: u64 = 256;

/// Stable partition hash for grace-join partitioning (independent of the
/// hash used inside per-partition join tables, so partitioning skew does not
/// correlate with bucket collisions). Runs once per build *and* probe tuple,
/// so it uses the framework's Fx-style hasher rather than SipHash.
pub(crate) fn partition_of(key: &Key, partitions: usize) -> usize {
    let mut h = qprog_core::fx::FxHasher::default();
    // Fixed tag decorrelates this from the join tables' Fx usage.
    0x9E37_79B9_7F4A_7C15_u64.hash(&mut h);
    key.hash(&mut h);
    (h.finish() % partitions as u64) as usize
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use qprog_storage::Table;
    use qprog_types::{row, DataType, Field, Schema};

    /// Build a one-column BIGINT table from values.
    pub fn int_table(name: &str, col: &str, vals: &[i64]) -> Table {
        let mut t = Table::new(name, Schema::new(vec![Field::new(col, DataType::Int64)]));
        for &v in vals {
            t.push(row![v]).unwrap();
        }
        t
    }

    /// Build a two-column BIGINT table from (a, b) pairs.
    pub fn int2_table(name: &str, cols: (&str, &str), vals: &[(i64, i64)]) -> Table {
        let mut t = Table::new(
            name,
            Schema::new(vec![
                Field::new(cols.0, DataType::Int64),
                Field::new(cols.1, DataType::Int64),
            ]),
        );
        for &(a, b) in vals {
            t.push(row![a, b]).unwrap();
        }
        t
    }

    /// Drain an operator into a vector through capacity-1 batches (the
    /// strict mode), so stepping with [`RowSource`] and draining compose
    /// with identical per-tuple bookkeeping.
    pub fn drain(op: &mut dyn Operator) -> Vec<Row> {
        let mut src = RowSource::new(op);
        let mut out = Vec::new();
        while let Some(r) = src.next_row().unwrap() {
            out.push(r);
        }
        out
    }

    /// Drain an operator through batches of `cap` rows.
    pub fn drain_batched(op: &mut dyn Operator, cap: usize) -> Vec<Row> {
        let mut batch = qprog_types::RowBatch::with_capacity(op.schema().arity(), cap);
        let mut out = Vec::new();
        loop {
            let status = op.next_batch(&mut batch).unwrap();
            batch.append_rows_to(&mut out);
            if status.is_exhausted() {
                return out;
            }
        }
    }

    /// Extract column `c` of every row as i64.
    pub fn col_i64(rows: &[Row], c: usize) -> Vec<i64> {
        rows.iter()
            .map(|r| r.get(c).unwrap().as_i64().unwrap())
            .collect()
    }
}
