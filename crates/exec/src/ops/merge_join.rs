//! Sort-merge join with estimation pushed into the sort phases (§4.1.2).
//!
//! Both inputs are sorted before any output: the left (first-sorted) input's
//! consume phase builds the exact join-key histogram; the right input's
//! consume phase probes it, so with `once` estimation the join cardinality
//! is exact by the time the second sort's input is drained — before the
//! merge emits anything. The merged output is necessarily key-clustered,
//! which is what makes the dne/byte baselines fluctuate here just as for
//! hash joins.

use std::cmp::Ordering;
use std::sync::Arc;

use qprog_core::byte::ByteEstimator;
use qprog_core::dne::DneEstimator;
use qprog_core::freq_hist::FreqHist;
use qprog_core::join_est::OnceJoinEstimator;
use qprog_types::{BatchStatus, QError, QResult, Row, RowBatch, SchemaRef};

use crate::metrics::OpMetrics;
use crate::ops::hash_join::PipelineHandle;
use crate::ops::{BoxedOp, Operator, PUBLISH_EVERY};
use crate::trace::Phase;

/// Estimation strategy for a sort-merge join.
pub enum MergeJoinEstimation {
    Off,
    /// The paper's framework; `probe_size_hint` is the right input's known
    /// or estimated size.
    Once {
        probe_size_hint: u64,
    },
    /// Algorithm-1 push-down for a chain of sort-merge joins (§4.1.4.3):
    /// each join's left-sort phase feeds the shared estimator's build for
    /// `join_index`; the lowest join's right-sort consume drives probing.
    Pipeline {
        handle: PipelineHandle,
        join_index: usize,
        lowest: bool,
    },
    /// Driver-node baseline (driver = right rows consumed by the merge).
    Dne {
        optimizer_estimate: f64,
    },
    /// Byte-model baseline.
    Byte {
        optimizer_estimate: f64,
        probe_row_bytes: u64,
    },
}

enum MState {
    Init,
    Merging {
        li: usize,
        ri: usize,
        /// Cartesian emission state within an equal-key group:
        /// (l range, r range, cursor within the cross product).
        group: Option<(std::ops::Range<usize>, std::ops::Range<usize>, usize)>,
    },
    Done,
}

/// Sort-merge equi-join on single columns.
pub struct MergeJoin {
    left: Option<BoxedOp>,
    right: Option<BoxedOp>,
    left_key: usize,
    right_key: usize,
    schema: SchemaRef,
    metrics: Arc<OpMetrics>,
    estimation: MergeJoinEstimation,
    left_rows: Vec<Row>,
    right_rows: Vec<Row>,
    once: Option<OnceJoinEstimator>,
    dne: Option<DneEstimator>,
    byte: Option<ByteEstimator>,
    state: MState,
}

impl MergeJoin {
    /// New sort-merge join.
    pub fn new(
        left: BoxedOp,
        right: BoxedOp,
        left_key: usize,
        right_key: usize,
        estimation: MergeJoinEstimation,
        metrics: Arc<OpMetrics>,
    ) -> Self {
        let schema = left.schema().join(&right.schema()).into_ref();
        MergeJoin {
            left: Some(left),
            right: Some(right),
            left_key,
            right_key,
            schema,
            metrics,
            estimation,
            left_rows: Vec::new(),
            right_rows: Vec::new(),
            once: None,
            dne: None,
            byte: None,
            state: MState::Init,
        }
    }

    /// Sort phases for both inputs, with estimation interleaved.
    fn preprocess(&mut self, batch_cap: usize) -> QResult<()> {
        let mut left = self
            .left
            .take()
            .ok_or_else(|| QError::internal("merge join left input consumed twice"))?;
        let mut right = self
            .right
            .take()
            .ok_or_else(|| QError::internal("merge join right input consumed twice"))?;

        // Sort left (R): every tuple is seen before output → histogram.
        self.metrics.trace_phase(Phase::Init, Phase::SortInput);
        let mut hist = match self.estimation {
            MergeJoinEstimation::Once { .. } => Some(FreqHist::new()),
            _ => None,
        };
        if let MergeJoinEstimation::Pipeline {
            handle, join_index, ..
        } = &self.estimation
        {
            handle.lock().estimator.begin_build(*join_index)?;
        }
        let mut scratch = RowBatch::with_capacity(left.schema().arity(), batch_cap);
        loop {
            let status = left.next_batch(&mut scratch)?;
            let n = scratch.len();
            if n > 0 {
                self.metrics.checkpoint(n as u64)?;
            }
            for r in 0..n {
                let key = scratch.key(r, self.left_key)?;
                if key.is_null() {
                    continue;
                }
                if let Some(h) = &mut hist {
                    h.observe(&key);
                }
                let row = scratch.row(r);
                if let MergeJoinEstimation::Pipeline {
                    handle, join_index, ..
                } = &self.estimation
                {
                    handle.lock().estimator.build_tuple(*join_index, &row)?;
                }
                self.left_rows.push(row);
            }
            if status.is_exhausted() {
                break;
            }
        }
        if let MergeJoinEstimation::Pipeline {
            handle, join_index, ..
        } = &self.estimation
        {
            handle.lock().estimator.end_build(*join_index)?;
        }
        let lk = self.left_key;
        self.left_rows.sort_by(|a, b| key_cmp(a, b, lk, lk));

        if let MergeJoinEstimation::Once { probe_size_hint } = self.estimation {
            self.once = Some(OnceJoinEstimator::new(
                hist.take().expect("histogram built in Once mode"),
                probe_size_hint,
            ));
        }

        // Sort right (S): probe the histogram while consuming. Estimates
        // are published in batches — per-tuple publication is measurable
        // overhead for a monitor that polls far less often anyway.
        let mut right_count: u64 = 0;
        let mut scratch = RowBatch::with_capacity(right.schema().arity(), batch_cap);
        loop {
            let status = right.next_batch(&mut scratch)?;
            let n = scratch.len();
            if n > 0 {
                self.metrics.checkpoint(n as u64)?;
            }
            for r in 0..n {
                right_count += 1;
                let key = scratch.key(r, self.right_key)?;
                if let Some(once) = &mut self.once {
                    once.observe_probe(&key);
                    if right_count.is_multiple_of(PUBLISH_EVERY) {
                        self.metrics.set_estimated_total(once.estimate());
                        let ci = once.confidence_interval(2.576);
                        self.metrics.set_estimated_bounds(ci.lo, ci.hi);
                    }
                }
                if key.is_null() {
                    continue;
                }
                self.right_rows.push(scratch.row(r));
            }
            if status.is_exhausted() {
                break;
            }
        }
        let rk = self.right_key;
        self.right_rows.sort_by(|a, b| key_cmp(a, b, rk, rk));
        if let Some(once) = &mut self.once {
            once.set_probe_size(right_count);
            self.metrics.set_estimated_total(once.estimate());
            self.metrics
                .set_estimated_bounds(once.estimate(), once.estimate());
        }
        if let MergeJoinEstimation::Pipeline { handle, lowest, .. } = &self.estimation {
            if *lowest {
                let mut shared = handle.lock();
                shared.estimator.set_probe_size(right_count);
                shared.publish();
            }
        }
        match self.estimation {
            MergeJoinEstimation::Dne { optimizer_estimate } => {
                self.dne = Some(DneEstimator::new(right_count, optimizer_estimate));
                self.metrics.set_estimated_total(optimizer_estimate);
            }
            MergeJoinEstimation::Byte {
                optimizer_estimate,
                probe_row_bytes,
            } => {
                self.byte = Some(ByteEstimator::new(
                    right_count,
                    probe_row_bytes,
                    optimizer_estimate,
                ));
                self.metrics.set_estimated_total(optimizer_estimate);
            }
            _ => {}
        }
        self.metrics.trace_phase(Phase::SortInput, Phase::Merge);
        self.state = MState::Merging {
            li: 0,
            ri: 0,
            group: None,
        };
        Ok(())
    }

    /// Length of the run of rows equal on `col` starting at `start`.
    fn run_len(rows: &[Row], start: usize, col: usize) -> usize {
        let head = rows[start].get(col).expect("validated column");
        rows[start..]
            .iter()
            .take_while(|r| {
                r.get(col)
                    .map(|v| v.total_cmp(head) == Ordering::Equal)
                    .unwrap_or(false)
            })
            .count()
    }

    fn observe_right_consumed(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(dne) = &mut self.dne {
            dne.observe_driver(n);
            self.metrics.set_estimated_total(dne.estimate());
        }
        if let Some(byte) = &mut self.byte {
            byte.observe_input_rows(n);
            self.metrics.set_estimated_total(byte.estimate());
        }
    }

    fn observe_output(&mut self) {
        if let Some(dne) = &mut self.dne {
            dne.observe_output(1);
            self.metrics.set_estimated_total(dne.estimate());
        }
        if let Some(byte) = &mut self.byte {
            byte.observe_output_rows(1);
            self.metrics.set_estimated_total(byte.estimate());
        }
    }
}

fn key_cmp(a: &Row, b: &Row, ca: usize, cb: usize) -> Ordering {
    match (a.get(ca), b.get(cb)) {
        (Ok(x), Ok(y)) => x.total_cmp(y),
        _ => Ordering::Equal,
    }
}

impl Operator for MergeJoin {
    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn next_batch(&mut self, out: &mut RowBatch) -> QResult<BatchStatus> {
        out.clear();
        if matches!(self.state, MState::Init) {
            self.preprocess(out.capacity())?;
        }
        loop {
            // Split borrows: copy indices out of the state.
            let (mut li, mut ri, group) = match &mut self.state {
                MState::Done => return Ok(BatchStatus::Exhausted),
                MState::Merging { li, ri, group } => (*li, *ri, group.take()),
                MState::Init => unreachable!("preprocessed above"),
            };

            // Emit remaining pairs of the current equal-key group.
            if let Some((lr, rr, cursor)) = group {
                let width = rr.len();
                if cursor < lr.len() * width {
                    let l = lr.start + cursor / width;
                    let r = rr.start + cursor % width;
                    out.push_concat(self.left_rows[l].values(), self.right_rows[r].values());
                    self.state = MState::Merging {
                        li,
                        ri,
                        group: Some((lr, rr, cursor + 1)),
                    };
                    self.metrics.record_emitted();
                    self.observe_output();
                    if out.is_full() {
                        return Ok(BatchStatus::HasMore);
                    }
                    continue;
                }
                // group exhausted: advance past both runs
                li = lr.end;
                let consumed = rr.len() as u64;
                ri = rr.end;
                self.state = MState::Merging {
                    li,
                    ri,
                    group: None,
                };
                self.observe_right_consumed(consumed);
                continue;
            }

            // Advance the merge.
            if li >= self.left_rows.len() || ri >= self.right_rows.len() {
                // account for right rows never matched
                let remaining = (self.right_rows.len() - ri) as u64;
                self.observe_right_consumed(remaining);
                self.state = MState::Done;
                self.metrics.mark_finished();
                return Ok(BatchStatus::Exhausted);
            }
            match key_cmp(
                &self.left_rows[li],
                &self.right_rows[ri],
                self.left_key,
                self.right_key,
            ) {
                Ordering::Less => {
                    self.state = MState::Merging {
                        li: li + 1,
                        ri,
                        group: None,
                    };
                }
                Ordering::Greater => {
                    self.state = MState::Merging {
                        li,
                        ri: ri + 1,
                        group: None,
                    };
                    self.observe_right_consumed(1);
                }
                Ordering::Equal => {
                    let lrun = Self::run_len(&self.left_rows, li, self.left_key);
                    let rrun = Self::run_len(&self.right_rows, ri, self.right_key);
                    self.state = MState::Merging {
                        li,
                        ri,
                        group: Some((li..li + lrun, ri..ri + rrun, 0)),
                    };
                }
            }
        }
    }

    fn name(&self) -> &str {
        "merge_join"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::test_util::{drain, int_table};
    use crate::ops::TableScan;

    fn scan1(name: &str, vals: &[i64]) -> BoxedOp {
        let t = int_table(name, "k", vals).into_shared();
        Box::new(TableScan::new(t, OpMetrics::with_initial_estimate(0.0)))
    }

    fn exact_join(r: &[i64], s: &[i64]) -> usize {
        r.iter()
            .map(|a| s.iter().filter(|&&b| b == *a).count())
            .sum()
    }

    #[test]
    fn joins_with_duplicates() {
        let r = [3i64, 1, 1, 2, 2, 2];
        let s = [2i64, 2, 1, 9];
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = MergeJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            MergeJoinEstimation::Off,
            Arc::clone(&m),
        );
        let rows = drain(&mut j);
        assert_eq!(rows.len(), exact_join(&r, &s)); // 1×2·... = 2·1 + 3·2 = 8
        for row in &rows {
            assert_eq!(row.get(0).unwrap(), row.get(1).unwrap());
        }
        assert_eq!(m.emitted(), rows.len() as u64);
    }

    #[test]
    fn output_is_key_clustered() {
        let r = [2i64, 1, 2, 1];
        let s = [1i64, 2, 1, 2];
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = MergeJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            MergeJoinEstimation::Off,
            m,
        );
        let keys: Vec<i64> = drain(&mut j)
            .iter()
            .map(|row| row.get(0).unwrap().as_i64().unwrap())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "merge output must be key-ordered");
    }

    #[test]
    fn once_converges_before_merge_output() {
        let r: Vec<i64> = (0..300).map(|i| i % 30).collect();
        let s: Vec<i64> = (0..400).map(|i| i % 40).collect();
        let truth = exact_join(&r, &s) as f64;
        let m = OpMetrics::with_initial_estimate(1.0);
        let mut j = MergeJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            MergeJoinEstimation::Once {
                probe_size_hint: s.len() as u64,
            },
            Arc::clone(&m),
        );
        {
            let mut src = crate::ops::RowSource::new(&mut j);
            let first = src.next_row().unwrap();
            assert!(first.is_some());
        }
        assert_eq!(m.estimated_total(), truth);
        assert_eq!(drain(&mut j).len() + 1, truth as usize);
    }

    #[test]
    fn dne_converges_at_end() {
        let r: Vec<i64> = (0..50).collect();
        let s: Vec<i64> = (0..100).map(|i| i % 50).collect();
        let m = OpMetrics::with_initial_estimate(7.0);
        let mut j = MergeJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            MergeJoinEstimation::Dne {
                optimizer_estimate: 7.0,
            },
            Arc::clone(&m),
        );
        let rows = drain(&mut j);
        assert_eq!(rows.len(), 100);
        assert_eq!(m.estimated_total(), 100.0);
    }

    #[test]
    fn empty_sides() {
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = MergeJoin::new(
            scan1("r", &[]),
            scan1("s", &[1]),
            0,
            0,
            MergeJoinEstimation::Off,
            m,
        );
        assert!(crate::ops::RowSource::new(&mut j)
            .next_row()
            .unwrap()
            .is_none());
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut j = MergeJoin::new(
            scan1("r", &[1]),
            scan1("s", &[]),
            0,
            0,
            MergeJoinEstimation::Once { probe_size_hint: 0 },
            Arc::clone(&m),
        );
        assert!(crate::ops::RowSource::new(&mut j)
            .next_row()
            .unwrap()
            .is_none());
        assert_eq!(m.estimated_total(), 0.0);
    }

    #[test]
    fn pipeline_mode_two_merge_joins_same_attribute() {
        use crate::ops::hash_join::PipelineShared;
        use crate::sync::Mutex;
        use qprog_core::pipeline_est::PipelineEstimator;
        use std::sync::Arc;

        let a = [1i64, 1, 2];
        let b = [1i64, 2, 2];
        let c = [1i64, 2, 9];
        let m_lower = OpMetrics::with_initial_estimate(0.0);
        let m_upper = OpMetrics::with_initial_estimate(0.0);
        let shared: PipelineHandle = Arc::new(Mutex::new(PipelineShared {
            estimator: PipelineEstimator::same_attribute(2, 0, 0, c.len() as u64).unwrap(),
            metrics: vec![Arc::clone(&m_lower), Arc::clone(&m_upper)],
        }));
        let lower = MergeJoin::new(
            scan1("b", &b),
            scan1("c", &c),
            0,
            0,
            MergeJoinEstimation::Pipeline {
                handle: Arc::clone(&shared),
                join_index: 0,
                lowest: true,
            },
            Arc::clone(&m_lower),
        );
        let mut upper = MergeJoin::new(
            scan1("a", &a),
            Box::new(lower),
            0,
            0,
            MergeJoinEstimation::Pipeline {
                handle: Arc::clone(&shared),
                join_index: 1,
                lowest: false,
            },
            Arc::clone(&m_upper),
        );
        let rows = drain(&mut upper);
        // lower: 1→1, 2→2 = 3 rows; upper: 1·2 + 2·1 = 4 rows
        assert_eq!(rows.len(), 4);
        assert_eq!(m_lower.estimated_total(), 3.0);
        assert_eq!(m_upper.estimated_total(), 4.0);
    }

    #[test]
    fn byte_mode_runs() {
        let r = [1i64, 2, 3];
        let s = [2i64, 3, 4];
        let m = OpMetrics::with_initial_estimate(9.0);
        let mut j = MergeJoin::new(
            scan1("r", &r),
            scan1("s", &s),
            0,
            0,
            MergeJoinEstimation::Byte {
                optimizer_estimate: 9.0,
                probe_row_bytes: 16,
            },
            Arc::clone(&m),
        );
        assert_eq!(drain(&mut j).len(), 2);
        assert_eq!(m.estimated_total(), 2.0);
    }
}
