//! Projection (π): evaluate a list of expressions per row.

use std::sync::Arc;

use qprog_types::{BatchStatus, QResult, Row, RowBatch, SchemaRef};

use crate::expr::Expr;
use crate::metrics::OpMetrics;
use crate::ops::{BoxedOp, Operator};

/// Projects each input row through a list of expressions.
///
/// The output schema is computed by the planner (it knows names and types)
/// and passed in.
pub struct Project {
    input: BoxedOp,
    exprs: Vec<Expr>,
    schema: SchemaRef,
    metrics: Arc<OpMetrics>,
    /// Reused input batch.
    scratch: Option<RowBatch>,
    done: bool,
}

impl Project {
    /// New projection.
    pub fn new(
        input: BoxedOp,
        exprs: Vec<Expr>,
        schema: SchemaRef,
        metrics: Arc<OpMetrics>,
    ) -> Self {
        Project {
            input,
            exprs,
            schema,
            metrics,
            scratch: None,
            done: false,
        }
    }
}

impl Operator for Project {
    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn next_batch(&mut self, out: &mut RowBatch) -> QResult<BatchStatus> {
        out.clear();
        if self.done {
            return Ok(BatchStatus::Exhausted);
        }
        if self.scratch.is_none() {
            let arity = self.input.schema().arity();
            self.scratch = Some(RowBatch::with_capacity(arity, out.capacity()));
        }
        loop {
            let scratch = self.scratch.as_mut().expect("scratch just ensured");
            scratch.clear();
            scratch.set_capacity(out.remaining());
            let status = self.input.next_batch(scratch)?;
            let n = scratch.len();
            let mut vals = Vec::with_capacity(self.exprs.len());
            for r in 0..n {
                for e in &self.exprs {
                    vals.push(e.eval_at(scratch, r)?);
                }
                out.push_row(Row::new(std::mem::take(&mut vals)));
                vals = Vec::with_capacity(self.exprs.len());
            }
            self.metrics.record_emitted_n(n as u64);
            if status.is_exhausted() {
                self.done = true;
                self.metrics.mark_finished();
                return Ok(BatchStatus::Exhausted);
            }
            if out.is_full() {
                return Ok(BatchStatus::HasMore);
            }
        }
    }

    fn name(&self) -> &str {
        "project"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::ops::test_util::{col_i64, drain, drain_batched, int_table};
    use crate::ops::TableScan;
    use qprog_types::{DataType, Field, Schema};

    fn double_projection() -> (Project, Arc<OpMetrics>) {
        let t = int_table("t", "a", &[1, 2, 3]).into_shared();
        let scan = Box::new(TableScan::new(t, OpMetrics::with_initial_estimate(0.0)));
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("a2", DataType::Int64),
        ])
        .into_ref();
        let m = OpMetrics::with_initial_estimate(0.0);
        let p = Project::new(
            scan,
            vec![
                Expr::col(0),
                Expr::binary(BinOp::Mul, Expr::col(0), Expr::lit(2i64)),
            ],
            schema,
            Arc::clone(&m),
        );
        (p, m)
    }

    #[test]
    fn evaluates_expressions_per_row() {
        let (mut p, m) = double_projection();
        let rows = drain(&mut p);
        assert_eq!(col_i64(&rows, 0), vec![1, 2, 3]);
        assert_eq!(col_i64(&rows, 1), vec![2, 4, 6]);
        assert_eq!(m.emitted(), 3);
        assert!(m.is_finished());
        assert_eq!(p.schema().arity(), 2);
    }

    #[test]
    fn wide_batches_match_strict_mode() {
        let (mut strict, _) = double_projection();
        let (mut wide, _) = double_projection();
        assert_eq!(drain(&mut strict), drain_batched(&mut wide, 1024));
    }
}
