//! Projection (π): evaluate a list of expressions per row.

use std::sync::Arc;

use qprog_types::{QResult, Row, SchemaRef};

use crate::expr::Expr;
use crate::metrics::OpMetrics;
use crate::ops::{BoxedOp, Operator};

/// Projects each input row through a list of expressions.
///
/// The output schema is computed by the planner (it knows names and types)
/// and passed in.
pub struct Project {
    input: BoxedOp,
    exprs: Vec<Expr>,
    schema: SchemaRef,
    metrics: Arc<OpMetrics>,
    done: bool,
}

impl Project {
    /// New projection.
    pub fn new(
        input: BoxedOp,
        exprs: Vec<Expr>,
        schema: SchemaRef,
        metrics: Arc<OpMetrics>,
    ) -> Self {
        Project {
            input,
            exprs,
            schema,
            metrics,
            done: false,
        }
    }
}

impl Operator for Project {
    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn next(&mut self) -> QResult<Option<Row>> {
        if self.done {
            return Ok(None);
        }
        match self.input.next()? {
            None => {
                self.done = true;
                self.metrics.mark_finished();
                Ok(None)
            }
            Some(row) => {
                let mut out = Vec::with_capacity(self.exprs.len());
                for e in &self.exprs {
                    out.push(e.eval(&row)?);
                }
                self.metrics.record_emitted();
                Ok(Some(Row::new(out)))
            }
        }
    }

    fn name(&self) -> &str {
        "project"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::ops::test_util::{col_i64, drain, int_table};
    use crate::ops::TableScan;
    use qprog_types::{DataType, Field, Schema};

    #[test]
    fn evaluates_expressions_per_row() {
        let t = int_table("t", "a", &[1, 2, 3]).into_shared();
        let scan = Box::new(TableScan::new(t, OpMetrics::with_initial_estimate(0.0)));
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("a2", DataType::Int64),
        ])
        .into_ref();
        let m = OpMetrics::with_initial_estimate(0.0);
        let mut p = Project::new(
            scan,
            vec![
                Expr::col(0),
                Expr::binary(BinOp::Mul, Expr::col(0), Expr::lit(2i64)),
            ],
            schema,
            Arc::clone(&m),
        );
        let rows = drain(&mut p);
        assert_eq!(col_i64(&rows, 0), vec![1, 2, 3]);
        assert_eq!(col_i64(&rows, 1), vec![2, 4, 6]);
        assert_eq!(m.emitted(), 3);
        assert!(m.is_finished());
        assert_eq!(p.schema().arity(), 2);
    }
}
