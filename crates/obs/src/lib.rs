//! Query observability for qprog: trace sinks, progress timelines, and
//! EXPLAIN ANALYZE rendering.
//!
//! The executor publishes [`qprog_exec::trace::TraceEvent`]s through an
//! [`qprog_exec::trace::EventBus`] at phase boundaries and estimate
//! refinements (never per tuple); this crate is the consumer side:
//!
//! - [`sinks`] — pluggable [`TraceSink`](qprog_exec::trace::TraceSink)s:
//!   a lock-free bounded [`RingSink`](sinks::RingSink), a
//!   [`JsonlSink`](sinks::JsonlSink) that streams events as JSON lines, a
//!   human-readable [`StderrSink`](sinks::StderrSink), and a debug-mode
//!   [`ValidatorSink`](sinks::ValidatorSink) that flags events violating
//!   the progress model's invariants.
//! - [`timeline`] — a [`TimelineRecorder`](timeline::TimelineRecorder)
//!   that samples a query's [`ProgressTracker`](qprog_plan::ProgressTracker)
//!   at a configurable cadence into a [`ProgressLog`](timeline::ProgressLog)
//!   of timestamped `(K_i, N_i, lo, hi)` trajectories, exportable as CSV
//!   or JSON.
//! - [`explain`] — an EXPLAIN ANALYZE renderer comparing actual
//!   cardinalities against optimizer and online estimates (with q-errors,
//!   `getnext()` counts, phase wall-times, and estimator attribution).
//! - [`replay`] — deterministic trace replay: parse the JSONL sink format
//!   back into [`TraceEvent`](qprog_exec::trace::TraceEvent) streams
//!   ([`ReplayedTrace`](replay::ReplayedTrace)) and re-drive any sink
//!   offline, so a production trace can be re-scored and debugged post-hoc.
//! - [`scoring`] — paper-style progress-quality metrics
//!   ([`ProgressScore`](scoring::ProgressScore)) from a live or replayed
//!   trace: mean/max absolute error vs the retrospective oracle,
//!   monotonicity violations, convergence point, per-estimator q-error
//!   summaries.
//! - [`health`] — a per-query [`HealthAnalyzer`](health::HealthAnalyzer)
//!   consuming the live trace stream plus periodic work/ETA samples to
//!   detect stalls, estimate drift/oscillation, and ETA volatility,
//!   publishing typed `HealthTransition` events back onto the query's bus.
//! - [`metrics_sink`] — a [`MetricsSink`](metrics_sink::MetricsSink)
//!   aggregating each query's events into a shared
//!   [`qprog_metrics::Registry`]: fleet-wide tuple counts, phase activity,
//!   refinement rates, and cross-query q-error histograms per estimator,
//!   exposable in Prometheus text format.
//! - [`spans`] — causal span trees ([`SpanTree`](spans::SpanTree))
//!   assembled from a query's events: typed service-lifecycle spans
//!   (submit → queue-wait → dispatch attempts → finalize) merged with
//!   operator/phase/worker/pipeline intervals derived from the standard
//!   execution events, exportable as Chrome trace-event JSON for
//!   Perfetto / `chrome://tracing`.
//! - [`corpus`] — a persistent, size-capped trace corpus: every traced
//!   run's JSONL segment plus an indexed scorecard archived at terminal
//!   time ([`CorpusSink`](corpus::CorpusSink)), with rolling median/MAD
//!   baselines per `(workload, estimator, threads)` that flag
//!   progress-quality regressions as typed `RegressionDetected` events.
//!
//! Everything here runs *observer-side*: attaching no sinks and no
//! recorder leaves the engine's hot paths untouched.

pub mod corpus;
pub mod explain;
pub mod health;
pub mod json;
pub mod metrics_sink;
pub mod replay;
pub mod scoring;
pub mod sinks;
pub mod spans;
pub mod timeline;

pub use corpus::{
    ArchivedRun, Corpus, CorpusConfig, CorpusSink, Regression, RegressionConfig, RunMeta, RunRecord,
};
pub use explain::explain_analyze;
pub use health::{HealthAnalyzer, HealthConfig};
pub use metrics_sink::MetricsSink;
pub use replay::ReplayedTrace;
pub use scoring::{score_events, score_log, ProgressScore, QErrorSummary};
pub use sinks::{JsonlSink, RingSink, StderrSink, ValidatorSink};
pub use spans::{LifecycleTotals, SpanNode, SpanTree, Track};
pub use timeline::{ProgressLog, RecorderHandle, TimelinePoint, TimelineRecorder};
