//! Progress-health analysis: is a running query *behaving*?
//!
//! A progress indicator is only trustworthy while the query underneath it
//! is making observable progress and its estimates are settling. Following
//! König et al.'s argument that estimator instability is a first-class
//! signal (not silent noise), the [`HealthAnalyzer`] watches each query
//! from two directions:
//!
//! - as a [`TraceSink`] it consumes the live trace stream, tracking
//!   **estimate drift** — direction flips and order-of-magnitude
//!   divergences across `EstimateRefined` events — and terminal events;
//! - as a polled component ([`observe`](HealthAnalyzer::observe), driven by
//!   the monitor's broadcast tick) it tracks **stalls** (no observed-work
//!   delta past a configurable window while Running) and **ETA
//!   volatility** (relative swing of the smoothed ETA between samples).
//!
//! Verdict changes are published back onto the query's own
//! [`EventBus`](qprog_exec::trace::EventBus) as typed
//! [`TraceEventKind::HealthTransition`] events — so they land in JSONL
//! traces, replay, metrics (`qprog_health_*`), and the monitor's JSON —
//! always from the monitor's sampling thread, never from the query thread.
//!
//! State machine: `Healthy ↔ Stalled` and `Healthy ↔ Unstable`, with
//! Stalled taking priority when both conditions hold. Instability decays:
//! flip/divergence evidence older than the calm window is discarded, so a
//! query whose estimates settle recovers to Healthy.

use std::collections::VecDeque;
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use qprog_exec::sync::Mutex;
use qprog_exec::trace::{
    EstimateSource, EventBus, HealthReason, HealthState, TraceEvent, TraceEventKind, TraceSink,
};

/// Detector thresholds. Defaults are tuned so sub-second test queries and
/// the scorecard workloads never false-positive, while an injected
/// multi-second sleep or a genuinely thrashing estimator trips quickly.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// How long observed work may sit still (while Running) before the
    /// query is declared Stalled.
    pub stall_window: Duration,
    /// How many estimate direction flips / divergences within the calm
    /// window mark the query Unstable.
    pub flip_threshold: usize,
    /// A single refinement whose `max(new/old, old/new)` exceeds this
    /// counts as divergence evidence (same bucket as a flip).
    pub divergence_ratio: f64,
    /// Relative ETA swing `|eta − prev| / max(eta, prev)` above which a
    /// sample counts toward volatility.
    pub eta_swing: f64,
    /// Consecutive swinging ETA samples that mark the query Unstable.
    pub eta_swing_samples: usize,
    /// Evidence of instability older than this is discarded, letting the
    /// verdict recover to Healthy.
    pub calm_window: Duration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            stall_window: Duration::from_secs(2),
            flip_threshold: 4,
            divergence_ratio: 16.0,
            eta_swing: 0.6,
            eta_swing_samples: 3,
            calm_window: Duration::from_secs(2),
        }
    }
}

impl HealthConfig {
    /// Override the stall window (the knob chaos tests turn down).
    pub fn with_stall_window(mut self, window: Duration) -> Self {
        self.stall_window = window;
        self
    }
}

/// Mutable detector state, all behind one short mutex (touched at estimate
/// refinements and monitor ticks only — never per tuple).
#[derive(Debug)]
struct Inner {
    state: HealthState,
    /// A terminal trace event arrived; the verdict is frozen.
    terminal: bool,
    /// Last observed `ΣK_i` and when it last moved (µs since the epoch).
    last_work: u64,
    last_work_change_us: u64,
    /// Timestamps (µs) of recent flip/divergence evidence, pruned to the
    /// calm window.
    drift_evidence_us: VecDeque<u64>,
    /// Per-operator last refinement direction: +1 up, −1 down, 0 unknown.
    last_dir: Vec<i8>,
    /// Last ETA sample and the current run of swinging samples.
    last_eta: Option<f64>,
    eta_swing_run: usize,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            state: HealthState::Healthy,
            terminal: false,
            last_work: 0,
            last_work_change_us: 0,
            drift_evidence_us: VecDeque::new(),
            last_dir: Vec::new(),
            last_eta: None,
            eta_swing_run: 0,
        }
    }
}

/// One query's health analyzer; see the module docs. Create it per query,
/// attach it to the query's bus as a sink, then let the monitor's sampling
/// thread drive [`observe`](Self::observe).
pub struct HealthAnalyzer {
    config: HealthConfig,
    epoch: Instant,
    inner: Mutex<Inner>,
    /// The query's bus, for publishing transitions. Weak: the analyzer is
    /// itself a sink on this bus, and an `Arc` would cycle.
    bus: Mutex<Option<Weak<EventBus>>>,
}

impl std::fmt::Debug for HealthAnalyzer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthAnalyzer")
            .field("state", &self.state())
            .finish()
    }
}

impl HealthAnalyzer {
    /// A fresh analyzer in the Healthy state.
    pub fn new(config: HealthConfig) -> Self {
        HealthAnalyzer {
            config,
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
            bus: Mutex::new(None),
        }
    }

    /// Attach the query's bus so verdict changes are published as
    /// [`TraceEventKind::HealthTransition`] events. Weak on purpose — the
    /// analyzer is usually a sink on the same bus.
    pub fn attach_bus(&self, bus: &Arc<EventBus>) {
        *self.bus.lock() = Some(Arc::downgrade(bus));
    }

    /// The current verdict.
    pub fn state(&self) -> HealthState {
        self.inner.lock().state
    }

    /// Microseconds since the analyzer was created.
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Feed one work/ETA sample (normally from the monitor's broadcast
    /// tick). `running` must be false once the query reached a terminal
    /// state — the verdict freezes then. Returns the transition if the
    /// verdict changed.
    pub fn observe(
        &self,
        current_work: u64,
        eta_us: Option<f64>,
        running: bool,
    ) -> Option<(HealthState, HealthState, HealthReason)> {
        self.observe_at(self.now_us(), current_work, eta_us, running)
    }

    /// [`observe`](Self::observe) with an explicit clock, for deterministic
    /// tests. `now_us` must be monotone across calls.
    pub fn observe_at(
        &self,
        now_us: u64,
        current_work: u64,
        eta_us: Option<f64>,
        running: bool,
    ) -> Option<(HealthState, HealthState, HealthReason)> {
        let transition = {
            let mut inner = self.inner.lock();
            if inner.terminal || !running {
                return None;
            }
            // Stall: the work counter has to actually move.
            if current_work > inner.last_work {
                inner.last_work = current_work;
                inner.last_work_change_us = now_us;
            }
            let stalled = now_us.saturating_sub(inner.last_work_change_us)
                >= self.config.stall_window.as_micros() as u64;

            // Drift evidence decays past the calm window.
            let horizon = now_us.saturating_sub(self.config.calm_window.as_micros() as u64);
            while inner
                .drift_evidence_us
                .front()
                .is_some_and(|&t| t < horizon)
            {
                inner.drift_evidence_us.pop_front();
            }

            // ETA volatility: a run of consecutive large relative swings.
            if let Some(eta) = eta_us.filter(|e| e.is_finite() && *e >= 0.0) {
                if let Some(prev) = inner.last_eta {
                    let swing = (eta - prev).abs() / eta.max(prev).max(1.0);
                    if swing > self.config.eta_swing {
                        inner.eta_swing_run += 1;
                    } else {
                        inner.eta_swing_run = 0;
                    }
                }
                inner.last_eta = Some(eta);
            }

            let oscillating = inner.drift_evidence_us.len() >= self.config.flip_threshold;
            let volatile = inner.eta_swing_run >= self.config.eta_swing_samples;
            let next = if stalled {
                HealthState::Stalled
            } else if oscillating || volatile {
                HealthState::Unstable
            } else {
                HealthState::Healthy
            };
            if next == inner.state {
                None
            } else {
                let reason = match next {
                    HealthState::Stalled => HealthReason::Stall,
                    HealthState::Unstable if oscillating => HealthReason::Oscillation,
                    HealthState::Unstable => HealthReason::EtaVolatility,
                    HealthState::Healthy => HealthReason::Recovered,
                };
                let from = inner.state;
                inner.state = next;
                Some((from, next, reason))
            }
            // Guard dropped here: publishing below fans out to every sink
            // on the bus (including this analyzer), so the inner lock must
            // not be held across it.
        };
        if let Some((from, to, reason)) = transition {
            let bus = self.bus.lock().as_ref().and_then(Weak::upgrade);
            if let Some(bus) = bus {
                bus.publish(TraceEventKind::HealthTransition { from, to, reason });
            }
        }
        transition
    }
}

impl TraceSink for HealthAnalyzer {
    fn publish(&self, event: &TraceEvent) {
        match event.kind {
            TraceEventKind::EstimateRefined {
                op,
                old,
                new,
                source: EstimateSource::Online,
            } => {
                let mut inner = self.inner.lock();
                let idx = op as usize;
                if inner.last_dir.len() <= idx {
                    inner.last_dir.resize(idx + 1, 0);
                }
                if old.is_finite() && new.is_finite() {
                    let dir: i8 = match new.partial_cmp(&old) {
                        Some(std::cmp::Ordering::Greater) => 1,
                        Some(std::cmp::Ordering::Less) => -1,
                        _ => 0,
                    };
                    let prev = inner.last_dir[idx];
                    if dir != 0 {
                        if prev != 0 && dir != prev {
                            // Direction flip.
                            inner.drift_evidence_us.push_back(event.at_us);
                        }
                        inner.last_dir[idx] = dir;
                    }
                    // Divergence: an order-of-magnitude jump is evidence on
                    // its own, flip or not.
                    if old > 0.0 && new > 0.0 {
                        let ratio = (new / old).max(old / new);
                        if ratio > self.config.divergence_ratio {
                            inner.drift_evidence_us.push_back(event.at_us);
                        }
                    }
                }
            }
            TraceEventKind::QueryFinished { .. } | TraceEventKind::QueryAborted { .. } => {
                self.inner.lock().terminal = true;
            }
            // Everything else — including our own HealthTransition echoes —
            // is irrelevant to the verdict.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000;

    fn analyzer(stall_ms: u64) -> HealthAnalyzer {
        HealthAnalyzer::new(HealthConfig {
            stall_window: Duration::from_millis(stall_ms),
            calm_window: Duration::from_millis(stall_ms),
            ..HealthConfig::default()
        })
    }

    fn refine(at_us: u64, op: u32, old: f64, new: f64) -> TraceEvent {
        TraceEvent {
            seq: at_us,
            at_us,
            kind: TraceEventKind::EstimateRefined {
                op,
                old,
                new,
                source: EstimateSource::Online,
            },
        }
    }

    #[test]
    fn steady_progress_stays_healthy() {
        let h = analyzer(100);
        for i in 0..50u64 {
            assert_eq!(
                h.observe_at(i * 10 * MS, i * 100, Some(1e6), true),
                None,
                "tick {i}"
            );
        }
        assert_eq!(h.state(), HealthState::Healthy);
    }

    #[test]
    fn stall_fires_after_window_and_recovers_on_work() {
        let h = analyzer(100);
        assert_eq!(h.observe_at(0, 10, None, true), None);
        // Work frozen past the window → Stalled.
        let t = h.observe_at(150 * MS, 10, None, true);
        assert_eq!(
            t,
            Some((
                HealthState::Healthy,
                HealthState::Stalled,
                HealthReason::Stall
            ))
        );
        assert_eq!(h.state(), HealthState::Stalled);
        // Work moves again → Recovered.
        let t = h.observe_at(160 * MS, 11, None, true);
        assert_eq!(
            t,
            Some((
                HealthState::Stalled,
                HealthState::Healthy,
                HealthReason::Recovered
            ))
        );
    }

    #[test]
    fn verdict_freezes_at_terminal() {
        let h = analyzer(100);
        h.publish(&TraceEvent {
            seq: 0,
            at_us: 0,
            kind: TraceEventKind::QueryFinished { rows: 1 },
        });
        // Would be a stall, but the query already finished.
        assert_eq!(h.observe_at(10_000 * MS, 0, None, true), None);
        assert_eq!(h.state(), HealthState::Healthy);
        // Non-running samples never transition either.
        let h = analyzer(100);
        assert_eq!(h.observe_at(10_000 * MS, 0, None, false), None);
    }

    #[test]
    fn estimate_flips_mark_unstable_then_decay() {
        let h = analyzer(100);
        // Oscillating refinements: up, down, up, down... on one operator.
        let (mut lo, mut hi) = (100.0, 1000.0);
        for i in 0..6u64 {
            let (old, new) = if i % 2 == 0 { (lo, hi) } else { (hi, lo) };
            h.publish(&refine(i * MS, 0, old, new));
            lo += 1.0;
            hi += 1.0;
        }
        let t = h.observe_at(10 * MS, 50, None, true);
        assert_eq!(
            t,
            Some((
                HealthState::Healthy,
                HealthState::Unstable,
                HealthReason::Oscillation
            ))
        );
        // Evidence decays past the calm window (keep feeding work so the
        // stall detector stays quiet).
        let t = h.observe_at(300 * MS, 100, None, true);
        assert_eq!(
            t,
            Some((
                HealthState::Unstable,
                HealthState::Healthy,
                HealthReason::Recovered
            ))
        );
    }

    #[test]
    fn single_divergence_counts_as_evidence_but_not_verdict() {
        let h = analyzer(100);
        h.publish(&refine(0, 0, 100.0, 10_000.0)); // 100× jump
        assert_eq!(h.observe_at(MS, 1, None, true), None);
        assert_eq!(h.state(), HealthState::Healthy);
        assert_eq!(h.inner.lock().drift_evidence_us.len(), 1);
    }

    #[test]
    fn eta_volatility_marks_unstable() {
        let h = analyzer(10_000); // stall window far away
        let mut work = 0u64;
        let mut tick = |h: &HealthAnalyzer, at_ms: u64, eta: f64| {
            work += 1;
            h.observe_at(at_ms * MS, work, Some(eta), true)
        };
        assert_eq!(tick(&h, 0, 1e6), None);
        // Three consecutive >60% swings.
        assert_eq!(tick(&h, 10, 1e5), None);
        assert_eq!(tick(&h, 20, 1e6), None);
        let t = tick(&h, 30, 1e5);
        assert_eq!(
            t,
            Some((
                HealthState::Healthy,
                HealthState::Unstable,
                HealthReason::EtaVolatility
            ))
        );
        // The first settling sample breaks the run and recovers the verdict.
        let t = tick(&h, 40, 1.05e5);
        assert_eq!(
            t,
            Some((
                HealthState::Unstable,
                HealthState::Healthy,
                HealthReason::Recovered
            ))
        );
        assert_eq!(tick(&h, 50, 1.0e5), None);
    }

    #[test]
    fn transitions_are_published_to_the_bus() {
        struct Collect(Mutex<Vec<TraceEventKind>>);
        impl TraceSink for Collect {
            fn publish(&self, e: &TraceEvent) {
                self.0.lock().push(e.kind);
            }
        }
        let h = Arc::new(analyzer(100));
        let collect = Arc::new(Collect(Mutex::new(Vec::new())));
        let bus = EventBus::builder()
            .sink(Arc::clone(&h) as _)
            .sink(Arc::clone(&collect) as _)
            .build();
        h.attach_bus(&bus);
        h.observe_at(0, 0, None, true);
        h.observe_at(200 * MS, 0, None, true); // stall
        let events = collect.0.lock();
        assert_eq!(
            *events,
            vec![TraceEventKind::HealthTransition {
                from: HealthState::Healthy,
                to: HealthState::Stalled,
                reason: HealthReason::Stall,
            }]
        );
    }
}
