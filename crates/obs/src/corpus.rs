//! Persistent trace corpus: an append-only on-disk store of completed
//! query runs, plus the regression engine that watches it.
//!
//! Every archived run contributes two artifacts under the corpus
//! directory:
//!
//! - `run-NNNNNN.jsonl` — the run's full trace, one
//!   [`event_to_json`](crate::json::event_to_json) object per line, so it
//!   round-trips through [`ReplayedTrace`](crate::replay::ReplayedTrace)
//!   byte-identically;
//! - one line appended to `index.jsonl` — a compact record carrying the
//!   run's identity (label, workload, estimator, threads, seed), terminal
//!   state, wall time, and the full [`ProgressScore`] scorecard computed at
//!   terminal time.
//!
//! The store is size-capped: when the retained segments exceed
//! [`CorpusConfig::max_runs`] or [`CorpusConfig::max_trace_bytes`], the
//! oldest runs are evicted (segment deleted, index compacted). Reopen is
//! crash-tolerant in the same spirit as `ReplayedTrace::parse`: torn index
//! lines, missing or corrupt segments, and orphan segments (a crash between
//! segment write and index append) are skipped, garbage-collected, and
//! reported as [`diagnostics`](Corpus::diagnostics) — never errors.
//!
//! On top of the store sits a rolling-baseline regression engine: each new
//! finished run's `mean_abs_err`, convergence point, monotonicity
//! violations, and wall time are compared against the median/MAD of prior
//! finished runs with the same `(workload, estimator, threads)` key. An
//! observation beyond `median + max(k·MAD, floor)` yields a [`Regression`],
//! which [`CorpusSink`] publishes back onto the query's bus as a typed
//! [`TraceEventKind::RegressionDetected`] event (metrics and monitors see
//! it like any other trace event). Archival is advisory throughout: IO
//! failure is counted, never propagated into the query.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use qprog_exec::sync::Mutex;
use qprog_exec::trace::{EventBus, RegressionKind, TraceEvent, TraceEventKind, TraceSink};

use crate::json::raw_field;
use crate::replay::ReplayedTrace;
use crate::scoring::{score_events, ProgressScore};

/// Retention and regression-detection settings for a [`Corpus`].
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Maximum archived runs retained; the oldest are evicted beyond this.
    pub max_runs: usize,
    /// Maximum total bytes of trace segments retained.
    pub max_trace_bytes: u64,
    /// Regression-detection thresholds.
    pub regression: RegressionConfig,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            max_runs: 1024,
            max_trace_bytes: 64 * 1024 * 1024,
            regression: RegressionConfig::default(),
        }
    }
}

/// Baseline math for the regression engine. A new run's observation `x`
/// regresses when `x > median + max(mad_k · MAD, floor)` over the prior
/// finished runs with the same `(workload, estimator, threads)` key. The
/// per-metric floors keep deterministic baselines (MAD = 0) from flagging
/// measurement noise; detection stays disarmed until the key has
/// [`min_baseline`](RegressionConfig::min_baseline) runs.
#[derive(Debug, Clone)]
pub struct RegressionConfig {
    /// Baseline runs required before detection arms for a key.
    pub min_baseline: usize,
    /// MAD multiplier on the detection margin.
    pub mad_k: f64,
    /// Absolute floor on the `mean_abs_err` margin (progress-fraction
    /// points).
    pub mean_abs_err_floor: f64,
    /// Absolute floor on the convergence-point margin (oracle-fraction
    /// points; a never-converging run scores 1.0).
    pub convergence_floor: f64,
    /// Absolute floor on the monotonicity-violation margin (0.5 means a
    /// single extra violation over an all-clean baseline flags).
    pub monotonicity_floor: f64,
    /// Relative floor on the wall-time margin, as a fraction of the
    /// baseline median (1.0 = a run must take over 2× the median).
    pub wall_time_floor_frac: f64,
}

impl Default for RegressionConfig {
    fn default() -> Self {
        RegressionConfig {
            min_baseline: 5,
            mad_k: 5.0,
            mean_abs_err_floor: 0.02,
            convergence_floor: 0.2,
            monotonicity_floor: 0.5,
            wall_time_floor_frac: 1.0,
        }
    }
}

impl RegressionConfig {
    /// Compare one observation against its baseline values.
    fn check(
        &self,
        kind: RegressionKind,
        observed: f64,
        values: &[f64],
        floor: f64,
    ) -> Option<Regression> {
        if values.len() < self.min_baseline || !observed.is_finite() {
            return None;
        }
        let baseline = median(values.to_vec());
        if !baseline.is_finite() {
            return None;
        }
        let mad = median(values.iter().map(|v| (v - baseline).abs()).collect());
        let threshold = baseline + (self.mad_k * mad).max(floor);
        (observed > threshold).then_some(Regression {
            kind,
            observed,
            baseline,
            threshold,
        })
    }

    /// All regressions of `score`/`wall_us` against the given baseline
    /// records (callers pre-filter to the run's key and finished state).
    pub fn detect(
        &self,
        score: &ProgressScore,
        wall_us: u64,
        baselines: &[&RunRecord],
    ) -> Vec<Regression> {
        let mut out = Vec::new();
        let pick = |f: fn(&RunRecord) -> f64| baselines.iter().map(|r| f(r)).collect::<Vec<_>>();
        // A run that never entered the convergence band scores worst (1.0).
        fn conv(s: &ProgressScore) -> f64 {
            s.convergence.unwrap_or(1.0)
        }
        if let Some(r) = self.check(
            RegressionKind::MeanAbsErr,
            score.mean_abs_err,
            &pick(|r| r.score.mean_abs_err),
            self.mean_abs_err_floor,
        ) {
            out.push(r);
        }
        if let Some(r) = self.check(
            RegressionKind::Convergence,
            conv(score),
            &pick(|r| conv(&r.score)),
            self.convergence_floor,
        ) {
            out.push(r);
        }
        if let Some(r) = self.check(
            RegressionKind::Monotonicity,
            score.monotonicity_violations as f64,
            &pick(|r| r.score.monotonicity_violations as f64),
            self.monotonicity_floor,
        ) {
            out.push(r);
        }
        let walls = pick(|r| r.wall_us as f64);
        let wall_floor = self.wall_time_floor_frac * median(walls.clone()).max(0.0);
        if let Some(r) = self.check(RegressionKind::WallTime, wall_us as f64, &walls, wall_floor) {
            out.push(r);
        }
        out
    }
}

/// Median of `xs` (NaN for an empty slice). Consumes its input to sort.
fn median(mut xs: Vec<f64>) -> f64 {
    xs.retain(|x| x.is_finite());
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// One detected regression: the observation, the rolling-median baseline
/// it was judged against, and the threshold it crossed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Regression {
    /// Which scorecard metric regressed.
    pub kind: RegressionKind,
    /// The new run's value.
    pub observed: f64,
    /// The baseline median.
    pub baseline: f64,
    /// `baseline + max(k·MAD, floor)`.
    pub threshold: f64,
}

impl Regression {
    /// The typed trace event announcing this regression.
    pub fn to_event_kind(&self) -> TraceEventKind {
        TraceEventKind::RegressionDetected {
            kind: self.kind,
            observed: self.observed,
            baseline: self.baseline,
            threshold: self.threshold,
        }
    }
}

/// Identity of a run being archived; the `(workload, estimator, threads)`
/// triple keys the regression baselines.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// Human-readable query name (SQL text, plan label, bench id, ...).
    pub label: String,
    /// Baseline key: which recurring workload this run is an instance of.
    pub workload: String,
    /// Estimator label (`off`/`once`/`dne`/`byte`).
    pub estimator: String,
    /// Worker threads the run executed with.
    pub threads: usize,
    /// Data/permutation seed.
    pub seed: u64,
}

impl RunMeta {
    /// A meta whose workload key equals its label.
    pub fn new(label: impl Into<String>, estimator: impl Into<String>) -> RunMeta {
        let label = label.into();
        RunMeta {
            workload: label.clone(),
            label,
            estimator: estimator.into(),
            threads: 1,
            seed: 0,
        }
    }

    /// Override the baseline workload key.
    pub fn with_workload(mut self, workload: impl Into<String>) -> Self {
        self.workload = workload.into();
        self
    }

    /// Set the thread count (part of the baseline key).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the seed (recorded, not part of the baseline key).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One index record: a completed run's identity, terminal state, wall
/// time, and scorecard.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Corpus-assigned run id (monotonic, never reused).
    pub run: u64,
    /// Query name.
    pub label: String,
    /// Baseline workload key.
    pub workload: String,
    /// Estimator label.
    pub estimator: String,
    /// Worker threads.
    pub threads: usize,
    /// Data seed.
    pub seed: u64,
    /// `finished` or an [`AbortKind`](qprog_exec::trace::AbortKind) name
    /// (`unknown` when the trace carried no terminal event).
    pub state: String,
    /// Wall time in µs (largest event timestamp relative to the bus epoch).
    pub wall_us: u64,
    /// Events in the trace segment.
    pub events: u64,
    /// Segment size in bytes (drives retention accounting).
    pub trace_bytes: u64,
    /// Regressions flagged when this run was archived.
    pub regressions: usize,
    /// The scorecard computed at terminal time.
    pub score: ProgressScore,
}

/// Index strings are written unescaped and parsed back with
/// [`raw_field`], so characters that would break the flat format are
/// replaced.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c == '"' || c == '\\' || (c as u32) < 0x20 {
                ' '
            } else {
                c
            }
        })
        .collect()
}

impl RunRecord {
    /// Encode as one flat JSON line (the index format).
    pub fn to_json(&self) -> String {
        let score = self.score.to_json();
        format!(
            "{{\"run\":{},\"label\":\"{}\",\"workload\":\"{}\",\"estimator\":\"{}\",\
             \"threads\":{},\"seed\":{},\"state\":\"{}\",\"wall_us\":{},\"events\":{},\
             \"trace_bytes\":{},\"regressions\":{},{}",
            self.run,
            sanitize(&self.label),
            sanitize(&self.workload),
            sanitize(&self.estimator),
            self.threads,
            self.seed,
            sanitize(&self.state),
            self.wall_us,
            self.events,
            self.trace_bytes,
            self.regressions,
            &score[1..],
        )
    }

    /// Parse one index line back (inverse of [`Self::to_json`]).
    pub fn parse(line: &str) -> Result<RunRecord, String> {
        fn req<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
            raw_field(line, key).ok_or_else(|| format!("missing field \"{key}\""))
        }
        fn u64_of(line: &str, key: &str) -> Result<u64, String> {
            req(line, key)?
                .parse::<u64>()
                .map_err(|e| format!("field \"{key}\": {e}"))
        }
        if !line.ends_with('}') {
            return Err("truncated record (no closing brace)".to_string());
        }
        Ok(RunRecord {
            run: u64_of(line, "run")?,
            label: req(line, "label")?.to_string(),
            workload: req(line, "workload")?.to_string(),
            estimator: req(line, "estimator")?.to_string(),
            threads: u64_of(line, "threads")? as usize,
            seed: u64_of(line, "seed")?,
            state: req(line, "state")?.to_string(),
            wall_us: u64_of(line, "wall_us")?,
            events: u64_of(line, "events")?,
            trace_bytes: u64_of(line, "trace_bytes")?,
            regressions: u64_of(line, "regressions")? as usize,
            score: ProgressScore::from_json(line)?,
        })
    }
}

/// The result of archiving one run.
#[derive(Debug, Clone)]
pub struct ArchivedRun {
    /// The index record that was appended.
    pub record: RunRecord,
    /// Regressions detected against the rolling baselines (empty for
    /// aborted runs and under-seeded keys).
    pub regressions: Vec<Regression>,
}

struct CorpusInner {
    /// Surviving index records, oldest first.
    runs: Vec<RunRecord>,
    /// Next run id (monotonic across evictions and reopens).
    next_run: u64,
    /// Total bytes of retained trace segments.
    trace_bytes: u64,
    /// Append handle for `index.jsonl` (recreated after compaction).
    index: Option<fs::File>,
    /// Reopen/GC findings, `ReplayedTrace::parse`-style: advisory, never
    /// fatal.
    diagnostics: Vec<String>,
}

/// The on-disk run store. Cheap to share (`Arc<Corpus>`); all mutation is
/// behind one poison-recovering mutex, and nothing here is on a query's
/// per-tuple path — archival happens once, at terminal time.
pub struct Corpus {
    dir: PathBuf,
    config: CorpusConfig,
    inner: Mutex<CorpusInner>,
}

impl std::fmt::Debug for Corpus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Corpus")
            .field("dir", &self.dir)
            .field("runs", &inner.runs.len())
            .field("trace_bytes", &inner.trace_bytes)
            .field("diagnostics", &inner.diagnostics.len())
            .finish()
    }
}

const INDEX_FILE: &str = "index.jsonl";

fn segment_name(run: u64) -> String {
    format!("run-{run:06}.jsonl")
}

impl Corpus {
    /// Open (or create) a corpus at `dir` with default settings.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Corpus> {
        Corpus::open_with(dir, CorpusConfig::default())
    }

    /// Open (or create) a corpus at `dir`.
    ///
    /// Reopen is crash-tolerant: torn index lines, records whose segment is
    /// missing or fails [`ReplayedTrace::parse`] cleanly, and orphan
    /// segments are skipped/garbage-collected and surfaced through
    /// [`diagnostics`](Self::diagnostics). Only the directory/index IO
    /// itself can fail.
    pub fn open_with(dir: impl Into<PathBuf>, config: CorpusConfig) -> std::io::Result<Corpus> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut runs = Vec::new();
        let mut diagnostics = Vec::new();
        let mut next_run = 0u64;
        let mut skipped_any = false;

        let index_path = dir.join(INDEX_FILE);
        if index_path.exists() {
            let text = fs::read_to_string(&index_path)?;
            for (i, line) in text.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                match RunRecord::parse(line) {
                    Ok(rec) => {
                        next_run = next_run.max(rec.run + 1);
                        // A record is only live if its segment survived
                        // intact; verify with the same tolerant parser
                        // consumers will use.
                        let seg = dir.join(segment_name(rec.run));
                        match fs::read_to_string(&seg) {
                            Ok(jsonl) => {
                                let trace = ReplayedTrace::parse(&jsonl);
                                if trace.errors.is_empty() && !trace.events.is_empty() {
                                    runs.push(rec);
                                } else {
                                    let what = trace
                                        .errors
                                        .first()
                                        .map(|(n, e)| format!("line {n}: {e}"))
                                        .unwrap_or_else(|| "empty segment".to_string());
                                    diagnostics.push(format!(
                                        "run {}: torn trace segment ({what}); run skipped, \
                                         segment removed",
                                        rec.run
                                    ));
                                    let _ = fs::remove_file(&seg);
                                    skipped_any = true;
                                }
                            }
                            Err(e) => {
                                diagnostics.push(format!(
                                    "run {}: trace segment unreadable ({e}); run skipped",
                                    rec.run
                                ));
                                skipped_any = true;
                            }
                        }
                    }
                    Err(e) => {
                        diagnostics.push(format!("index line {}: {e}; line skipped", i + 1));
                        skipped_any = true;
                    }
                }
            }
        }

        // GC segments the surviving index does not own (crash between
        // segment write and index append, or debris from a skipped line).
        let live: std::collections::HashSet<u64> = runs.iter().map(|r| r.run).collect();
        if let Ok(entries) = fs::read_dir(&dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let Some(id) = name
                    .strip_prefix("run-")
                    .and_then(|s| s.strip_suffix(".jsonl"))
                    .and_then(|s| s.parse::<u64>().ok())
                else {
                    continue;
                };
                next_run = next_run.max(id + 1);
                if !live.contains(&id) {
                    diagnostics.push(format!(
                        "orphan trace segment {name} (no index record); removed"
                    ));
                    let _ = fs::remove_file(entry.path());
                }
            }
        }

        let trace_bytes = runs.iter().map(|r| r.trace_bytes).sum();
        let corpus = Corpus {
            dir,
            config,
            inner: Mutex::new(CorpusInner {
                runs,
                next_run,
                trace_bytes,
                index: None,
                diagnostics,
            }),
        };
        if skipped_any {
            // Compact away the skipped lines so the diagnostics do not
            // recur on every reopen.
            let mut inner = corpus.inner.lock();
            corpus.rewrite_index(&mut inner)?;
        }
        Ok(corpus)
    }

    /// The corpus directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Retention and regression settings.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Retained runs, oldest first.
    pub fn runs(&self) -> Vec<RunRecord> {
        self.inner.lock().runs.clone()
    }

    /// Number of retained runs.
    pub fn len(&self) -> usize {
        self.inner.lock().runs.len()
    }

    /// `true` when no runs are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of retained trace segments.
    pub fn trace_bytes(&self) -> u64 {
        self.inner.lock().trace_bytes
    }

    /// One run's index record.
    pub fn run(&self, id: u64) -> Option<RunRecord> {
        self.inner.lock().runs.iter().find(|r| r.run == id).cloned()
    }

    /// One run's raw trace JSONL (exactly the bytes archived).
    pub fn trace_jsonl(&self, id: u64) -> std::io::Result<String> {
        if self.run(id).is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("run {id} is not in the corpus"),
            ));
        }
        fs::read_to_string(self.dir.join(segment_name(id)))
    }

    /// Reopen/GC findings (torn segments, truncated index lines, orphans).
    pub fn diagnostics(&self) -> Vec<String> {
        self.inner.lock().diagnostics.clone()
    }

    /// Archive one completed run: score its trace, write the segment,
    /// append the index record, detect regressions against the rolling
    /// baselines, and apply retention. Returns the record plus any
    /// regressions; the caller decides how to announce them (the
    /// [`CorpusSink`] publishes [`RegressionDetected`] trace events).
    ///
    /// [`RegressionDetected`]: TraceEventKind::RegressionDetected
    pub fn archive(
        &self,
        meta: &RunMeta,
        events: &[TraceEvent],
        op_names: &[String],
    ) -> std::io::Result<ArchivedRun> {
        let score = score_events(events);
        let wall_us = events.iter().map(|e| e.at_us).max().unwrap_or(0);
        let state = terminal_state(events);

        // Encode the segment exactly as the JSONL sink would, so replays
        // are byte-identical to a live-written trace.
        let mut jsonl = String::with_capacity(events.len() * 96);
        for event in events {
            crate::json::write_event_json(&mut jsonl, event, op_names);
            jsonl.push('\n');
        }

        let mut inner = self.inner.lock();
        let run = inner.next_run;
        inner.next_run += 1;

        // Baselines come from *prior* finished runs with the same key.
        let regressions = if state == "finished" {
            let baselines: Vec<&RunRecord> = inner
                .runs
                .iter()
                .filter(|r| {
                    r.state == "finished"
                        && r.workload == meta.workload
                        && r.estimator == meta.estimator
                        && r.threads == meta.threads
                })
                .collect();
            self.config.regression.detect(&score, wall_us, &baselines)
        } else {
            Vec::new()
        };

        let record = RunRecord {
            run,
            label: meta.label.clone(),
            workload: meta.workload.clone(),
            estimator: meta.estimator.clone(),
            threads: meta.threads,
            seed: meta.seed,
            state,
            wall_us,
            events: events.len() as u64,
            trace_bytes: jsonl.len() as u64,
            regressions: regressions.len(),
            score,
        };

        // Segment first, index second: a crash in between leaves an orphan
        // segment the next open garbage-collects, never a dangling record.
        fs::write(self.dir.join(segment_name(run)), jsonl.as_bytes())?;
        self.append_index(&mut inner, &record)?;
        inner.trace_bytes += record.trace_bytes;
        inner.runs.push(record.clone());
        self.apply_retention(&mut inner)?;

        Ok(ArchivedRun {
            record,
            regressions,
        })
    }

    fn append_index(&self, inner: &mut CorpusInner, record: &RunRecord) -> std::io::Result<()> {
        if inner.index.is_none() {
            inner.index = Some(
                fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(self.dir.join(INDEX_FILE))?,
            );
        }
        let file = inner.index.as_mut().expect("index handle just ensured");
        let mut line = record.to_json();
        line.push('\n');
        file.write_all(line.as_bytes())?;
        file.flush()
    }

    /// Evict oldest runs past the caps, compacting the index when any
    /// eviction happened.
    fn apply_retention(&self, inner: &mut CorpusInner) -> std::io::Result<()> {
        let mut evicted = false;
        while inner.runs.len() > self.config.max_runs
            || (inner.trace_bytes > self.config.max_trace_bytes && inner.runs.len() > 1)
        {
            let victim = inner.runs.remove(0);
            inner.trace_bytes = inner.trace_bytes.saturating_sub(victim.trace_bytes);
            let _ = fs::remove_file(self.dir.join(segment_name(victim.run)));
            evicted = true;
        }
        if evicted {
            self.rewrite_index(inner)?;
        }
        Ok(())
    }

    /// Atomically replace `index.jsonl` with the surviving records.
    fn rewrite_index(&self, inner: &mut CorpusInner) -> std::io::Result<()> {
        inner.index = None; // close the stale append handle first
        let tmp = self.dir.join("index.jsonl.tmp");
        let mut text = String::new();
        for r in &inner.runs {
            text.push_str(&r.to_json());
            text.push('\n');
        }
        fs::write(&tmp, text.as_bytes())?;
        fs::rename(&tmp, self.dir.join(INDEX_FILE))
    }
}

/// The terminal state a trace records: `finished`, an abort reason name,
/// or `unknown` when no terminal event was captured.
fn terminal_state(events: &[TraceEvent]) -> String {
    for e in events.iter().rev() {
        match e.kind {
            TraceEventKind::QueryFinished { .. } => return "finished".to_string(),
            TraceEventKind::QueryAborted { reason, .. } => return reason.name().to_string(),
            _ => {}
        }
    }
    "unknown".to_string()
}

/// Cap on events buffered per run, so a pathological trace cannot grow the
/// sink without bound (events beyond it are dropped and counted).
const MAX_BUFFERED_EVENTS: usize = 1 << 20;

struct CorpusSinkState {
    events: Vec<TraceEvent>,
    op_names: Vec<String>,
    archived: bool,
    last: Option<ArchivedRun>,
    last_error: Option<String>,
}

/// A per-query [`TraceSink`] that buffers the run's events and archives
/// them into a shared [`Corpus`] on the terminal event
/// (`QueryFinished`/`QueryAborted`), publishing any detected regressions
/// back onto the bus as typed [`RegressionDetected`] events.
///
/// Archival is advisory like the
/// [`JsonlSink`](crate::sinks::JsonlSink): an unwritable corpus is counted
/// ([`dropped`](Self::dropped), [`last_error`](Self::last_error)) but never
/// fails — or poisons — anything on the query or monitor side.
///
/// [`RegressionDetected`]: TraceEventKind::RegressionDetected
pub struct CorpusSink {
    corpus: Arc<Corpus>,
    meta: RunMeta,
    state: Mutex<CorpusSinkState>,
    /// The bus regressions are announced on. Weak on purpose — the sink is
    /// owned by the bus it publishes to, and must not keep it alive.
    bus: Mutex<Option<Weak<EventBus>>>,
    dropped: AtomicU64,
}

impl CorpusSink {
    /// A sink archiving one run under `meta` into `corpus`.
    pub fn new(corpus: Arc<Corpus>, meta: RunMeta) -> CorpusSink {
        CorpusSink {
            corpus,
            meta,
            state: Mutex::new(CorpusSinkState {
                events: Vec::new(),
                op_names: Vec::new(),
                archived: false,
                last: None,
                last_error: None,
            }),
            bus: Mutex::new(None),
            dropped: AtomicU64::new(0),
        }
    }

    /// Attach the bus regressions should be announced on (typically the
    /// same bus this sink receives from).
    pub fn attach_bus(&self, bus: &Arc<EventBus>) {
        *self.bus.lock() = Some(Arc::downgrade(bus));
    }

    /// Annotate operator indices with registry names (post-compile), like
    /// [`MetricsSink::set_op_names`](crate::metrics_sink::MetricsSink::set_op_names).
    pub fn set_op_names(&self, names: Vec<String>) {
        self.state.lock().op_names = names;
    }

    /// The shared corpus this sink archives into.
    pub fn corpus(&self) -> &Arc<Corpus> {
        &self.corpus
    }

    /// The archival result, once the terminal event has been seen.
    pub fn archived_run(&self) -> Option<ArchivedRun> {
        self.state.lock().last.clone()
    }

    /// Events or archives lost (buffer cap overflow, archival IO error).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The most recent archival failure, if any.
    pub fn last_error(&self) -> Option<String> {
        self.state.lock().last_error.clone()
    }
}

impl std::fmt::Debug for CorpusSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CorpusSink")
            .field("workload", &self.meta.workload)
            .field("archived", &self.state.lock().archived)
            .finish()
    }
}

impl TraceSink for CorpusSink {
    fn publish(&self, event: &TraceEvent) {
        let (events, op_names) = {
            let mut s = self.state.lock();
            if s.archived {
                // Post-terminal traffic (including our own RegressionDetected
                // echoes fanning back) is not part of the archived run.
                return;
            }
            if s.events.len() >= MAX_BUFFERED_EVENTS {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            s.events.push(*event);
            if !matches!(
                event.kind,
                TraceEventKind::QueryFinished { .. } | TraceEventKind::QueryAborted { .. }
            ) {
                return;
            }
            s.archived = true;
            (std::mem::take(&mut s.events), s.op_names.clone())
        };
        // Terminal: archive outside the state lock (publishing regressions
        // fans back into this sink).
        match self.corpus.archive(&self.meta, &events, &op_names) {
            Ok(run) => {
                let regressions = run.regressions.clone();
                self.state.lock().last = Some(run);
                let bus = self.bus.lock().as_ref().and_then(Weak::upgrade);
                if let Some(bus) = bus {
                    for r in &regressions {
                        bus.publish(r.to_event_kind());
                    }
                }
            }
            Err(e) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                self.state.lock().last_error = Some(e.to_string());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qprog_exec::trace::AbortKind;

    fn tmpdir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "qprog-corpus-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn ev(seq: u64, at_us: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent { seq, at_us, kind }
    }

    /// A synthetic finished run: progress samples offset from the oracle by
    /// `err`, terminating at `wall_us`.
    fn run_events(err: f64, wall_us: u64) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        let mut seq = 0;
        for (i, &(oracle, current)) in [(0.25, 25u64), (0.5, 50), (0.75, 75), (1.0, 100)]
            .iter()
            .enumerate()
        {
            events.push(ev(
                seq,
                wall_us * (i as u64 + 1) / 5,
                TraceEventKind::ProgressSampled {
                    current,
                    total: 100.0,
                    fraction: (oracle + err).min(1.0),
                    lo: f64::NAN,
                    hi: f64::NAN,
                },
            ));
            seq += 1;
        }
        events.push(ev(
            seq,
            wall_us,
            TraceEventKind::QueryFinished { rows: 100 },
        ));
        events
    }

    #[test]
    fn archive_and_reopen_round_trip() {
        let dir = tmpdir("roundtrip");
        let corpus = Corpus::open(&dir).unwrap();
        let meta = RunMeta::new("q1", "once").with_seed(7).with_threads(2);
        let archived = corpus
            .archive(&meta, &run_events(0.0, 1000), &["scan".to_string()])
            .unwrap();
        assert_eq!(archived.record.run, 0);
        assert_eq!(archived.record.state, "finished");
        assert_eq!(archived.record.wall_us, 1000);
        assert_eq!(archived.record.score.samples, 4);
        assert!(archived.regressions.is_empty());

        // The segment round-trips byte-identically through replay.
        let jsonl = corpus.trace_jsonl(0).unwrap();
        let trace = ReplayedTrace::parse(&jsonl);
        assert!(trace.errors.is_empty(), "{:?}", trace.errors);
        let mut reencoded = String::new();
        for event in &trace.events {
            crate::json::write_event_json(&mut reencoded, event, &trace.op_names);
            reencoded.push('\n');
        }
        assert_eq!(jsonl, reencoded);
        assert_eq!(score_events(&trace.events), archived.record.score);

        // Reopen sees the same record, cleanly.
        drop(corpus);
        let corpus = Corpus::open(&dir).unwrap();
        assert!(
            corpus.diagnostics().is_empty(),
            "{:?}",
            corpus.diagnostics()
        );
        let runs = corpus.runs();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0], archived.record);
        // Ids keep advancing after reopen.
        let again = corpus.archive(&meta, &run_events(0.0, 1000), &[]).unwrap();
        assert_eq!(again.record.run, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn aborted_runs_record_their_reason_and_skip_detection() {
        let dir = tmpdir("abort");
        let corpus = Corpus::open(&dir).unwrap();
        let meta = RunMeta::new("q1", "once");
        let events = vec![ev(
            0,
            500,
            TraceEventKind::QueryAborted {
                reason: AbortKind::Cancelled,
                rows: 3,
            },
        )];
        let archived = corpus.archive(&meta, &events, &[]).unwrap();
        assert_eq!(archived.record.state, "cancelled");
        assert!(archived.regressions.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_evicts_oldest_and_compacts_index() {
        let dir = tmpdir("retention");
        let corpus = Corpus::open_with(
            &dir,
            CorpusConfig {
                max_runs: 3,
                ..CorpusConfig::default()
            },
        )
        .unwrap();
        let meta = RunMeta::new("q1", "once");
        for _ in 0..5 {
            corpus.archive(&meta, &run_events(0.0, 1000), &[]).unwrap();
        }
        let ids: Vec<u64> = corpus.runs().iter().map(|r| r.run).collect();
        assert_eq!(ids, vec![2, 3, 4]);
        assert!(!dir.join(segment_name(0)).exists());
        assert!(!dir.join(segment_name(1)).exists());
        assert!(dir.join(segment_name(4)).exists());

        // The compacted index agrees on reopen, and ids are never reused.
        drop(corpus);
        let corpus = Corpus::open(&dir).unwrap();
        assert!(
            corpus.diagnostics().is_empty(),
            "{:?}",
            corpus.diagnostics()
        );
        assert_eq!(
            corpus.runs().iter().map(|r| r.run).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        let next = corpus.archive(&meta, &run_events(0.0, 1000), &[]).unwrap();
        assert_eq!(next.record.run, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_cap_also_evicts() {
        let dir = tmpdir("bytecap");
        let corpus = Corpus::open_with(
            &dir,
            CorpusConfig {
                max_trace_bytes: 600,
                ..CorpusConfig::default()
            },
        )
        .unwrap();
        let meta = RunMeta::new("q1", "once");
        for _ in 0..4 {
            corpus.archive(&meta, &run_events(0.0, 1000), &[]).unwrap();
        }
        assert!(corpus.trace_bytes() <= 600 || corpus.len() == 1);
        assert!(corpus.len() < 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn regression_engine_flags_degraded_error_only() {
        let cfg = RegressionConfig::default();
        let clean: Vec<RunRecord> = (0..8)
            .map(|i| RunRecord {
                run: i,
                label: "q".into(),
                workload: "q".into(),
                estimator: "once".into(),
                threads: 1,
                seed: 0,
                state: "finished".into(),
                wall_us: 1000,
                events: 5,
                trace_bytes: 100,
                regressions: 0,
                score: score_events(&run_events(0.0, 1000)),
            })
            .collect();
        let refs: Vec<&RunRecord> = clean.iter().collect();

        // Identical run: nothing flags.
        let same = score_events(&run_events(0.0, 1000));
        assert!(cfg.detect(&same, 1000, &refs).is_empty());

        // Constant +0.08 offset: mean_abs_err regresses, convergence stays
        // inside the ±0.10 band, monotonicity/wall unchanged.
        let degraded = score_events(&run_events(0.08, 1000));
        let found = cfg.detect(&degraded, 1000, &refs);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].kind, RegressionKind::MeanAbsErr);
        assert!(found[0].observed > found[0].threshold);

        // 3× wall time flags exactly the wall-time metric.
        let slow = cfg.detect(&same, 3000, &refs);
        assert_eq!(slow.len(), 1, "{slow:?}");
        assert_eq!(slow[0].kind, RegressionKind::WallTime);

        // Under-seeded baselines stay disarmed.
        assert!(cfg.detect(&degraded, 3000, &refs[..3]).is_empty());
    }

    #[test]
    fn corpus_sink_archives_on_terminal_and_announces_regressions() {
        use crate::sinks::RingSink;
        let dir = tmpdir("sink");
        let corpus = Arc::new(Corpus::open(&dir).unwrap());
        let meta = RunMeta::new("q1", "once");

        // Seed enough clean baselines for detection to arm.
        for _ in 0..6 {
            corpus.archive(&meta, &run_events(0.0, 1000), &[]).unwrap();
        }

        // Degraded run through the sink: terminal archives + publishes.
        let sink = Arc::new(CorpusSink::new(Arc::clone(&corpus), meta));
        let ring = Arc::new(RingSink::with_capacity(64));
        let bus = EventBus::builder()
            .sink(Arc::clone(&sink) as _)
            .sink(Arc::clone(&ring) as _)
            .build();
        sink.attach_bus(&bus);
        for event in run_events(0.08, 1000) {
            bus.publish(event.kind);
        }
        let archived = sink.archived_run().expect("terminal event archives");
        assert_eq!(archived.regressions.len(), 1);
        assert_eq!(corpus.len(), 7);
        let regressions: Vec<TraceEvent> = ring
            .drain()
            .into_iter()
            .filter(|e| matches!(e.kind, TraceEventKind::RegressionDetected { .. }))
            .collect();
        assert_eq!(regressions.len(), 1);
        assert_eq!(sink.dropped(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn archival_failure_is_advisory() {
        let dir = tmpdir("advisory");
        let corpus = Arc::new(Corpus::open(&dir).unwrap());
        // Remove the directory out from under the corpus: segment writes
        // will fail, but publishing must not panic or poison anything.
        fs::remove_dir_all(&dir).unwrap();
        let sink = CorpusSink::new(Arc::clone(&corpus), RunMeta::new("q1", "once"));
        for event in run_events(0.0, 1000) {
            sink.publish(&event);
        }
        assert_eq!(sink.dropped(), 1);
        assert!(sink.last_error().is_some());
        assert!(sink.archived_run().is_none());
    }
}
