//! A [`TraceSink`] that aggregates one query's trace events into a shared
//! [`qprog_metrics::Registry`].
//!
//! One `MetricsSink` is created **per query** (events carry operator
//! indices that are only meaningful within a query), but every sink writes
//! into the same registry, so counters and histograms aggregate *across*
//! queries: a fleet-wide view of tuple throughput, phase activity, and —
//! following König et al.'s argument that estimator accuracy must be
//! tracked across queries to know which estimator to trust — per-estimator
//! q-error histograms comparing each operator's last online estimate
//! against its exact final cardinality.
//!
//! All counter handles the sink touches on the publish path are resolved at
//! construction; a publish is a few relaxed atomic increments plus a short
//! mutex around the tiny per-operator estimate table (events are published
//! at phase boundaries and material refinements only — never per tuple).

use std::sync::Arc;

use qprog_exec::sync::Mutex;
use qprog_exec::trace::{EstimateSource, Phase, TraceEvent, TraceEventKind, TraceSink};
use qprog_metrics::{Counter, Histogram, Registry};

use crate::explain::q_error;

/// q-error histogram bucket upper bounds: 1 is a perfect estimate; the
/// paper's evaluation sees errors from ~1 to a few orders of magnitude.
pub const Q_ERROR_BUCKETS: [f64; 10] = [1.0, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0, 100.0, 1000.0];

/// All phases, indexable for pre-resolved counters.
const PHASES: [Phase; 8] = [
    Phase::Init,
    Phase::Build,
    Phase::Probe,
    Phase::PartitionJoin,
    Phase::SortInput,
    Phase::Merge,
    Phase::Accumulate,
    Phase::Emit,
];

fn phase_index(p: Phase) -> usize {
    PHASES
        .iter()
        .position(|&q| q == p)
        .expect("PHASES covers every Phase variant")
}

/// Per-operator aggregation state.
#[derive(Debug, Clone, Copy, Default)]
struct OpAgg {
    /// Last estimate published before the exact pin (NaN = none yet).
    last_estimate: f64,
    /// Whether at least one `Online` refinement arrived.
    refined_online: bool,
}

/// Event → metrics aggregator; see the module docs.
pub struct MetricsSink {
    registry: Arc<Registry>,
    estimator: String,
    /// `qprog_trace_events_total{event=...}`, one per event kind.
    events: [Arc<Counter>; 11],
    /// `qprog_phase_transitions_total{phase=...}`, by entered phase.
    phases: [Arc<Counter>; 8],
    /// `qprog_estimate_refinements_total{source=...}`.
    refinements: [Arc<Counter>; 3],
    /// `qprog_operator_tuples_total{estimator=...}`: exact tuples emitted,
    /// accumulated at operator finish.
    tuples: Arc<Counter>,
    /// `qprog_queries_finished_total{estimator=...}`.
    queries_finished: Arc<Counter>,
    /// `qprog_query_rows_total{estimator=...}`.
    query_rows: Arc<Counter>,
    /// `qprog_estimate_q_error{estimator=...}`: final-estimate accuracy.
    q_error: Arc<Histogram>,
    /// Per-operator estimate state, grown on demand.
    ops: Mutex<Vec<OpAgg>>,
    /// Registry names per operator, set post-compile via
    /// [`set_op_names`](Self::set_op_names).
    op_names: Mutex<Vec<String>>,
}

impl MetricsSink {
    /// A sink for one query, aggregating into `registry` under the given
    /// estimator label (conventionally
    /// [`EstimationMode::label`](qprog_core::EstimationMode::label):
    /// `off`/`once`/`dne`/`byte`).
    pub fn new(registry: Arc<Registry>, estimator: &str) -> Self {
        let event_kinds = [
            "pipeline_started",
            "pipeline_finished",
            "phase_transition",
            "estimate_refined",
            "bounds_refined",
            "operator_finished",
            "query_finished",
            "query_aborted",
            "estimator_degraded",
            "progress_sampled",
            "operator_wall_time",
        ];
        let events = event_kinds.map(|k| {
            registry.counter(
                "qprog_trace_events_total",
                "Trace events published, by event kind",
                &[("event", k)],
            )
        });
        let phases = PHASES.map(|p| {
            registry.counter(
                "qprog_phase_transitions_total",
                "Operator phase transitions, by entered phase",
                &[("phase", p.name())],
            )
        });
        let refinements = [
            EstimateSource::Optimizer,
            EstimateSource::Online,
            EstimateSource::Exact,
        ]
        .map(|s| {
            registry.counter(
                "qprog_estimate_refinements_total",
                "Cardinality estimate refinements, by source",
                &[("source", s.name())],
            )
        });
        let est = &[("estimator", estimator)][..];
        let tuples = registry.counter(
            "qprog_operator_tuples_total",
            "Exact tuples emitted by finished operators",
            est,
        );
        let queries_finished = registry.counter(
            "qprog_queries_finished_total",
            "Queries run to completion",
            est,
        );
        let query_rows = registry.counter(
            "qprog_query_rows_total",
            "Rows returned by finished queries",
            est,
        );
        let q_error = registry.histogram(
            "qprog_estimate_q_error",
            "q-error of each operator's last online estimate vs its exact \
             final cardinality, by estimator",
            est,
            &Q_ERROR_BUCKETS,
        );
        MetricsSink {
            registry,
            estimator: estimator.to_string(),
            events,
            phases,
            refinements,
            tuples,
            queries_finished,
            query_rows,
            q_error,
            ops: Mutex::new(Vec::new()),
            op_names: Mutex::new(Vec::new()),
        }
    }

    /// Attach operator registry names (post-compile) so per-operator tuple
    /// counts are labeled by operator name in addition to the aggregate.
    pub fn set_op_names(&self, names: Vec<String>) {
        *self.op_names.lock() = names;
    }

    /// The shared registry this sink aggregates into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The estimator label samples are recorded under.
    pub fn estimator(&self) -> &str {
        &self.estimator
    }

    fn with_op<R>(&self, op: u32, f: impl FnOnce(&mut OpAgg) -> R) -> R {
        let mut ops = self.ops.lock();
        let idx = op as usize;
        if ops.len() <= idx {
            ops.resize(
                idx + 1,
                OpAgg {
                    last_estimate: f64::NAN,
                    refined_online: false,
                },
            );
        }
        f(&mut ops[idx])
    }
}

impl std::fmt::Debug for MetricsSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsSink")
            .field("estimator", &self.estimator)
            .finish()
    }
}

impl TraceSink for MetricsSink {
    fn publish(&self, event: &TraceEvent) {
        let event_idx = match event.kind {
            TraceEventKind::PipelineStarted { .. } => Some(0),
            TraceEventKind::PipelineFinished { .. } => Some(1),
            TraceEventKind::PhaseTransition { .. } => Some(2),
            TraceEventKind::EstimateRefined { .. } => Some(3),
            TraceEventKind::BoundsRefined { .. } => Some(4),
            TraceEventKind::OperatorFinished { .. } => Some(5),
            TraceEventKind::QueryFinished { .. } => Some(6),
            TraceEventKind::QueryAborted { .. } => Some(7),
            TraceEventKind::EstimatorDegraded { .. } => Some(8),
            TraceEventKind::ProgressSampled { .. } => Some(9),
            TraceEventKind::OperatorWallTime { .. } => Some(10),
            // Parallel-only events resolve their counters lazily below so a
            // serial (threads = 1) run never registers them — keeping the
            // exposition byte-identical to a pre-parallelism engine.
            TraceEventKind::WorkerWallTime { .. } => None,
            // Same deal: health events only exist when an analyzer is
            // attached, so plain traces never register health series.
            TraceEventKind::HealthTransition { .. } => None,
            // And regressions only exist when a corpus is attached.
            TraceEventKind::RegressionDetected { .. } => None,
            // Lifecycle spans only exist for service-managed queries; the
            // service aggregates its own SLO metrics from them.
            TraceEventKind::SpanStart { .. } | TraceEventKind::SpanEnd { .. } => None,
        };
        if let Some(event_idx) = event_idx {
            self.events[event_idx].inc();
        }
        match event.kind {
            TraceEventKind::PhaseTransition { to, .. } => {
                self.phases[phase_index(to)].inc();
            }
            TraceEventKind::EstimateRefined {
                op, new, source, ..
            } => {
                self.refinements[match source {
                    EstimateSource::Optimizer => 0,
                    EstimateSource::Online => 1,
                    EstimateSource::Exact => 2,
                }]
                .inc();
                match source {
                    EstimateSource::Exact => {
                        // Exact pin: score the last pre-exact estimate. Only
                        // operators that actually refined online contribute —
                        // scoring the raw optimizer guess would pollute the
                        // per-estimator histograms with compile-time error.
                        let prior =
                            self.with_op(op, |o| o.refined_online.then_some(o.last_estimate));
                        if let Some(prior) = prior {
                            if prior.is_finite() {
                                self.q_error.observe(q_error(new, prior));
                            }
                        }
                    }
                    _ => self.with_op(op, |o| {
                        o.last_estimate = new;
                        o.refined_online |= source == EstimateSource::Online;
                    }),
                }
            }
            TraceEventKind::OperatorFinished { op, emitted } => {
                self.tuples.add(emitted);
                let name = self.op_names.lock().get(op as usize).cloned();
                if let Some(name) = name {
                    self.registry
                        .counter(
                            "qprog_operator_emitted_total",
                            "Exact tuples emitted by finished operators, by operator",
                            &[("op", &name)],
                        )
                        .add(emitted);
                }
            }
            TraceEventKind::QueryFinished { rows } => {
                self.queries_finished.inc();
                self.query_rows.add(rows);
            }
            TraceEventKind::QueryAborted { reason, .. } => {
                // Terminal failures are rare; resolving the per-reason
                // counter lazily keeps the hot-path handle set small.
                self.registry
                    .counter(
                        "qprog_queries_failed_total",
                        "Queries terminated before completion, by abort reason",
                        &[("estimator", &self.estimator), ("reason", reason.name())],
                    )
                    .inc();
            }
            TraceEventKind::OperatorWallTime { op, wall_us } => {
                // Like operator_emitted: resolved lazily by operator name
                // (wall-time events fire once per operator per query).
                let name = self.op_names.lock().get(op as usize).cloned();
                if let Some(name) = name {
                    self.registry
                        .counter(
                            "qprog_op_wall_us",
                            "Observed active wall span of finished operators \
                             in microseconds, by operator",
                            &[("op", &name)],
                        )
                        .add(wall_us);
                }
            }
            TraceEventKind::WorkerWallTime {
                op,
                worker,
                busy_us,
            } => {
                // Worker attribution only exists for parallel drains, which
                // fire a handful of events per join — lazy resolution keeps
                // serial expositions free of parallel-only series.
                self.registry
                    .counter(
                        "qprog_trace_events_total",
                        "Trace events published, by event kind",
                        &[("event", "worker_wall_time")],
                    )
                    .inc();
                let name = self.op_names.lock().get(op as usize).cloned();
                if let Some(name) = name {
                    let worker = worker.to_string();
                    self.registry
                        .counter(
                            "qprog_worker_busy_us",
                            "Busy wall time of partition-parallel workers in \
                             microseconds, by operator and worker index",
                            &[("op", &name), ("worker", &worker)],
                        )
                        .add(busy_us);
                }
            }
            TraceEventKind::HealthTransition { to, reason, .. } => {
                self.registry
                    .counter(
                        "qprog_trace_events_total",
                        "Trace events published, by event kind",
                        &[("event", "health_transition")],
                    )
                    .inc();
                self.registry
                    .counter(
                        "qprog_health_transitions_total",
                        "Progress-health verdict changes, by entered state \
                         and reason",
                        &[("state", to.name()), ("reason", reason.name())],
                    )
                    .inc();
            }
            TraceEventKind::RegressionDetected { kind, .. } => {
                self.registry
                    .counter(
                        "qprog_trace_events_total",
                        "Trace events published, by event kind",
                        &[("event", "regression_detected")],
                    )
                    .inc();
                self.registry
                    .counter(
                        "qprog_regressions_total",
                        "Progress-quality regressions flagged against corpus \
                         baselines, by regressed metric",
                        &[("kind", kind.name())],
                    )
                    .inc();
            }
            TraceEventKind::EstimatorDegraded { reason, .. } => {
                self.registry
                    .counter(
                        "qprog_estimator_degraded_total",
                        "Estimators that fell back to a cheaper baseline after \
                         a budget breach, by reason",
                        &[("estimator", &self.estimator), ("reason", reason.name())],
                    )
                    .inc();
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qprog_exec::trace::EventBus;

    fn publish_all(sink: &MetricsSink, kinds: &[TraceEventKind]) {
        for (i, &kind) in kinds.iter().enumerate() {
            sink.publish(&TraceEvent {
                seq: i as u64,
                at_us: i as u64,
                kind,
            });
        }
    }

    #[test]
    fn events_phases_and_refinements_are_counted() {
        let registry = Arc::new(Registry::new());
        let sink = MetricsSink::new(Arc::clone(&registry), "once");
        publish_all(
            &sink,
            &[
                TraceEventKind::PipelineStarted { pipeline: 0 },
                TraceEventKind::PhaseTransition {
                    op: 0,
                    from: Phase::Init,
                    to: Phase::Build,
                },
                TraceEventKind::PhaseTransition {
                    op: 0,
                    from: Phase::Build,
                    to: Phase::Probe,
                },
                TraceEventKind::EstimateRefined {
                    op: 0,
                    old: f64::NAN,
                    new: 100.0,
                    source: EstimateSource::Optimizer,
                },
                TraceEventKind::QueryFinished { rows: 42 },
            ],
        );
        let text = registry.render();
        assert!(text.contains("qprog_trace_events_total{event=\"phase_transition\"} 2"));
        assert!(text.contains("qprog_phase_transitions_total{phase=\"build\"} 1"));
        assert!(text.contains("qprog_phase_transitions_total{phase=\"probe\"} 1"));
        assert!(text.contains("qprog_estimate_refinements_total{source=\"optimizer\"} 1"));
        assert!(text.contains("qprog_queries_finished_total{estimator=\"once\"} 1"));
        assert!(text.contains("qprog_query_rows_total{estimator=\"once\"} 42"));
    }

    #[test]
    fn q_error_scores_last_online_estimate_against_exact() {
        let registry = Arc::new(Registry::new());
        let sink = MetricsSink::new(Arc::clone(&registry), "dne");
        publish_all(
            &sink,
            &[
                TraceEventKind::EstimateRefined {
                    op: 0,
                    old: f64::NAN,
                    new: 1000.0,
                    source: EstimateSource::Optimizer,
                },
                TraceEventKind::EstimateRefined {
                    op: 0,
                    old: 1000.0,
                    new: 50.0,
                    source: EstimateSource::Online,
                },
                TraceEventKind::EstimateRefined {
                    op: 0,
                    old: 50.0,
                    new: 100.0,
                    source: EstimateSource::Exact,
                },
            ],
        );
        let hist = registry.histogram(
            "qprog_estimate_q_error",
            "",
            &[("estimator", "dne")],
            &Q_ERROR_BUCKETS,
        );
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.sum(), 2.0, "q-error(100, 50) = 2");
    }

    #[test]
    fn operators_without_online_refinement_are_not_scored() {
        let registry = Arc::new(Registry::new());
        let sink = MetricsSink::new(Arc::clone(&registry), "off");
        publish_all(
            &sink,
            &[
                TraceEventKind::EstimateRefined {
                    op: 3,
                    old: f64::NAN,
                    new: 10.0,
                    source: EstimateSource::Optimizer,
                },
                TraceEventKind::EstimateRefined {
                    op: 3,
                    old: 10.0,
                    new: 7.0,
                    source: EstimateSource::Exact,
                },
            ],
        );
        let hist = registry.histogram(
            "qprog_estimate_q_error",
            "",
            &[("estimator", "off")],
            &Q_ERROR_BUCKETS,
        );
        assert_eq!(hist.count(), 0);
    }

    #[test]
    fn finished_operators_accumulate_tuple_counts() {
        let registry = Arc::new(Registry::new());
        let sink = MetricsSink::new(Arc::clone(&registry), "once");
        sink.set_op_names(vec!["scan(nation)".into(), "hash_join".into()]);
        publish_all(
            &sink,
            &[
                TraceEventKind::OperatorFinished { op: 0, emitted: 25 },
                TraceEventKind::OperatorFinished {
                    op: 1,
                    emitted: 500,
                },
            ],
        );
        let text = registry.render();
        assert!(text.contains("qprog_operator_tuples_total{estimator=\"once\"} 525"));
        assert!(text.contains("qprog_operator_emitted_total{op=\"hash_join\"} 500"));
        assert!(text.contains("qprog_operator_emitted_total{op=\"scan(nation)\"} 25"));
    }

    #[test]
    fn aborts_and_degradations_are_counted_by_reason() {
        use qprog_exec::trace::{AbortKind, DegradeReason};
        let registry = Arc::new(Registry::new());
        let sink = MetricsSink::new(Arc::clone(&registry), "once");
        publish_all(
            &sink,
            &[
                TraceEventKind::QueryAborted {
                    reason: AbortKind::Cancelled,
                    rows: 10,
                },
                TraceEventKind::QueryAborted {
                    reason: AbortKind::OperatorPanic,
                    rows: 0,
                },
                TraceEventKind::EstimatorDegraded {
                    op: 1,
                    reason: DegradeReason::HistogramMemory,
                },
            ],
        );
        let text = registry.render();
        assert!(
            text.contains("qprog_queries_failed_total{estimator=\"once\",reason=\"cancelled\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("qprog_queries_failed_total{estimator=\"once\",reason=\"panic\"} 1"),
            "{text}"
        );
        assert!(
            text.contains(
                "qprog_estimator_degraded_total{estimator=\"once\",\
                 reason=\"histogram_memory\"} 1"
            ),
            "{text}"
        );
        assert!(text.contains("qprog_trace_events_total{event=\"query_aborted\"} 2"));
        // aborted queries are not "finished"
        assert!(!text.contains("qprog_queries_finished_total{estimator=\"once\"} 1"));
    }

    #[test]
    fn worker_wall_time_resolves_lazily() {
        let registry = Arc::new(Registry::new());
        let sink = MetricsSink::new(Arc::clone(&registry), "once");
        sink.set_op_names(vec!["hash_join".into()]);
        // A serial query publishes no worker events → no parallel series.
        let before = registry.render();
        assert!(!before.contains("worker"), "{before}");
        publish_all(
            &sink,
            &[
                TraceEventKind::WorkerWallTime {
                    op: 0,
                    worker: 0,
                    busy_us: 1500,
                },
                TraceEventKind::WorkerWallTime {
                    op: 0,
                    worker: 1,
                    busy_us: 2500,
                },
            ],
        );
        let text = registry.render();
        assert!(
            text.contains("qprog_trace_events_total{event=\"worker_wall_time\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("qprog_worker_busy_us{op=\"hash_join\",worker=\"0\"} 1500"),
            "{text}"
        );
        assert!(
            text.contains("qprog_worker_busy_us{op=\"hash_join\",worker=\"1\"} 2500"),
            "{text}"
        );
    }

    #[test]
    fn health_transitions_resolve_lazily() {
        use qprog_exec::trace::{HealthReason, HealthState};
        let registry = Arc::new(Registry::new());
        let sink = MetricsSink::new(Arc::clone(&registry), "once");
        // No analyzer attached → no health series in the exposition.
        let before = registry.render();
        assert!(!before.contains("health"), "{before}");
        publish_all(
            &sink,
            &[
                TraceEventKind::HealthTransition {
                    from: HealthState::Healthy,
                    to: HealthState::Stalled,
                    reason: HealthReason::Stall,
                },
                TraceEventKind::HealthTransition {
                    from: HealthState::Stalled,
                    to: HealthState::Healthy,
                    reason: HealthReason::Recovered,
                },
            ],
        );
        let text = registry.render();
        assert!(
            text.contains("qprog_trace_events_total{event=\"health_transition\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("qprog_health_transitions_total{reason=\"stall\",state=\"stalled\"} 1")
                || text.contains(
                    "qprog_health_transitions_total{state=\"stalled\",reason=\"stall\"} 1"
                ),
            "{text}"
        );
    }

    #[test]
    fn regressions_resolve_lazily() {
        use qprog_exec::trace::RegressionKind;
        let registry = Arc::new(Registry::new());
        let sink = MetricsSink::new(Arc::clone(&registry), "once");
        // No corpus attached → no regression series in the exposition.
        let before = registry.render();
        assert!(!before.contains("regression"), "{before}");
        publish_all(
            &sink,
            &[
                TraceEventKind::RegressionDetected {
                    kind: RegressionKind::MeanAbsErr,
                    observed: 0.3,
                    baseline: 0.02,
                    threshold: 0.05,
                },
                TraceEventKind::RegressionDetected {
                    kind: RegressionKind::WallTime,
                    observed: 9e6,
                    baseline: 1e6,
                    threshold: 2e6,
                },
            ],
        );
        let text = registry.render();
        assert!(
            text.contains("qprog_trace_events_total{event=\"regression_detected\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("qprog_regressions_total{kind=\"mean_abs_err\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("qprog_regressions_total{kind=\"wall_time\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn two_sinks_aggregate_into_one_registry() {
        let registry = Arc::new(Registry::new());
        let a = Arc::new(MetricsSink::new(Arc::clone(&registry), "once"));
        let b = Arc::new(MetricsSink::new(Arc::clone(&registry), "once"));
        let bus_a = EventBus::with_sink(Arc::clone(&a) as _);
        let bus_b = EventBus::with_sink(Arc::clone(&b) as _);
        bus_a.publish(TraceEventKind::QueryFinished { rows: 1 });
        bus_b.publish(TraceEventKind::QueryFinished { rows: 2 });
        let text = registry.render();
        assert!(text.contains("qprog_queries_finished_total{estimator=\"once\"} 2"));
        assert!(text.contains("qprog_query_rows_total{estimator=\"once\"} 3"));
    }
}
