//! Trace sinks: bounded in-memory ring, JSONL writer, stderr logger, and
//! a debug-mode progress-sanity validator.
//!
//! Sinks implement [`TraceSink`] and run synchronously on the publishing
//! (query) thread, so each is written to be cheap: the ring sink is
//! lock-free, the JSONL/stderr sinks take a short mutex only at actual
//! event boundaries (phase transitions and material estimate refinements —
//! never per tuple).

use std::cell::UnsafeCell;
use std::io::Write;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use qprog_exec::sync::Mutex;
use qprog_exec::trace::{EstimateSource, Phase, TraceEvent, TraceEventKind, TraceSink};

/// One slot of the ring: a sequence stamp plus storage for an event.
struct Slot {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<TraceEvent>>,
}

/// A lock-free bounded MPMC ring buffer of trace events (Vyukov's bounded
/// queue). Producers never block: when the ring is full the event is
/// dropped and counted, so a stalled or absent consumer can never slow the
/// query down. `TraceEvent` is `Copy`, so slots need no destructors.
pub struct RingSink {
    slots: Box<[Slot]>,
    mask: usize,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
    delivered: AtomicU64,
    dropped: AtomicU64,
}

// SAFETY: slot contents are only accessed by the producer/consumer that
// won the corresponding sequence handshake (the Vyukov protocol below).
unsafe impl Send for RingSink {}
unsafe impl Sync for RingSink {}

impl RingSink {
    /// A ring holding at least `capacity` events (rounded up to a power of
    /// two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Box<[Slot]> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        RingSink {
            slots,
            mask: cap - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events successfully buffered (delivered to the ring).
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Try to enqueue; `false` means the ring was full.
    fn try_push(&self, event: TraceEvent) -> bool {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            match (seq as isize).wrapping_sub(pos as isize) {
                0 => {
                    match self.enqueue_pos.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the CAS gives this thread exclusive
                            // write access to the slot until the Release
                            // store below hands it to a consumer.
                            unsafe { (*slot.value.get()).write(event) };
                            slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                            return true;
                        }
                        Err(p) => pos = p,
                    }
                }
                d if d < 0 => return false, // full
                _ => pos = self.enqueue_pos.load(Ordering::Relaxed),
            }
        }
    }

    /// Pop the oldest event, if any.
    pub fn try_pop(&self) -> Option<TraceEvent> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            match (seq as isize).wrapping_sub(pos.wrapping_add(1) as isize) {
                0 => {
                    match self.dequeue_pos.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the CAS gives this thread exclusive
                            // read access; the slot was initialized by the
                            // producer that published `seq`.
                            let event = unsafe { (*slot.value.get()).assume_init() };
                            slot.seq
                                .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                            return Some(event);
                        }
                        Err(p) => pos = p,
                    }
                }
                d if d < 0 => return None, // empty
                _ => pos = self.dequeue_pos.load(Ordering::Relaxed),
            }
        }
    }

    /// Drain everything currently buffered, in publication order.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        while let Some(e) = self.try_pop() {
            out.push(e);
        }
        out
    }
}

impl TraceSink for RingSink {
    fn publish(&self, event: &TraceEvent) {
        if self.try_push(*event) {
            self.delivered.fetch_add(1, Ordering::Relaxed);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for RingSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingSink")
            .field("capacity", &self.capacity())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// Streams each event as one JSON object per line to any writer (a file
/// for post-hoc analysis, a pipe to a live dashboard, ...). Operator
/// indices are annotated with registry names when provided.
pub struct JsonlSink<W: Write + Send> {
    inner: Mutex<JsonlInner<W>>,
    op_names: Vec<String>,
    delivered: AtomicU64,
    dropped: AtomicU64,
}

/// Writer plus a reusable line buffer, so the per-event hot path encodes
/// into pre-owned capacity instead of allocating a fresh line.
struct JsonlInner<W> {
    writer: W,
    line: String,
}

impl<W: Write + Send> JsonlSink<W> {
    /// A sink writing bare operator indices.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            inner: Mutex::new(JsonlInner {
                writer,
                line: String::with_capacity(128),
            }),
            op_names: Vec::new(),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Events written out successfully.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Events lost to writer IO errors (trace output is advisory; the
    /// query is never failed, but the loss is counted).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Annotate operator indices with their registry names.
    pub fn with_op_names(mut self, names: Vec<String>) -> Self {
        self.op_names = names;
        self
    }

    /// Recover the writer (e.g. to read back an in-memory buffer).
    pub fn into_inner(self) -> W {
        self.inner.into_inner().writer
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn publish(&self, event: &TraceEvent) {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        inner.line.clear();
        crate::json::write_event_json(&mut inner.line, event, &self.op_names);
        inner.line.push('\n');
        // Trace output is advisory: an unwritable sink must not fail the
        // query, so IO errors are swallowed (but counted). Flushed per line
        // so the file can be tailed live.
        if inner.writer.write_all(inner.line.as_bytes()).is_ok() {
            self.delivered.fetch_add(1, Ordering::Relaxed);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let _ = inner.writer.flush();
    }
}

/// Logs each event as a human-readable line on stderr (handy for quick
/// debugging without a file in the loop).
#[derive(Debug, Default)]
pub struct StderrSink;

impl TraceSink for StderrSink {
    fn publish(&self, event: &TraceEvent) {
        eprintln!(
            "[trace +{:>8}us #{}] {:?}",
            event.at_us, event.seq, event.kind
        );
    }
}

/// Per-operator state the validator tracks.
#[derive(Debug, Default, Clone)]
struct OpValidation {
    phase: Option<Phase>,
    last_estimate: Option<f64>,
    last_bounds: Option<(f64, f64)>,
    exact: Option<f64>,
    finished: Option<u64>,
}

/// A debug-mode sanity validator: checks the event stream against the
/// progress model's invariants and records violations as strings instead
/// of panicking (tracing must never take a query down).
///
/// Checked invariants:
///
/// - event sequence numbers are unique (arrival order is NOT required to
///   be sorted: several threads may publish concurrently);
/// - phase transitions chain (each `from` equals the op's previous `to`,
///   starting from `Init`);
/// - estimates are non-negative and finite after the first publication;
/// - published bounds satisfy `lo ≤ hi`;
/// - an `Exact` refinement matches the `emitted` count of the operator's
///   subsequent `OperatorFinished`;
/// - the final exact count lies within the operator's last published
///   confidence bounds (a statistical check: the paper's intervals hold
///   with confidence `1 − α`, so rare violations here are expected noise,
///   frequent ones are bugs).
///
/// Whole-query *fraction* monotonicity is a timeline property, checked by
/// [`ProgressLog::monotonicity_violations`](crate::timeline::ProgressLog::monotonicity_violations).
#[derive(Debug, Default)]
pub struct ValidatorSink {
    state: Mutex<ValidatorState>,
}

#[derive(Debug, Default)]
struct ValidatorState {
    ops: Vec<OpValidation>,
    violations: Vec<String>,
    seen_seqs: std::collections::HashSet<u64>,
}

impl ValidatorState {
    fn op(&mut self, op: u32) -> &mut OpValidation {
        let idx = op as usize;
        if self.ops.len() <= idx {
            self.ops.resize(idx + 1, OpValidation::default());
        }
        &mut self.ops[idx]
    }
}

impl ValidatorSink {
    /// A fresh validator.
    pub fn new() -> Self {
        ValidatorSink::default()
    }

    /// All violations observed so far.
    pub fn violations(&self) -> Vec<String> {
        self.state.lock().violations.clone()
    }

    /// `true` when no invariant has been violated.
    pub fn is_clean(&self) -> bool {
        self.state.lock().violations.is_empty()
    }
}

impl TraceSink for ValidatorSink {
    fn publish(&self, event: &TraceEvent) {
        let mut s = self.state.lock();
        // Sequence numbers are allocated atomically per bus, so each must
        // reach the sink exactly once. Arrival ORDER is not checked: with
        // several publishing threads (query + monitor) interleaving between
        // `fetch_add` and fan-out is legal.
        if !s.seen_seqs.insert(event.seq) {
            s.violations
                .push(format!("duplicate event seq {}", event.seq));
        }
        match event.kind {
            TraceEventKind::PhaseTransition { op, from, to } => {
                let o = s.op(op);
                let expected = o.phase.unwrap_or(Phase::Init);
                let bad = from != expected;
                o.phase = Some(to);
                if bad {
                    s.violations.push(format!(
                        "op {op}: phase transition {from}→{to} but operator was in {expected}"
                    ));
                }
            }
            TraceEventKind::EstimateRefined {
                op, new, source, ..
            } => {
                let mut bad = Vec::new();
                {
                    let o = s.op(op);
                    if !new.is_finite() || new < 0.0 {
                        bad.push(format!("op {op}: non-finite/negative estimate {new}"));
                    }
                    o.last_estimate = Some(new);
                    if source == EstimateSource::Exact {
                        o.exact = Some(new);
                        if let Some((lo, hi)) = o.last_bounds {
                            // Point bounds (lo == hi) pin an exact value and
                            // must hold; statistical intervals may rarely miss.
                            if new < lo - 0.5 || new > hi + 0.5 {
                                bad.push(format!(
                                    "op {op}: exact count {new} outside last bounds [{lo}, {hi}]"
                                ));
                            }
                        }
                    }
                }
                s.violations.extend(bad);
            }
            TraceEventKind::BoundsRefined { op, lo, hi } => {
                let o = s.op(op);
                o.last_bounds = Some((lo, hi));
                // NaN endpoints are as invalid as an inverted interval.
                if lo > hi || lo.is_nan() || hi.is_nan() {
                    s.violations
                        .push(format!("op {op}: invalid bounds lo={lo}, hi={hi}"));
                }
            }
            TraceEventKind::OperatorFinished { op, emitted } => {
                let o = s.op(op);
                o.finished = Some(emitted);
                let exact = o.exact;
                if let Some(exact) = exact {
                    if (exact - emitted as f64).abs() > 0.5 {
                        s.violations.push(format!(
                            "op {op}: finished with {emitted} rows but exact estimate was {exact}"
                        ));
                    }
                }
            }
            TraceEventKind::ProgressSampled { fraction, .. } => {
                // gnm fractions are clamped to [0, 1] by construction.
                if !(0.0..=1.0).contains(&fraction) && !fraction.is_nan() {
                    s.violations.push(format!(
                        "progress sample fraction {fraction} outside [0, 1]"
                    ));
                }
            }
            TraceEventKind::HealthTransition { from, to, .. } => {
                // A transition must actually change the verdict.
                if from == to {
                    s.violations
                        .push(format!("health transition {from}→{to} changes nothing"));
                }
            }
            TraceEventKind::RegressionDetected {
                kind,
                observed,
                threshold,
                ..
            } => {
                // A detection asserts the observation crossed its threshold;
                // NaN endpoints (unknown baseline) are exempt.
                if observed.is_finite() && threshold.is_finite() && observed <= threshold {
                    s.violations.push(format!(
                        "{kind} regression reported but observed {observed} <= threshold {threshold}"
                    ));
                }
            }
            TraceEventKind::SpanStart { span, parent, .. } => {
                // A span cannot be its own ancestor; deeper tree invariants
                // (nesting, tiling) are checked at assembly time.
                if span == parent {
                    s.violations.push(format!("span {span} is its own parent"));
                }
            }
            TraceEventKind::PipelineStarted { .. }
            | TraceEventKind::PipelineFinished { .. }
            | TraceEventKind::QueryFinished { .. }
            | TraceEventKind::QueryAborted { .. }
            | TraceEventKind::EstimatorDegraded { .. }
            | TraceEventKind::OperatorWallTime { .. }
            | TraceEventKind::WorkerWallTime { .. }
            | TraceEventKind::SpanEnd { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(seq: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            seq,
            at_us: seq,
            kind,
        }
    }

    #[test]
    fn ring_preserves_fifo_order() {
        let ring = RingSink::with_capacity(8);
        for i in 0..5 {
            ring.publish(&ev(i, TraceEventKind::QueryFinished { rows: i }));
        }
        let drained = ring.drain();
        assert_eq!(drained.len(), 5);
        assert!(drained.iter().enumerate().all(|(i, e)| e.seq == i as u64));
        assert_eq!(ring.delivered(), 5);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn ring_drops_on_overflow_and_counts() {
        let ring = RingSink::with_capacity(4); // rounds to 4
        for i in 0..10 {
            ring.publish(&ev(i, TraceEventKind::QueryFinished { rows: i }));
        }
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.delivered(), 4);
        // the *oldest* events survive (drop-newest keeps a coherent prefix)
        let drained = ring.drain();
        assert_eq!(
            drained.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        // after draining there is room again
        ring.publish(&ev(10, TraceEventKind::QueryFinished { rows: 10 }));
        assert_eq!(ring.drain().len(), 1);
    }

    #[test]
    fn ring_survives_concurrent_producers() {
        let ring = Arc::new(RingSink::with_capacity(1024));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        ring.publish(&ev(t * 1000 + i, TraceEventKind::QueryFinished { rows: i }));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.drain().len(), 800);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let sink = JsonlSink::new(Vec::new()).with_op_names(vec!["scan".into()]);
        sink.publish(&ev(
            0,
            TraceEventKind::OperatorFinished { op: 0, emitted: 9 },
        ));
        sink.publish(&ev(1, TraceEventKind::QueryFinished { rows: 9 }));
        assert_eq!(sink.delivered(), 2);
        assert_eq!(sink.dropped(), 0);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"op_name\":\"scan\""));
        assert!(lines[1].contains("\"event\":\"query_finished\""));
    }

    #[test]
    fn validator_accepts_a_clean_stream() {
        use qprog_exec::trace::EstimateSource::*;
        let v = ValidatorSink::new();
        let events = [
            TraceEventKind::EstimateRefined {
                op: 0,
                old: f64::NAN,
                new: 100.0,
                source: Optimizer,
            },
            TraceEventKind::PhaseTransition {
                op: 0,
                from: Phase::Init,
                to: Phase::Build,
            },
            TraceEventKind::PhaseTransition {
                op: 0,
                from: Phase::Build,
                to: Phase::Probe,
            },
            TraceEventKind::EstimateRefined {
                op: 0,
                old: 100.0,
                new: 120.0,
                source: Online,
            },
            TraceEventKind::BoundsRefined {
                op: 0,
                lo: 110.0,
                hi: 130.0,
            },
            TraceEventKind::EstimateRefined {
                op: 0,
                old: 120.0,
                new: 121.0,
                source: Exact,
            },
            TraceEventKind::OperatorFinished {
                op: 0,
                emitted: 121,
            },
            TraceEventKind::QueryFinished { rows: 121 },
        ];
        for (i, k) in events.into_iter().enumerate() {
            v.publish(&ev(i as u64, k));
        }
        assert!(v.is_clean(), "{:?}", v.violations());
    }

    #[test]
    fn validator_flags_bad_streams() {
        use qprog_exec::trace::EstimateSource::*;
        let v = ValidatorSink::new();
        // probe before build
        v.publish(&ev(
            0,
            TraceEventKind::PhaseTransition {
                op: 0,
                from: Phase::Build,
                to: Phase::Probe,
            },
        ));
        // inverted bounds
        v.publish(&ev(
            1,
            TraceEventKind::BoundsRefined {
                op: 1,
                lo: 10.0,
                hi: 5.0,
            },
        ));
        // exact that contradicts the finished count
        v.publish(&ev(
            2,
            TraceEventKind::EstimateRefined {
                op: 2,
                old: 5.0,
                new: 50.0,
                source: Exact,
            },
        ));
        v.publish(&ev(
            3,
            TraceEventKind::OperatorFinished { op: 2, emitted: 7 },
        ));
        let violations = v.violations();
        assert_eq!(violations.len(), 3, "{violations:?}");
    }
}
