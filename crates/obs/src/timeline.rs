//! Progress timelines: periodic sampling of a running query's gnm state.
//!
//! A [`TimelineRecorder`] polls a query's
//! [`ProgressTracker`](qprog_plan::ProgressTracker) — from the same thread
//! between batches, or from a dedicated monitor thread via
//! [`TimelineRecorder::spawn`] — capturing a [`TimelinePoint`] per sample:
//! the whole-query gnm fraction with its confidence bounds plus every
//! operator's `(K_i, N_i, lo_i, hi_i)` trajectory. The finished
//! [`ProgressLog`] exports as CSV or JSON for plotting (the paper's Figs.
//! 2–7 are exactly such trajectories).
//!
//! Sampling is entirely observer-side: the query thread never blocks on
//! the recorder. When a trace bus is attached, the recorder also publishes
//! `PipelineStarted` / `PipelineFinished` events as it observes pipeline
//! state changes (accurate to the sampling cadence, as documented on the
//! event).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qprog_core::gnm::PipelineState;
use qprog_exec::trace::{EventBus, TraceEventKind};
use qprog_plan::ProgressTracker;

use crate::json::num;

/// One operator's state at a sample instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpPoint {
    /// `K_i`: `getnext()` calls answered so far.
    pub emitted: u64,
    /// Driver (input) tuples consumed so far.
    pub driver_consumed: u64,
    /// Current `N_i` estimate.
    pub estimate: f64,
    /// Confidence bounds on `N_i`, when the estimator publishes them.
    pub bounds: Option<(f64, f64)>,
    /// Whether the operator has finished (`N_i` exact).
    pub finished: bool,
}

/// One whole-query sample.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelinePoint {
    /// Microseconds since recording started (or since the trace bus epoch,
    /// when one is attached).
    pub at_us: u64,
    /// gnm progress fraction `K/N`.
    pub fraction: f64,
    /// Lower confidence bound on the fraction.
    pub lo: f64,
    /// Upper confidence bound on the fraction.
    pub hi: f64,
    /// Total `getnext()` calls so far (`K`).
    pub current: u64,
    /// Total estimated lifetime `getnext()` calls (`N`).
    pub total: f64,
    /// Per-operator state, in registry order.
    pub ops: Vec<OpPoint>,
}

/// A recorded progress timeline.
#[derive(Debug, Clone, Default)]
pub struct ProgressLog {
    op_names: Vec<String>,
    points: Vec<TimelinePoint>,
}

impl ProgressLog {
    /// Operator names, in registry order (column identity for
    /// [`to_csv`](Self::to_csv)).
    pub fn op_names(&self) -> &[String] {
        &self.op_names
    }

    /// The samples, in time order.
    pub fn points(&self) -> &[TimelinePoint] {
        &self.points
    }

    /// Number of samples taken.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no samples were taken.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Count of adjacent samples where the progress fraction *decreased*
    /// by more than `tolerance` — the timeline half of the progress-sanity
    /// validation (estimate refinements may wobble the fraction slightly;
    /// sustained regressions indicate an estimator bug).
    pub fn monotonicity_violations(&self, tolerance: f64) -> usize {
        self.points
            .windows(2)
            .filter(|w| w[1].fraction < w[0].fraction - tolerance)
            .count()
    }

    /// CSV export: one row per sample with whole-query columns followed by
    /// `emitted`/`estimate` pairs per operator.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("at_us,fraction,lo,hi,current,total");
        for name in &self.op_names {
            let clean = name.replace(',', ";");
            out.push_str(&format!(",{clean}.k,{clean}.n"));
        }
        out.push('\n');
        for p in &self.points {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6},{},{:.1}",
                p.at_us, p.fraction, p.lo, p.hi, p.current, p.total
            ));
            for op in &p.ops {
                out.push_str(&format!(",{},{:.1}", op.emitted, op.estimate));
            }
            out.push('\n');
        }
        out
    }

    /// JSON export: `{"ops": [names], "points": [{...}]}`.
    pub fn to_json(&self) -> String {
        let names: Vec<String> = self
            .op_names
            .iter()
            .map(|n| format!("\"{}\"", crate::json::escape(n)))
            .collect();
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                let ops: Vec<String> = p
                    .ops
                    .iter()
                    .map(|o| {
                        let bounds = match o.bounds {
                            Some((lo, hi)) => format!("[{},{}]", num(lo), num(hi)),
                            None => "null".to_string(),
                        };
                        format!(
                            "{{\"k\":{},\"driver\":{},\"n\":{},\"bounds\":{},\"finished\":{}}}",
                            o.emitted,
                            o.driver_consumed,
                            num(o.estimate),
                            bounds,
                            o.finished
                        )
                    })
                    .collect();
                format!(
                    "{{\"at_us\":{},\"fraction\":{},\"lo\":{},\"hi\":{},\"current\":{},\"total\":{},\"ops\":[{}]}}",
                    p.at_us,
                    num(p.fraction),
                    num(p.lo),
                    num(p.hi),
                    p.current,
                    num(p.total),
                    ops.join(",")
                )
            })
            .collect();
        format!(
            "{{\"ops\":[{}],\"points\":[{}]}}",
            names.join(","),
            points.join(",")
        )
    }
}

/// Samples a [`ProgressTracker`] into a [`ProgressLog`].
pub struct TimelineRecorder {
    tracker: ProgressTracker,
    bus: Option<Arc<EventBus>>,
    epoch: Instant,
    log: ProgressLog,
    /// Last observed per-pipeline state, for start/finish event edges.
    pipeline_states: Vec<PipelineState>,
    /// Running max of the published fraction: reported progress is clamped
    /// monotone at this layer while the raw (possibly wobbling) estimates
    /// stay visible in `EstimateRefined` events and per-op trajectories.
    max_fraction: f64,
}

impl TimelineRecorder {
    /// A recorder over `tracker` (same-thread sampling via
    /// [`sample`](Self::sample)).
    pub fn new(tracker: ProgressTracker) -> Self {
        let op_names: Vec<String> = tracker
            .registry()
            .iter()
            .map(|(n, _)| n.to_string())
            .collect();
        TimelineRecorder {
            tracker,
            bus: None,
            epoch: Instant::now(),
            log: ProgressLog {
                op_names,
                points: Vec::new(),
            },
            pipeline_states: Vec::new(),
            max_fraction: 0.0,
        }
    }

    /// Publish `PipelineStarted`/`PipelineFinished` edges to `bus` as the
    /// recorder observes pipeline state changes, and timestamp samples
    /// against the bus epoch.
    pub fn with_bus(mut self, bus: Arc<EventBus>) -> Self {
        self.epoch = bus.epoch();
        self.bus = Some(bus);
        self
    }

    /// Take one sample now.
    pub fn sample(&mut self) {
        let at_us = self.epoch.elapsed().as_micros() as u64;
        let snapshot = self.tracker.snapshot();
        let (lo, hi) = self.tracker.fraction_bounds();
        let ops: Vec<OpPoint> = self
            .tracker
            .registry()
            .iter()
            .map(|(_, m)| OpPoint {
                emitted: m.emitted(),
                driver_consumed: m.driver_consumed(),
                estimate: m.estimated_total(),
                bounds: m.estimated_bounds(),
                finished: m.is_finished(),
            })
            .collect();

        // Pipeline lifecycle edges (observer-derived).
        for p in snapshot.pipelines() {
            if self.pipeline_states.len() <= p.id {
                self.pipeline_states
                    .resize(p.id + 1, PipelineState::Pending);
            }
            let prev = self.pipeline_states[p.id];
            if prev != p.state {
                self.pipeline_states[p.id] = p.state;
                if let Some(bus) = &self.bus {
                    let id = p.id as u32;
                    match (prev, p.state) {
                        (PipelineState::Pending, PipelineState::Running) => {
                            bus.publish(TraceEventKind::PipelineStarted { pipeline: id });
                        }
                        (PipelineState::Pending, PipelineState::Finished) => {
                            // ran to completion between two samples
                            bus.publish(TraceEventKind::PipelineStarted { pipeline: id });
                            bus.publish(TraceEventKind::PipelineFinished { pipeline: id });
                        }
                        (PipelineState::Running, PipelineState::Finished) => {
                            bus.publish(TraceEventKind::PipelineFinished { pipeline: id });
                        }
                        _ => {}
                    }
                }
            }
        }

        // Published progress is clamped to its running max: estimate
        // refinements may shrink `ΣN_i` and wobble the raw fraction
        // backwards, but a user-facing indicator must never retreat. The
        // raw values stay in the trace via `EstimateRefined` / per-op
        // trajectories.
        let raw = snapshot.fraction();
        if raw.is_finite() && raw > self.max_fraction {
            self.max_fraction = raw;
        }
        let fraction = self.max_fraction;
        // Keep the published interval consistent with the clamped point.
        let hi = if hi.is_finite() { hi.max(fraction) } else { hi };

        // A sampled gnm snapshot in the trace itself makes the recorded
        // JSONL self-sufficient for post-hoc quality scoring (replay needs
        // no live tracker).
        if let Some(bus) = &self.bus {
            bus.publish(TraceEventKind::ProgressSampled {
                current: snapshot.current(),
                total: snapshot.total(),
                fraction,
                lo,
                hi,
            });
        }

        self.log.points.push(TimelinePoint {
            at_us,
            fraction,
            lo,
            hi,
            current: snapshot.current(),
            total: snapshot.total(),
            ops,
        });
    }

    /// Whether the tracked query has finished (all pipelines complete).
    pub fn is_complete(&self) -> bool {
        self.tracker.snapshot().is_complete()
    }

    /// Finish recording and return the log.
    pub fn into_log(self) -> ProgressLog {
        self.log
    }

    /// The log so far.
    pub fn log(&self) -> &ProgressLog {
        &self.log
    }

    /// Spawn a monitor thread sampling every `cadence` until
    /// [`RecorderHandle::finish`] is called (a final sample is always taken
    /// at finish, so the terminal state is captured) or the handle is
    /// dropped (which stops and joins the thread, discarding the log).
    pub fn spawn(self, cadence: Duration) -> RecorderHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let mut recorder = self;
        let join = std::thread::Builder::new()
            .name("qprog-timeline".to_string())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    recorder.sample();
                    // Sleep in short slices so a stop request (finish or
                    // drop) is honored promptly even at long cadences.
                    let mut remaining = cadence;
                    while !stop2.load(Ordering::Relaxed) && remaining > Duration::ZERO {
                        let slice = remaining.min(Duration::from_millis(5));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
                recorder.sample();
                recorder
            })
            .expect("spawn timeline monitor thread");
        RecorderHandle {
            stop,
            join: Some(join),
        }
    }
}

/// Handle to a recorder running on a monitor thread.
///
/// The thread never outlives the handle: [`finish`](Self::finish) stops and
/// joins it, returning the log, and dropping the handle without finishing
/// does the same join (discarding the log) — no sampler is left spinning
/// against a dead query.
pub struct RecorderHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<TimelineRecorder>>,
}

impl RecorderHandle {
    /// Stop the monitor thread, take a final sample, and return the log.
    pub fn finish(mut self) -> ProgressLog {
        self.stop_and_join()
            .map(TimelineRecorder::into_log)
            .unwrap_or_default()
    }

    fn stop_and_join(&mut self) -> Option<TimelineRecorder> {
        let join = self.join.take()?;
        self.stop.store(true, Ordering::Relaxed);
        join.join().ok()
    }
}

impl Drop for RecorderHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qprog_exec::metrics::MetricsRegistry;
    use qprog_exec::sync::Mutex;
    use qprog_exec::trace::{EventBus, TraceEvent, TraceSink};
    use qprog_plan::pipeline::PipelineSet;

    fn two_op_tracker() -> (ProgressTracker, MetricsRegistry) {
        let mut reg = MetricsRegistry::new();
        reg.register("scan", 100.0);
        reg.register("join", 300.0);
        let mut pipes = PipelineSet::new();
        let p0 = pipes.new_pipeline();
        let p1 = pipes.new_pipeline();
        pipes.assign(p0, 0);
        pipes.assign(p1, 1);
        let tracker = ProgressTracker::new(reg.clone(), pipes);
        (tracker, reg)
    }

    #[test]
    fn samples_capture_per_op_trajectories() {
        let (tracker, reg) = two_op_tracker();
        let mut rec = TimelineRecorder::new(tracker);
        rec.sample();
        let scan = reg.get(0).unwrap();
        for _ in 0..60 {
            scan.record_emitted();
        }
        scan.set_estimated_total(120.0);
        rec.sample();
        let log = rec.into_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log.op_names(), &["scan".to_string(), "join".to_string()]);
        assert_eq!(log.points()[0].ops[0].emitted, 0);
        assert_eq!(log.points()[1].ops[0].emitted, 60);
        assert_eq!(log.points()[1].ops[0].estimate, 120.0);
        assert!(log.points()[1].fraction > log.points()[0].fraction);
        assert!(log.points().windows(2).all(|w| w[0].at_us <= w[1].at_us));
    }

    #[test]
    fn csv_and_json_exports_are_well_formed() {
        let (tracker, reg) = two_op_tracker();
        let mut rec = TimelineRecorder::new(tracker);
        reg.get(0).unwrap().record_emitted();
        rec.sample();
        let log = rec.into_log();
        let csv = log.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(
            header,
            "at_us,fraction,lo,hi,current,total,scan.k,scan.n,join.k,join.n"
        );
        let row = lines.next().unwrap();
        assert_eq!(row.split(',').count(), header.split(',').count());
        let json = log.to_json();
        assert!(json.starts_with("{\"ops\":[\"scan\",\"join\"]"));
        assert!(json.contains("\"points\":[{"));
    }

    #[test]
    fn monotonicity_check_counts_regressions() {
        let mut log = ProgressLog::default();
        for f in [0.1, 0.3, 0.2, 0.4, 0.39999] {
            log.points.push(TimelinePoint {
                at_us: 0,
                fraction: f,
                lo: f,
                hi: f,
                current: 0,
                total: 0.0,
                ops: Vec::new(),
            });
        }
        assert_eq!(log.monotonicity_violations(0.01), 1);
        assert_eq!(log.monotonicity_violations(0.0), 2);
    }

    #[test]
    fn published_fraction_is_clamped_monotone() {
        let (tracker, reg) = two_op_tracker();
        let mut rec = TimelineRecorder::new(tracker);
        let scan = reg.get(0).unwrap();
        for _ in 0..60 {
            scan.record_emitted();
        }
        rec.sample();
        let before = rec.log().points().last().unwrap().fraction;
        assert!(before > 0.0);
        // An upward estimate revision shrinks the raw fraction...
        scan.set_estimated_total(10_000.0);
        rec.sample();
        let log = rec.into_log();
        let after = log.points().last().unwrap();
        // ...but the published fraction holds its running max, with the
        // interval kept consistent.
        assert_eq!(after.fraction, before);
        assert!(!after.hi.is_finite() || after.hi >= after.fraction);
        assert_eq!(log.monotonicity_violations(0.0), 0);
    }

    #[test]
    fn pipeline_edges_are_published_once() {
        struct Collect(Mutex<Vec<TraceEvent>>);
        impl TraceSink for Collect {
            fn publish(&self, e: &TraceEvent) {
                self.0.lock().push(*e);
            }
        }
        let sink = Arc::new(Collect(Mutex::new(Vec::new())));
        let bus = EventBus::with_sink(Arc::clone(&sink) as _);
        let (tracker, reg) = two_op_tracker();
        let mut rec = TimelineRecorder::new(tracker).with_bus(bus);
        rec.sample(); // both pending: no events
        let scan = reg.get(0).unwrap();
        scan.record_emitted();
        rec.sample(); // pipeline 0 running
        rec.sample(); // still running: no duplicate
        scan.mark_finished();
        rec.sample(); // pipeline 0 finished
        let all: Vec<_> = sink.0.lock().iter().map(|e| e.kind).collect();
        // every sample also publishes a gnm snapshot into the trace
        let samples = all
            .iter()
            .filter(|k| matches!(k, TraceEventKind::ProgressSampled { .. }))
            .count();
        assert_eq!(samples, 4);
        let edges: Vec<_> = all
            .into_iter()
            .filter(|k| !matches!(k, TraceEventKind::ProgressSampled { .. }))
            .collect();
        assert_eq!(
            edges,
            vec![
                TraceEventKind::PipelineStarted { pipeline: 0 },
                TraceEventKind::PipelineFinished { pipeline: 0 },
            ]
        );
    }

    #[test]
    fn spawned_recorder_collects_until_finish() {
        let (tracker, reg) = two_op_tracker();
        let handle = TimelineRecorder::new(tracker).spawn(Duration::from_millis(1));
        for _ in 0..50 {
            reg.get(0).unwrap().record_emitted();
            std::thread::sleep(Duration::from_millis(1));
        }
        reg.finish_all();
        let log = handle.finish();
        assert!(
            log.len() >= 2,
            "expected several samples, got {}",
            log.len()
        );
        let last = log.points().last().unwrap();
        assert_eq!(last.fraction, 1.0, "final sample sees the finished query");
    }

    #[test]
    fn dropping_the_handle_joins_the_sampler_thread_promptly() {
        // A long cadence would previously leave the thread asleep (and the
        // recorder alive) long after the handle was gone; the chunked sleep
        // plus Drop-join must reclaim it in well under one cadence.
        let bus = EventBus::builder().build();
        let (tracker, _reg) = two_op_tracker();
        let handle = TimelineRecorder::new(tracker)
            .with_bus(Arc::clone(&bus))
            .spawn(Duration::from_secs(60));
        let started = std::time::Instant::now();
        drop(handle);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "drop blocked for {:?} — stop not honored promptly",
            started.elapsed()
        );
        // The thread owned the recorder (and its bus clone); after the
        // join, ours is the only reference left.
        assert_eq!(
            Arc::strong_count(&bus),
            1,
            "sampler thread still holds the recorder after drop"
        );
    }
}
