//! Minimal hand-rolled JSON encoding for trace events and timelines.
//!
//! The workspace carries no external dependencies (no serde), and the
//! shapes encoded here are small and fixed, so a few helpers suffice.

use std::fmt::Write as _;

use qprog_exec::trace::{TraceEvent, TraceEventKind};

/// Escape a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A finite float as a JSON number; NaN/inf become `null` (JSON has no
/// representation for them).
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Encode one trace event as a single JSON object (no trailing newline).
/// When `op_names` is non-empty, operator indices are annotated with their
/// registry names.
pub fn event_to_json(event: &TraceEvent, op_names: &[String]) -> String {
    let mut out = String::with_capacity(96);
    write_event_json(&mut out, event, op_names);
    out
}

/// Append one event's JSON object to `out` (no trailing newline). The
/// streaming form the JSONL sink uses on its hot path: one pre-sized
/// buffer, no intermediate field allocations.
pub fn write_event_json(out: &mut String, event: &TraceEvent, op_names: &[String]) {
    let _ = write!(out, "{{\"seq\":{},\"at_us\":{}", event.seq, event.at_us);
    // A float field: finite values as numbers, NaN/inf as null.
    macro_rules! fnum {
        ($key:literal, $x:expr) => {
            if $x.is_finite() {
                let _ = write!(out, concat!(",\"", $key, "\":{}"), $x);
            } else {
                out.push_str(concat!(",\"", $key, "\":null"));
            }
        };
    }
    let op_field = |out: &mut String, op: u32| {
        let _ = write!(out, ",\"op\":{op}");
        if let Some(name) = op_names.get(op as usize) {
            // Registry names are plain identifiers; escape defensively but
            // skip the allocation when nothing needs it.
            if name
                .chars()
                .any(|c| c == '"' || c == '\\' || (c as u32) < 0x20)
            {
                let _ = write!(out, ",\"op_name\":\"{}\"", escape(name));
            } else {
                let _ = write!(out, ",\"op_name\":\"{name}\"");
            }
        }
    };
    match &event.kind {
        TraceEventKind::PipelineStarted { pipeline } => {
            let _ = write!(
                out,
                ",\"event\":\"pipeline_started\",\"pipeline\":{pipeline}"
            );
        }
        TraceEventKind::PipelineFinished { pipeline } => {
            let _ = write!(
                out,
                ",\"event\":\"pipeline_finished\",\"pipeline\":{pipeline}"
            );
        }
        TraceEventKind::PhaseTransition { op, from, to } => {
            out.push_str(",\"event\":\"phase_transition\"");
            op_field(out, *op);
            let _ = write!(out, ",\"from\":\"{from}\",\"to\":\"{to}\"");
        }
        TraceEventKind::EstimateRefined {
            op,
            old,
            new,
            source,
        } => {
            out.push_str(",\"event\":\"estimate_refined\"");
            op_field(out, *op);
            fnum!("old", *old);
            fnum!("new", *new);
            let _ = write!(out, ",\"source\":\"{source}\"");
        }
        TraceEventKind::BoundsRefined { op, lo, hi } => {
            out.push_str(",\"event\":\"bounds_refined\"");
            op_field(out, *op);
            fnum!("lo", *lo);
            fnum!("hi", *hi);
        }
        TraceEventKind::OperatorFinished { op, emitted } => {
            out.push_str(",\"event\":\"operator_finished\"");
            op_field(out, *op);
            let _ = write!(out, ",\"emitted\":{emitted}");
        }
        TraceEventKind::QueryFinished { rows } => {
            let _ = write!(out, ",\"event\":\"query_finished\",\"rows\":{rows}");
        }
        TraceEventKind::QueryAborted { reason, rows } => {
            let _ = write!(
                out,
                ",\"event\":\"query_aborted\",\"reason\":\"{reason}\",\"rows\":{rows}"
            );
        }
        TraceEventKind::EstimatorDegraded { op, reason } => {
            out.push_str(",\"event\":\"estimator_degraded\"");
            op_field(out, *op);
            let _ = write!(out, ",\"reason\":\"{reason}\"");
        }
        TraceEventKind::ProgressSampled {
            current,
            total,
            fraction,
            lo,
            hi,
        } => {
            let _ = write!(out, ",\"event\":\"progress_sampled\",\"current\":{current}");
            fnum!("total", *total);
            fnum!("fraction", *fraction);
            fnum!("lo", *lo);
            fnum!("hi", *hi);
        }
        TraceEventKind::OperatorWallTime { op, wall_us } => {
            out.push_str(",\"event\":\"operator_wall_time\"");
            op_field(out, *op);
            let _ = write!(out, ",\"wall_us\":{wall_us}");
        }
        TraceEventKind::WorkerWallTime {
            op,
            worker,
            busy_us,
        } => {
            out.push_str(",\"event\":\"worker_wall_time\"");
            op_field(out, *op);
            let _ = write!(out, ",\"worker\":{worker},\"busy_us\":{busy_us}");
        }
        TraceEventKind::HealthTransition { from, to, reason } => {
            let _ = write!(
                out,
                ",\"event\":\"health_transition\",\"from\":\"{from}\",\"to\":\"{to}\",\"reason\":\"{reason}\""
            );
        }
        TraceEventKind::RegressionDetected {
            kind,
            observed,
            baseline,
            threshold,
        } => {
            let _ = write!(
                out,
                ",\"event\":\"regression_detected\",\"kind\":\"{kind}\""
            );
            fnum!("observed", *observed);
            fnum!("baseline", *baseline);
            fnum!("threshold", *threshold);
        }
        TraceEventKind::SpanStart {
            span,
            parent,
            kind,
            arg,
        } => {
            let _ = write!(out, ",\"event\":\"span_start\",\"span\":{span}");
            // Root spans omit `parent` (the sentinel is an encoding detail).
            if *parent != qprog_exec::span::NO_PARENT {
                let _ = write!(out, ",\"parent\":{parent}");
            }
            let _ = write!(out, ",\"kind\":\"{kind}\",\"arg\":{arg}");
        }
        TraceEventKind::SpanEnd { span } => {
            let _ = write!(out, ",\"event\":\"span_end\",\"span\":{span}");
        }
    }
    out.push('}');
}

/// Extract a field's raw value text from a flat one-line JSON object
/// produced by [`event_to_json`] (enough for tests and examples to parse
/// traces back without a JSON parser). String values are returned as the
/// raw escaped text between the quotes — pass through [`unescape`] to
/// recover the original characters.
pub fn raw_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = if let Some(stripped) = rest.strip_prefix('"') {
        // String value: find the closing quote, skipping escaped ones. A
        // backslash always escapes exactly one following character in the
        // encoding `escape` produces.
        let bytes = stripped.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => return Some(&stripped[..i]),
                _ => i += 1,
            }
        }
        return None;
    } else {
        rest.find([',', '}']).unwrap_or(rest.len())
    };
    Some(&rest[..end])
}

/// Inverse of [`escape`]: decode a JSON string literal's body (the raw
/// escaped text [`raw_field`] returns for string values). Unknown escapes
/// and truncated `\u` sequences are passed through verbatim rather than
/// failing, matching the replay parser's tolerant posture.
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('/') => out.push('/'),
            Some('b') => out.push('\u{8}'),
            Some('f') => out.push('\u{c}'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                match (hex.len() == 4)
                    .then(|| u32::from_str_radix(&hex, 16).ok())
                    .flatten()
                    .and_then(char::from_u32)
                {
                    Some(decoded) => out.push(decoded),
                    None => {
                        out.push_str("\\u");
                        out.push_str(&hex);
                    }
                }
            }
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qprog_exec::trace::{EstimateSource, Phase};

    #[test]
    fn events_encode_round_trippably() {
        let e = TraceEvent {
            seq: 7,
            at_us: 1234,
            kind: TraceEventKind::EstimateRefined {
                op: 2,
                old: f64::NAN,
                new: 500.0,
                source: EstimateSource::Online,
            },
        };
        let names = vec![
            "scan".to_string(),
            "filter".to_string(),
            "hash_join".to_string(),
        ];
        let line = event_to_json(&e, &names);
        assert_eq!(raw_field(&line, "seq"), Some("7"));
        assert_eq!(raw_field(&line, "event"), Some("estimate_refined"));
        assert_eq!(raw_field(&line, "op"), Some("2"));
        assert_eq!(raw_field(&line, "op_name"), Some("hash_join"));
        assert_eq!(raw_field(&line, "old"), Some("null"));
        assert_eq!(raw_field(&line, "new"), Some("500"));
        assert_eq!(raw_field(&line, "source"), Some("online"));
    }

    #[test]
    fn phase_transitions_encode_names() {
        let e = TraceEvent {
            seq: 0,
            at_us: 0,
            kind: TraceEventKind::PhaseTransition {
                op: 0,
                from: Phase::Build,
                to: Phase::Probe,
            },
        };
        let line = event_to_json(&e, &[]);
        assert_eq!(raw_field(&line, "from"), Some("build"));
        assert_eq!(raw_field(&line, "to"), Some("probe"));
        assert_eq!(raw_field(&line, "op_name"), None);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn escape_unescape_round_trips_control_chars_and_non_ascii() {
        let cases = [
            "plain",
            "quote\" backslash\\ newline\n tab\t cr\r",
            "\u{0}\u{1}\u{1f}",        // control chars → \u00XX
            "héllo wörld — ünïcode ✓", // non-ASCII passes through raw
            "emoji 🎯 and \u{7}bell",
            "trailing backslash in source \\",
        ];
        for s in cases {
            let escaped = escape(s);
            assert_eq!(unescape(&escaped), s, "escaped: {escaped}");
        }
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(unescape("\\u0041"), "A");
        // Tolerant decoding: malformed escapes pass through, not panic.
        assert_eq!(unescape("\\u12"), "\\u12");
        assert_eq!(unescape("\\q"), "\\q");
        assert_eq!(unescape("\\"), "\\");
    }

    #[test]
    fn raw_field_handles_escaped_quotes_in_string_values() {
        let line = "{\"seq\":0,\"op_name\":\"a\\\"b\\\\\",\"rows\":7}";
        assert_eq!(raw_field(line, "op_name"), Some("a\\\"b\\\\"));
        assert_eq!(unescape(raw_field(line, "op_name").unwrap()), "a\"b\\");
        assert_eq!(raw_field(line, "rows"), Some("7"));
        // An unterminated string yields None rather than garbage.
        assert_eq!(raw_field("{\"op_name\":\"oops", "op_name"), None);
    }

    #[test]
    fn span_events_encode() {
        use qprog_exec::span::{SpanKind, NO_PARENT};
        let root = TraceEvent {
            seq: 0,
            at_us: 0,
            kind: TraceEventKind::SpanStart {
                span: 0,
                parent: NO_PARENT,
                kind: SpanKind::Query,
                arg: 0,
            },
        };
        let line = event_to_json(&root, &[]);
        assert_eq!(raw_field(&line, "event"), Some("span_start"));
        assert_eq!(raw_field(&line, "span"), Some("0"));
        assert_eq!(raw_field(&line, "kind"), Some("query"));
        assert_eq!(raw_field(&line, "parent"), None, "{line}");

        let child = TraceEvent {
            seq: 1,
            at_us: 5,
            kind: TraceEventKind::SpanStart {
                span: 1,
                parent: 0,
                kind: SpanKind::QueueWait,
                arg: 1,
            },
        };
        let line = event_to_json(&child, &[]);
        assert_eq!(raw_field(&line, "parent"), Some("0"));
        assert_eq!(raw_field(&line, "kind"), Some("queue_wait"));
        assert_eq!(raw_field(&line, "arg"), Some("1"));

        let end = TraceEvent {
            seq: 2,
            at_us: 9,
            kind: TraceEventKind::SpanEnd { span: 1 },
        };
        let line = event_to_json(&end, &[]);
        assert_eq!(raw_field(&line, "event"), Some("span_end"));
        assert_eq!(raw_field(&line, "span"), Some("1"));
    }

    #[test]
    fn lifecycle_events_encode() {
        use qprog_exec::trace::{AbortKind, DegradeReason};
        let e = TraceEvent {
            seq: 1,
            at_us: 10,
            kind: TraceEventKind::QueryAborted {
                reason: AbortKind::Cancelled,
                rows: 42,
            },
        };
        let line = event_to_json(&e, &[]);
        assert_eq!(raw_field(&line, "event"), Some("query_aborted"));
        assert_eq!(raw_field(&line, "reason"), Some("cancelled"));
        assert_eq!(raw_field(&line, "rows"), Some("42"));

        let e = TraceEvent {
            seq: 2,
            at_us: 20,
            kind: TraceEventKind::EstimatorDegraded {
                op: 0,
                reason: DegradeReason::HistogramMemory,
            },
        };
        let line = event_to_json(&e, &["join".to_string()]);
        assert_eq!(raw_field(&line, "event"), Some("estimator_degraded"));
        assert_eq!(raw_field(&line, "reason"), Some("histogram_memory"));
        assert_eq!(raw_field(&line, "op_name"), Some("join"));
    }
}
