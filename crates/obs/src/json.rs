//! Minimal hand-rolled JSON encoding for trace events and timelines.
//!
//! The workspace carries no external dependencies (no serde), and the
//! shapes encoded here are small and fixed, so a few helpers suffice.

use qprog_exec::trace::{TraceEvent, TraceEventKind};

/// Escape a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A finite float as a JSON number; NaN/inf become `null` (JSON has no
/// representation for them).
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Encode one trace event as a single JSON object (no trailing newline).
/// When `op_names` is non-empty, operator indices are annotated with their
/// registry names.
pub fn event_to_json(event: &TraceEvent, op_names: &[String]) -> String {
    let mut fields = vec![
        format!("\"seq\":{}", event.seq),
        format!("\"at_us\":{}", event.at_us),
    ];
    let op_field = |op: u32, fields: &mut Vec<String>| {
        fields.push(format!("\"op\":{op}"));
        if let Some(name) = op_names.get(op as usize) {
            fields.push(format!("\"op_name\":\"{}\"", escape(name)));
        }
    };
    match &event.kind {
        TraceEventKind::PipelineStarted { pipeline } => {
            fields.push("\"event\":\"pipeline_started\"".to_string());
            fields.push(format!("\"pipeline\":{pipeline}"));
        }
        TraceEventKind::PipelineFinished { pipeline } => {
            fields.push("\"event\":\"pipeline_finished\"".to_string());
            fields.push(format!("\"pipeline\":{pipeline}"));
        }
        TraceEventKind::PhaseTransition { op, from, to } => {
            fields.push("\"event\":\"phase_transition\"".to_string());
            op_field(*op, &mut fields);
            fields.push(format!("\"from\":\"{from}\""));
            fields.push(format!("\"to\":\"{to}\""));
        }
        TraceEventKind::EstimateRefined {
            op,
            old,
            new,
            source,
        } => {
            fields.push("\"event\":\"estimate_refined\"".to_string());
            op_field(*op, &mut fields);
            fields.push(format!("\"old\":{}", num(*old)));
            fields.push(format!("\"new\":{}", num(*new)));
            fields.push(format!("\"source\":\"{source}\""));
        }
        TraceEventKind::BoundsRefined { op, lo, hi } => {
            fields.push("\"event\":\"bounds_refined\"".to_string());
            op_field(*op, &mut fields);
            fields.push(format!("\"lo\":{}", num(*lo)));
            fields.push(format!("\"hi\":{}", num(*hi)));
        }
        TraceEventKind::OperatorFinished { op, emitted } => {
            fields.push("\"event\":\"operator_finished\"".to_string());
            op_field(*op, &mut fields);
            fields.push(format!("\"emitted\":{emitted}"));
        }
        TraceEventKind::QueryFinished { rows } => {
            fields.push("\"event\":\"query_finished\"".to_string());
            fields.push(format!("\"rows\":{rows}"));
        }
        TraceEventKind::QueryAborted { reason, rows } => {
            fields.push("\"event\":\"query_aborted\"".to_string());
            fields.push(format!("\"reason\":\"{reason}\""));
            fields.push(format!("\"rows\":{rows}"));
        }
        TraceEventKind::EstimatorDegraded { op, reason } => {
            fields.push("\"event\":\"estimator_degraded\"".to_string());
            op_field(*op, &mut fields);
            fields.push(format!("\"reason\":\"{reason}\""));
        }
    }
    format!("{{{}}}", fields.join(","))
}

/// Extract a field's raw value text from a flat one-line JSON object
/// produced by [`event_to_json`] (enough for tests and examples to parse
/// traces back without a JSON parser).
pub fn raw_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = if let Some(stripped) = rest.strip_prefix('"') {
        // string value: find the closing quote (no escaped quotes in our
        // controlled vocabulary of values)
        return stripped.find('"').map(|e| &stripped[..e]);
    } else {
        rest.find([',', '}']).unwrap_or(rest.len())
    };
    Some(&rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;
    use qprog_exec::trace::{EstimateSource, Phase};

    #[test]
    fn events_encode_round_trippably() {
        let e = TraceEvent {
            seq: 7,
            at_us: 1234,
            kind: TraceEventKind::EstimateRefined {
                op: 2,
                old: f64::NAN,
                new: 500.0,
                source: EstimateSource::Online,
            },
        };
        let names = vec![
            "scan".to_string(),
            "filter".to_string(),
            "hash_join".to_string(),
        ];
        let line = event_to_json(&e, &names);
        assert_eq!(raw_field(&line, "seq"), Some("7"));
        assert_eq!(raw_field(&line, "event"), Some("estimate_refined"));
        assert_eq!(raw_field(&line, "op"), Some("2"));
        assert_eq!(raw_field(&line, "op_name"), Some("hash_join"));
        assert_eq!(raw_field(&line, "old"), Some("null"));
        assert_eq!(raw_field(&line, "new"), Some("500"));
        assert_eq!(raw_field(&line, "source"), Some("online"));
    }

    #[test]
    fn phase_transitions_encode_names() {
        let e = TraceEvent {
            seq: 0,
            at_us: 0,
            kind: TraceEventKind::PhaseTransition {
                op: 0,
                from: Phase::Build,
                to: Phase::Probe,
            },
        };
        let line = event_to_json(&e, &[]);
        assert_eq!(raw_field(&line, "from"), Some("build"));
        assert_eq!(raw_field(&line, "to"), Some("probe"));
        assert_eq!(raw_field(&line, "op_name"), None);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn lifecycle_events_encode() {
        use qprog_exec::trace::{AbortKind, DegradeReason};
        let e = TraceEvent {
            seq: 1,
            at_us: 10,
            kind: TraceEventKind::QueryAborted {
                reason: AbortKind::Cancelled,
                rows: 42,
            },
        };
        let line = event_to_json(&e, &[]);
        assert_eq!(raw_field(&line, "event"), Some("query_aborted"));
        assert_eq!(raw_field(&line, "reason"), Some("cancelled"));
        assert_eq!(raw_field(&line, "rows"), Some("42"));

        let e = TraceEvent {
            seq: 2,
            at_us: 20,
            kind: TraceEventKind::EstimatorDegraded {
                op: 0,
                reason: DegradeReason::HistogramMemory,
            },
        };
        let line = event_to_json(&e, &["join".to_string()]);
        assert_eq!(raw_field(&line, "event"), Some("estimator_degraded"));
        assert_eq!(raw_field(&line, "reason"), Some("histogram_memory"));
        assert_eq!(raw_field(&line, "op_name"), Some("join"));
    }
}
