//! Deterministic trace replay: parse the JSONL sink format back into
//! [`TraceEvent`] streams and re-drive any [`TraceSink`] offline.
//!
//! A recorded trace (from a [`JsonlSink`](crate::sinks::JsonlSink)) is the
//! complete observable history of a query. Replaying it reproduces every
//! downstream aggregate without re-running the query: a fresh
//! [`MetricsSink`](crate::metrics_sink::MetricsSink) fed a replayed trace
//! reaches the same counters and histograms as the live run, a
//! [`ValidatorSink`](crate::sinks::ValidatorSink) re-checks the invariants
//! post-hoc, and the [`scoring`](crate::scoring) module computes quality
//! metrics from the embedded `progress_sampled` snapshots. Replay is
//! deterministic: events keep their recorded `seq`/`at_us` stamps and are
//! fed to sinks directly — **not** through an [`EventBus`], which would
//! re-stamp them with wall-clock values.
//!
//! Parsing is line-oriented over the flat one-line objects produced by
//! [`event_to_json`](crate::json::event_to_json); malformed or unknown
//! lines are collected, not fatal, so a truncated production trace (killed
//! writer, ring overflow) still replays its intact prefix.

use std::sync::Arc;

use qprog_exec::span::{SpanKind, NO_PARENT};
use qprog_exec::trace::{
    AbortKind, DegradeReason, EstimateSource, HealthReason, HealthState, Phase, RegressionKind,
    TraceEvent, TraceEventKind, TraceSink,
};

use crate::json::{raw_field, unescape};

/// A parsed trace: the event stream plus whatever operator names the JSONL
/// carried.
#[derive(Debug, Clone, Default)]
pub struct ReplayedTrace {
    /// Events in file order (which is publication order for a
    /// single-writer JSONL sink).
    pub events: Vec<TraceEvent>,
    /// Operator names gleaned from `op_name` annotations, indexed by
    /// operator registry index (empty string = never named).
    pub op_names: Vec<String>,
    /// Lines that failed to parse, as `(line_number, reason)` (1-based).
    pub errors: Vec<(usize, String)>,
}

impl ReplayedTrace {
    /// Parse a whole JSONL document (one event object per line; blank
    /// lines are skipped).
    pub fn parse(jsonl: &str) -> ReplayedTrace {
        let mut trace = ReplayedTrace::default();
        for (i, line) in jsonl.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match parse_event(line) {
                Ok(event) => {
                    if let (Some(op), Some(name)) =
                        (op_index(&event.kind), raw_field(line, "op_name"))
                    {
                        let idx = op as usize;
                        if trace.op_names.len() <= idx {
                            trace.op_names.resize(idx + 1, String::new());
                        }
                        if trace.op_names[idx].is_empty() {
                            trace.op_names[idx] = unescape(name);
                        }
                    }
                    trace.events.push(event);
                }
                Err(reason) => trace.errors.push((i + 1, reason)),
            }
        }
        trace
    }

    /// Feed every parsed event to `sink`, preserving recorded stamps.
    pub fn replay_into(&self, sink: &dyn TraceSink) {
        for event in &self.events {
            sink.publish(event);
        }
    }

    /// Feed every parsed event to each sink in turn (per-event fan-out,
    /// like a live bus).
    pub fn replay_into_all(&self, sinks: &[Arc<dyn TraceSink>]) {
        for event in &self.events {
            for sink in sinks {
                sink.publish(event);
            }
        }
    }
}

/// The operator index an event is about, if any.
fn op_index(kind: &TraceEventKind) -> Option<u32> {
    match kind {
        TraceEventKind::PhaseTransition { op, .. }
        | TraceEventKind::EstimateRefined { op, .. }
        | TraceEventKind::BoundsRefined { op, .. }
        | TraceEventKind::OperatorFinished { op, .. }
        | TraceEventKind::EstimatorDegraded { op, .. }
        | TraceEventKind::OperatorWallTime { op, .. }
        | TraceEventKind::WorkerWallTime { op, .. } => Some(*op),
        TraceEventKind::PipelineStarted { .. }
        | TraceEventKind::PipelineFinished { .. }
        | TraceEventKind::QueryFinished { .. }
        | TraceEventKind::QueryAborted { .. }
        | TraceEventKind::ProgressSampled { .. }
        | TraceEventKind::HealthTransition { .. }
        | TraceEventKind::RegressionDetected { .. }
        | TraceEventKind::SpanStart { .. }
        | TraceEventKind::SpanEnd { .. } => None,
    }
}

fn field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    raw_field(line, key).ok_or_else(|| format!("missing field \"{key}\""))
}

fn parse_u64(line: &str, key: &str) -> Result<u64, String> {
    field(line, key)?
        .parse::<u64>()
        .map_err(|e| format!("field \"{key}\": {e}"))
}

fn parse_u32(line: &str, key: &str) -> Result<u32, String> {
    field(line, key)?
        .parse::<u32>()
        .map_err(|e| format!("field \"{key}\": {e}"))
}

/// `null` (the encoding of NaN/inf, which JSON cannot represent) parses
/// back as NaN; finite values round-trip exactly through Rust's f64
/// shortest-repr `Display`.
fn parse_f64(line: &str, key: &str) -> Result<f64, String> {
    let raw = field(line, key)?;
    if raw == "null" {
        return Ok(f64::NAN);
    }
    raw.parse::<f64>()
        .map_err(|e| format!("field \"{key}\": {e}"))
}

fn parse_phase(line: &str, key: &str) -> Result<Phase, String> {
    let raw = field(line, key)?;
    Phase::from_name(raw).ok_or_else(|| format!("unknown phase \"{raw}\""))
}

/// Parse one event object produced by
/// [`event_to_json`](crate::json::event_to_json).
pub fn parse_event(line: &str) -> Result<TraceEvent, String> {
    let seq = parse_u64(line, "seq")?;
    let at_us = parse_u64(line, "at_us")?;
    let event = field(line, "event")?;
    let kind = match event {
        "pipeline_started" => TraceEventKind::PipelineStarted {
            pipeline: parse_u32(line, "pipeline")?,
        },
        "pipeline_finished" => TraceEventKind::PipelineFinished {
            pipeline: parse_u32(line, "pipeline")?,
        },
        "phase_transition" => TraceEventKind::PhaseTransition {
            op: parse_u32(line, "op")?,
            from: parse_phase(line, "from")?,
            to: parse_phase(line, "to")?,
        },
        "estimate_refined" => {
            let raw = field(line, "source")?;
            TraceEventKind::EstimateRefined {
                op: parse_u32(line, "op")?,
                old: parse_f64(line, "old")?,
                new: parse_f64(line, "new")?,
                source: EstimateSource::from_name(raw)
                    .ok_or_else(|| format!("unknown estimate source \"{raw}\""))?,
            }
        }
        "bounds_refined" => TraceEventKind::BoundsRefined {
            op: parse_u32(line, "op")?,
            lo: parse_f64(line, "lo")?,
            hi: parse_f64(line, "hi")?,
        },
        "operator_finished" => TraceEventKind::OperatorFinished {
            op: parse_u32(line, "op")?,
            emitted: parse_u64(line, "emitted")?,
        },
        "query_finished" => TraceEventKind::QueryFinished {
            rows: parse_u64(line, "rows")?,
        },
        "query_aborted" => {
            let raw = field(line, "reason")?;
            TraceEventKind::QueryAborted {
                reason: AbortKind::from_name(raw)
                    .ok_or_else(|| format!("unknown abort reason \"{raw}\""))?,
                rows: parse_u64(line, "rows")?,
            }
        }
        "estimator_degraded" => {
            let raw = field(line, "reason")?;
            TraceEventKind::EstimatorDegraded {
                op: parse_u32(line, "op")?,
                reason: DegradeReason::from_name(raw)
                    .ok_or_else(|| format!("unknown degrade reason \"{raw}\""))?,
            }
        }
        "progress_sampled" => TraceEventKind::ProgressSampled {
            current: parse_u64(line, "current")?,
            total: parse_f64(line, "total")?,
            fraction: parse_f64(line, "fraction")?,
            lo: parse_f64(line, "lo")?,
            hi: parse_f64(line, "hi")?,
        },
        "operator_wall_time" => TraceEventKind::OperatorWallTime {
            op: parse_u32(line, "op")?,
            wall_us: parse_u64(line, "wall_us")?,
        },
        "worker_wall_time" => TraceEventKind::WorkerWallTime {
            op: parse_u32(line, "op")?,
            worker: parse_u32(line, "worker")?,
            busy_us: parse_u64(line, "busy_us")?,
        },
        "health_transition" => {
            let from_raw = field(line, "from")?;
            let to_raw = field(line, "to")?;
            let reason_raw = field(line, "reason")?;
            TraceEventKind::HealthTransition {
                from: HealthState::from_name(from_raw)
                    .ok_or_else(|| format!("unknown health state \"{from_raw}\""))?,
                to: HealthState::from_name(to_raw)
                    .ok_or_else(|| format!("unknown health state \"{to_raw}\""))?,
                reason: HealthReason::from_name(reason_raw)
                    .ok_or_else(|| format!("unknown health reason \"{reason_raw}\""))?,
            }
        }
        "regression_detected" => {
            let raw = field(line, "kind")?;
            TraceEventKind::RegressionDetected {
                kind: RegressionKind::from_name(raw)
                    .ok_or_else(|| format!("unknown regression kind \"{raw}\""))?,
                observed: parse_f64(line, "observed")?,
                baseline: parse_f64(line, "baseline")?,
                threshold: parse_f64(line, "threshold")?,
            }
        }
        "span_start" => {
            let raw = field(line, "kind")?;
            TraceEventKind::SpanStart {
                span: parse_u32(line, "span")?,
                // Roots encode no parent field at all.
                parent: match raw_field(line, "parent") {
                    Some(p) => p
                        .parse::<u32>()
                        .map_err(|e| format!("field \"parent\": {e}"))?,
                    None => NO_PARENT,
                },
                kind: SpanKind::from_name(raw)
                    .ok_or_else(|| format!("unknown span kind \"{raw}\""))?,
                arg: parse_u32(line, "arg")?,
            }
        }
        "span_end" => TraceEventKind::SpanEnd {
            span: parse_u32(line, "span")?,
        },
        other => return Err(format!("unknown event kind \"{other}\"")),
    };
    Ok(TraceEvent { seq, at_us, kind })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::event_to_json;

    /// NaN-tolerant event equality (NaN == NaN for round-trip purposes).
    fn kinds_equal(a: &TraceEventKind, b: &TraceEventKind) -> bool {
        fn f(x: f64, y: f64) -> bool {
            (x.is_nan() && y.is_nan()) || x == y
        }
        use TraceEventKind::*;
        match (a, b) {
            (
                EstimateRefined {
                    op: o1,
                    old: a1,
                    new: n1,
                    source: s1,
                },
                EstimateRefined {
                    op: o2,
                    old: a2,
                    new: n2,
                    source: s2,
                },
            ) => o1 == o2 && f(*a1, *a2) && f(*n1, *n2) && s1 == s2,
            (
                BoundsRefined {
                    op: o1,
                    lo: l1,
                    hi: h1,
                },
                BoundsRefined {
                    op: o2,
                    lo: l2,
                    hi: h2,
                },
            ) => o1 == o2 && f(*l1, *l2) && f(*h1, *h2),
            (
                ProgressSampled {
                    current: c1,
                    total: t1,
                    fraction: fr1,
                    lo: l1,
                    hi: h1,
                },
                ProgressSampled {
                    current: c2,
                    total: t2,
                    fraction: fr2,
                    lo: l2,
                    hi: h2,
                },
            ) => c1 == c2 && f(*t1, *t2) && f(*fr1, *fr2) && f(*l1, *l2) && f(*h1, *h2),
            (
                RegressionDetected {
                    kind: k1,
                    observed: o1,
                    baseline: b1,
                    threshold: t1,
                },
                RegressionDetected {
                    kind: k2,
                    observed: o2,
                    baseline: b2,
                    threshold: t2,
                },
            ) => k1 == k2 && f(*o1, *o2) && f(*b1, *b2) && f(*t1, *t2),
            _ => a == b,
        }
    }

    #[test]
    fn every_event_kind_round_trips() {
        let kinds = [
            TraceEventKind::PipelineStarted { pipeline: 3 },
            TraceEventKind::PipelineFinished { pipeline: 3 },
            TraceEventKind::PhaseTransition {
                op: 1,
                from: Phase::Build,
                to: Phase::Probe,
            },
            TraceEventKind::EstimateRefined {
                op: 2,
                old: f64::NAN,
                new: 1234.5678901234,
                source: EstimateSource::Online,
            },
            TraceEventKind::BoundsRefined {
                op: 2,
                lo: 0.125,
                hi: 1e12,
            },
            TraceEventKind::OperatorFinished {
                op: 4,
                emitted: u64::MAX / 2,
            },
            TraceEventKind::QueryFinished { rows: 42 },
            TraceEventKind::QueryAborted {
                reason: AbortKind::DeadlineExceeded,
                rows: 7,
            },
            TraceEventKind::EstimatorDegraded {
                op: 0,
                reason: DegradeReason::HistogramMemory,
            },
            TraceEventKind::ProgressSampled {
                current: 999,
                total: 12345.5,
                fraction: 0.080923,
                lo: f64::NAN,
                hi: f64::NAN,
            },
            TraceEventKind::OperatorWallTime {
                op: 5,
                wall_us: 123_456,
            },
            TraceEventKind::WorkerWallTime {
                op: 5,
                worker: 3,
                busy_us: 9_876,
            },
            TraceEventKind::HealthTransition {
                from: HealthState::Healthy,
                to: HealthState::Stalled,
                reason: HealthReason::Stall,
            },
            TraceEventKind::HealthTransition {
                from: HealthState::Unstable,
                to: HealthState::Healthy,
                reason: HealthReason::Recovered,
            },
            TraceEventKind::RegressionDetected {
                kind: RegressionKind::MeanAbsErr,
                observed: 0.31,
                baseline: 0.04,
                threshold: 0.09,
            },
            TraceEventKind::RegressionDetected {
                kind: RegressionKind::WallTime,
                observed: 2_500_000.0,
                baseline: f64::NAN,
                threshold: f64::NAN,
            },
            TraceEventKind::SpanStart {
                span: 0,
                parent: NO_PARENT,
                kind: SpanKind::Query,
                arg: 0,
            },
            TraceEventKind::SpanStart {
                span: 3,
                parent: 0,
                kind: SpanKind::Dispatch,
                arg: 2,
            },
            TraceEventKind::SpanEnd { span: 3 },
        ];
        let names: Vec<String> = (0..6).map(|i| format!("op{i}")).collect();
        for (i, kind) in kinds.into_iter().enumerate() {
            let event = TraceEvent {
                seq: i as u64,
                at_us: 1000 + i as u64,
                kind,
            };
            let line = event_to_json(&event, &names);
            let back = parse_event(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back.seq, event.seq);
            assert_eq!(back.at_us, event.at_us);
            assert!(
                kinds_equal(&back.kind, &event.kind),
                "{:?} != {:?} (line: {line})",
                back.kind,
                event.kind
            );
        }
    }

    #[test]
    fn parse_collects_op_names_and_errors() {
        let jsonl = "\
{\"seq\":0,\"at_us\":1,\"event\":\"operator_finished\",\"op\":1,\"op_name\":\"hash_join\",\"emitted\":5}\n\
\n\
not json at all\n\
{\"seq\":1,\"at_us\":2,\"event\":\"mystery\"}\n\
{\"seq\":2,\"at_us\":3,\"event\":\"query_finished\",\"rows\":5}\n";
        let trace = ReplayedTrace::parse(jsonl);
        assert_eq!(trace.events.len(), 2);
        assert_eq!(
            trace.op_names,
            vec!["".to_string(), "hash_join".to_string()]
        );
        assert_eq!(trace.errors.len(), 2);
        assert_eq!(trace.errors[0].0, 3);
        assert_eq!(trace.errors[1].0, 4);
    }

    #[test]
    fn every_span_kind_round_trips() {
        use qprog_exec::span::SpanKind::*;
        for (i, kind) in [
            Query,
            Submit,
            JournalAppend,
            QueueWait,
            BackoffPark,
            Dispatch,
            Finalize,
        ]
        .into_iter()
        .enumerate()
        {
            let event = TraceEvent {
                seq: i as u64,
                at_us: 10 * i as u64,
                kind: TraceEventKind::SpanStart {
                    span: i as u32 + 1,
                    parent: if kind == Query { NO_PARENT } else { 0 },
                    kind,
                    arg: i as u32,
                },
            };
            let line = event_to_json(&event, &[]);
            let back = parse_event(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, event, "line: {line}");
        }
    }

    #[test]
    fn op_names_with_escapes_parse_back_to_original_text() {
        // Control characters and non-ASCII in an operator name must survive
        // the encode → parse round trip byte-identically.
        let name = "scan \"α→β\"\t\\x\u{1}\n日本語";
        let event = TraceEvent {
            seq: 0,
            at_us: 0,
            kind: TraceEventKind::OperatorFinished { op: 0, emitted: 1 },
        };
        let jsonl = event_to_json(&event, &[name.to_string()]);
        let trace = ReplayedTrace::parse(&jsonl);
        assert!(trace.errors.is_empty(), "{:?}", trace.errors);
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.op_names, vec![name.to_string()]);
        // Re-encoding with the recovered names reproduces the exact bytes.
        assert_eq!(event_to_json(&event, &trace.op_names), jsonl);
    }

    #[test]
    fn replay_preserves_recorded_stamps() {
        use qprog_exec::sync::Mutex;
        struct Collect(Mutex<Vec<TraceEvent>>);
        impl TraceSink for Collect {
            fn publish(&self, e: &TraceEvent) {
                self.0.lock().push(*e);
            }
        }
        let jsonl = "\
{\"seq\":10,\"at_us\":777,\"event\":\"query_finished\",\"rows\":1}\n";
        let trace = ReplayedTrace::parse(jsonl);
        let sink = Collect(Mutex::new(Vec::new()));
        trace.replay_into(&sink);
        let events = sink.0.lock();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].seq, 10);
        assert_eq!(events[0].at_us, 777);
    }
}
