//! EXPLAIN ANALYZE: post-execution plan rendering with actual vs estimated
//! cardinalities.
//!
//! [`explain_analyze`] walks a finished [`CompiledQuery`]'s operator tree
//! and renders, per operator:
//!
//! - actual rows emitted vs the optimizer's compile-time estimate, with the
//!   **q-error** `max(actual/est, est/actual)` between them,
//! - the final online estimate (`N_i` at query end — exact for operators
//!   that ran to completion),
//! - which estimator produced the online `N_i` (`framework`, `pipeline`,
//!   `dne`, `byte`, `gee/mle`, `pushdown`, `exact`, or plain `optimizer`),
//! - `getnext()` and driver-tuple counts,
//! - phase wall-times and online-refinement counts recovered from the
//!   trace event stream, when one was captured.
//!
//! The event slice is optional in spirit: pass `&[]` and the report simply
//! omits phase timings and refinement counts.

use qprog_exec::trace::{EstimateSource, TraceEvent, TraceEventKind};
use qprog_plan::physical::CompiledQuery;

/// q-error between an actual and an estimated cardinality: `max(a/e, e/a)`,
/// `1.0` when both are zero, `+inf` when exactly one is zero.
pub fn q_error(actual: f64, estimate: f64) -> f64 {
    if actual <= 0.0 && estimate <= 0.0 {
        1.0
    } else if actual <= 0.0 || estimate <= 0.0 {
        f64::INFINITY
    } else {
        (actual / estimate).max(estimate / actual)
    }
}

fn fmt_qerr(q: f64) -> String {
    if q.is_finite() {
        format!("{q:.2}")
    } else {
        "inf".to_string()
    }
}

fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}\u{b5}s")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

fn fmt_card(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:.1}")
    }
}

/// Per-operator facts recovered from the event stream.
#[derive(Default)]
struct OpTrace {
    /// `(start_us, phase_name)` for each phase entered, in time order.
    phases: Vec<(u64, &'static str)>,
    /// When the operator finished, if traced.
    finished_at: Option<u64>,
    /// `EstimateRefined` events with `source == Online`.
    online_refinements: usize,
    /// The operator's observed active wall span (`OperatorWallTime`).
    wall_us: Option<u64>,
}

fn collect_traces(n_ops: usize, events: &[TraceEvent]) -> (Vec<OpTrace>, u64) {
    let mut traces: Vec<OpTrace> = (0..n_ops).map(|_| OpTrace::default()).collect();
    let mut end_us = 0u64;
    for e in events {
        end_us = end_us.max(e.at_us);
        match e.kind {
            TraceEventKind::PhaseTransition { op, to, .. } => {
                if let Some(t) = traces.get_mut(op as usize) {
                    t.phases.push((e.at_us, to.name()));
                }
            }
            TraceEventKind::OperatorFinished { op, .. } => {
                if let Some(t) = traces.get_mut(op as usize) {
                    t.finished_at.get_or_insert(e.at_us);
                }
            }
            TraceEventKind::OperatorWallTime { op, wall_us } => {
                if let Some(t) = traces.get_mut(op as usize) {
                    t.wall_us = Some(wall_us);
                }
            }
            TraceEventKind::EstimateRefined {
                op,
                source: EstimateSource::Online,
                ..
            } => {
                if let Some(t) = traces.get_mut(op as usize) {
                    t.online_refinements += 1;
                }
            }
            _ => {}
        }
    }
    (traces, end_us)
}

/// Wall-time per phase: each phase runs from its transition until the
/// operator's next transition, or (for the last phase) until the operator
/// finished / the trace ended.
fn phase_times(trace: &OpTrace, end_us: u64) -> Vec<(&'static str, u64)> {
    let mut out = Vec::with_capacity(trace.phases.len());
    for (i, &(start, name)) in trace.phases.iter().enumerate() {
        let close = match trace.phases.get(i + 1) {
            Some(&(next, _)) => next,
            None => trace.finished_at.unwrap_or(end_us).max(start),
        };
        out.push((name, close.saturating_sub(start)));
    }
    out
}

/// Render an EXPLAIN ANALYZE report for an executed query.
///
/// `events` is the captured trace (e.g. drained from a
/// [`RingSink`](crate::sinks::RingSink)); pass an empty slice when no trace
/// was recorded — the report then omits phase timings and refinement
/// counts. Call after the query has been driven to completion so the
/// "actual" column reflects final counts.
pub fn explain_analyze(query: &CompiledQuery, events: &[TraceEvent]) -> String {
    let registry = query.registry();
    let names: Vec<&str> = registry.iter().map(|(n, _)| n).collect();
    if names.is_empty() {
        return "EXPLAIN ANALYZE\n(empty plan)\n".to_string();
    }
    let (traces, end_us) = collect_traces(names.len(), events);

    let mut out = String::new();
    out.push_str("EXPLAIN ANALYZE\n");
    if !events.is_empty() {
        out.push_str(&format!(
            "trace: {} events over {}\n",
            events.len(),
            fmt_us(end_us)
        ));
    }

    render(query, &names, &traces, end_us, query.root_op(), 0, &mut out);
    out
}

#[allow(clippy::too_many_arguments)]
fn render(
    query: &CompiledQuery,
    names: &[&str],
    traces: &[OpTrace],
    end_us: u64,
    idx: usize,
    depth: usize,
    out: &mut String,
) {
    let pad = "   ".repeat(depth);
    let m = match query.registry().get(idx) {
        Some(m) => m,
        None => return,
    };
    let label = query.estimator_labels().get(idx).copied().unwrap_or("?");
    let opt_est = query.initial_estimates().get(idx).copied().unwrap_or(0.0);
    let actual = m.emitted() as f64;
    let final_est = m.estimated_total();

    out.push_str(&format!("{pad}-> {} [{label}]\n", names[idx]));
    out.push_str(&format!(
        "{pad}   actual: {} rows   optimizer est: {} (q-error {})   final est: {} (q-error {})\n",
        m.emitted(),
        fmt_card(opt_est),
        fmt_qerr(q_error(actual, opt_est)),
        fmt_card(final_est),
        fmt_qerr(q_error(actual, final_est)),
    ));
    out.push_str(&format!(
        "{pad}   getnext: {}   driver: {}{}\n",
        m.emitted(),
        m.driver_consumed(),
        if m.is_finished() {
            "   finished"
        } else {
            "   unfinished"
        },
    ));
    if let Some(t) = traces.get(idx) {
        // Wall-time attribution: the event stamped at operator finish, or
        // the live span still held by the metrics handle (e.g. when the
        // trace was truncated). Inclusive first-to-last-work span, so a
        // parent's time contains its children's.
        if let Some(wall) = t.wall_us.or_else(|| m.wall_us()) {
            let share = if end_us > 0 {
                format!(" ({:.1}% of trace)", 100.0 * wall as f64 / end_us as f64)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{pad}   wall: {} active span{share}\n",
                fmt_us(wall)
            ));
        }
        if t.online_refinements > 0 {
            out.push_str(&format!(
                "{pad}   online refinements: {}\n",
                t.online_refinements
            ));
        }
        let times = phase_times(t, end_us);
        if !times.is_empty() {
            let parts: Vec<String> = times
                .iter()
                .map(|(name, us)| format!("{name} {}", fmt_us(*us)))
                .collect();
            out.push_str(&format!("{pad}   phases: {}\n", parts.join(", ")));
        }
    }
    if let Some(children) = query.op_inputs().get(idx) {
        for &child in children {
            render(query, names, traces, end_us, child, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinks::RingSink;
    use qprog_core::EstimationMode;
    use qprog_exec::trace::EventBus;
    use qprog_plan::builder::PlanBuilder;
    use qprog_plan::physical::{compile_traced, PhysicalOptions};
    use qprog_storage::{Catalog, Table};
    use qprog_types::{row, DataType, Field, Schema};
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut customer = Table::new(
            "customer",
            Schema::new(vec![
                Field::new("custkey", DataType::Int64),
                Field::new("nationkey", DataType::Int64),
            ]),
        );
        for i in 0..500i64 {
            customer.push(row![i, i % 25]).unwrap();
        }
        let mut nation = Table::new(
            "nation",
            Schema::new(vec![Field::new("nationkey", DataType::Int64)]),
        );
        for i in 0..25i64 {
            nation.push(row![i]).unwrap();
        }
        c.register(customer).unwrap();
        c.register(nation).unwrap();
        c
    }

    #[test]
    fn q_error_handles_zeros() {
        assert_eq!(q_error(0.0, 0.0), 1.0);
        assert_eq!(q_error(10.0, 0.0), f64::INFINITY);
        assert_eq!(q_error(0.0, 10.0), f64::INFINITY);
        assert_eq!(q_error(100.0, 50.0), 2.0);
        assert_eq!(q_error(50.0, 100.0), 2.0);
    }

    #[test]
    fn report_renders_tree_with_actuals_and_phases() {
        let b = PlanBuilder::new(catalog());
        let plan = b
            .scan("customer")
            .unwrap()
            .hash_join(
                b.scan("nation").unwrap(),
                "nation.nationkey",
                "customer.nationkey",
            )
            .unwrap();
        let ring = Arc::new(RingSink::with_capacity(4096));
        let bus = EventBus::with_sink(Arc::clone(&ring) as _);
        let opts = PhysicalOptions {
            mode: EstimationMode::Once,
            ..PhysicalOptions::default()
        };
        let mut q = compile_traced(&plan, &opts, Some(bus)).unwrap();
        let rows = q.collect().unwrap();
        assert_eq!(rows.len(), 500);

        let events = ring.drain();
        assert!(!events.is_empty());
        let report = explain_analyze(&q, &events);

        // Tree: root join, two scan children (indented one level).
        assert!(report.starts_with("EXPLAIN ANALYZE\n"), "{report}");
        assert!(report.contains("-> hash_join"), "{report}");
        assert!(
            report.contains("   -> scan(nation)") || report.contains("   -> scan"),
            "{report}"
        );
        // The join emitted exactly 500 rows and its final estimate is exact.
        assert!(report.contains("actual: 500 rows"), "{report}");
        assert!(report.contains("final est: 500 (q-error 1.00)"), "{report}");
        // Per-operator wall-time attribution from OperatorWallTime events.
        assert!(report.contains("wall: "), "{report}");
        assert!(report.contains("active span"), "{report}");
        // Phase timings recovered from the trace.
        assert!(report.contains("phases: build"), "{report}");
        assert!(report.contains("probe"), "{report}");
        // Estimator attribution for the online mode.
        assert!(report.contains("[framework]"), "{report}");
        assert!(report.contains("[exact]"), "{report}");
    }

    #[test]
    fn report_without_events_omits_phase_lines() {
        let b = PlanBuilder::new(catalog());
        let plan = b.scan("nation").unwrap();
        let mut q = compile_traced(&plan, &PhysicalOptions::default(), None).unwrap();
        q.collect().unwrap();
        let report = explain_analyze(&q, &[]);
        assert!(report.contains("actual: 25 rows"), "{report}");
        assert!(!report.contains("phases:"), "{report}");
        assert!(!report.contains("trace:"), "{report}");
    }
}
