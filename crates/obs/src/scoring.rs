//! Progress-quality scoring: the paper's §5 evaluation, computed from a
//! live or replayed trace.
//!
//! The paper judges a progress indicator by how its estimated fraction
//! tracks the *retrospective oracle* — gnm evaluated with the true `N_i`,
//! which after the fact is simply `K(t) / K(final)` (the work done so far
//! over the total work the query turned out to need). [`score_samples`]
//! distills a trajectory of `(estimated fraction, work done)` samples into:
//!
//! - **mean / max absolute progress error** vs the oracle,
//! - **monotonicity violations** — adjacent samples where the estimate
//!   *decreased* by more than a tolerance (refinements may wobble the
//!   fraction; sustained regressions indicate an estimator bug),
//! - **convergence point** — the earliest oracle fraction from which the
//!   estimate stays within [`CONVERGENCE_BAND`] of the truth for the rest
//!   of the query (the paper's "once converges by the end of the probe's
//!   first scan" claim, made measurable),
//! - a **q-error summary** over the operators' last online estimates vs
//!   their exact final cardinalities (mirroring the
//!   [`MetricsSink`](crate::metrics_sink::MetricsSink) histogram: only
//!   operators that actually refined online are scored).
//!
//! Inputs: [`score_events`] consumes a trace (live ring or
//! [`ReplayedTrace`](crate::replay::ReplayedTrace)) using its embedded
//! `progress_sampled` snapshots; [`score_log`] consumes a
//! [`ProgressLog`](crate::timeline::ProgressLog) from a timeline recorder.

use qprog_exec::trace::{EstimateSource, TraceEvent, TraceEventKind};

use crate::explain::q_error;
use crate::json::num;
use crate::timeline::ProgressLog;

/// Absolute progress-error band defining convergence (±10 points, the
/// issue's "within 10% of truth").
pub const CONVERGENCE_BAND: f64 = 0.10;

/// Default tolerance for monotonicity violations: refinements may shave
/// the fraction by floating-point noise without it counting as a
/// regression.
pub const MONOTONICITY_TOLERANCE: f64 = 1e-9;

/// Summary statistics over per-operator final q-errors.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QErrorSummary {
    /// Operators scored (those with at least one online refinement and a
    /// finite last estimate).
    pub count: usize,
    /// Mean q-error (1.0 = every estimate exact); 0 when `count == 0`.
    pub mean: f64,
    /// Worst q-error; 0 when `count == 0`.
    pub max: f64,
}

impl QErrorSummary {
    fn from_errors(errors: &[f64]) -> QErrorSummary {
        if errors.is_empty() {
            return QErrorSummary::default();
        }
        QErrorSummary {
            count: errors.len(),
            mean: errors.iter().sum::<f64>() / errors.len() as f64,
            max: errors.iter().cloned().fold(0.0, f64::max),
        }
    }
}

/// Quality scores for one query's progress trajectory.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProgressScore {
    /// Progress samples the trajectory scores were computed over.
    pub samples: usize,
    /// Mean `|estimated fraction − oracle fraction|` across samples.
    pub mean_abs_err: f64,
    /// Worst absolute progress error.
    pub max_abs_err: f64,
    /// Adjacent-sample estimate regressions beyond
    /// [`MONOTONICITY_TOLERANCE`].
    pub monotonicity_violations: usize,
    /// Earliest oracle fraction from which the estimate stayed within
    /// [`CONVERGENCE_BAND`] of truth through the end (`Some(0.0)` =
    /// accurate from the first sample; `None` = never converged or no
    /// samples).
    pub convergence: Option<f64>,
    /// Final-estimate accuracy over online-refined operators.
    pub q_error: QErrorSummary,
}

impl ProgressScore {
    /// Encode as a flat JSON object (for `BENCH_progress.json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"samples\":{},\"mean_abs_err\":{},\"max_abs_err\":{},\
             \"monotonicity_violations\":{},\"convergence\":{},\
             \"q_error_count\":{},\"q_error_mean\":{},\"q_error_max\":{}}}",
            self.samples,
            num(self.mean_abs_err),
            num(self.max_abs_err),
            self.monotonicity_violations,
            self.convergence.map_or("null".to_string(), num),
            self.q_error.count,
            num(self.q_error.mean),
            num(self.q_error.max),
        )
    }

    /// Parse the flat fields written by [`Self::to_json`] back out of a
    /// one-line JSON object. The object may carry extra fields (a corpus
    /// index record embeds the scorecard alongside run metadata); `null`
    /// numerics decode as NaN and a `null` convergence as `None`.
    pub fn from_json(line: &str) -> Result<ProgressScore, String> {
        fn req<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
            crate::json::raw_field(line, key).ok_or_else(|| format!("missing field \"{key}\""))
        }
        fn usize_of(line: &str, key: &str) -> Result<usize, String> {
            req(line, key)?
                .parse::<usize>()
                .map_err(|e| format!("field \"{key}\": {e}"))
        }
        fn f64_of(line: &str, key: &str) -> Result<f64, String> {
            let raw = req(line, key)?;
            if raw == "null" {
                return Ok(f64::NAN);
            }
            raw.parse::<f64>()
                .map_err(|e| format!("field \"{key}\": {e}"))
        }
        let convergence = match req(line, "convergence")? {
            "null" => None,
            raw => Some(
                raw.parse::<f64>()
                    .map_err(|e| format!("field \"convergence\": {e}"))?,
            ),
        };
        Ok(ProgressScore {
            samples: usize_of(line, "samples")?,
            mean_abs_err: f64_of(line, "mean_abs_err")?,
            max_abs_err: f64_of(line, "max_abs_err")?,
            monotonicity_violations: usize_of(line, "monotonicity_violations")?,
            convergence,
            q_error: QErrorSummary {
                count: usize_of(line, "q_error_count")?,
                mean: f64_of(line, "q_error_mean")?,
                max: f64_of(line, "q_error_max")?,
            },
        })
    }
}

/// One point of a progress trajectory: the indicator's estimate and the
/// work counter it was derived from.
#[derive(Debug, Clone, Copy)]
pub struct SamplePoint {
    /// Estimated gnm fraction at the sample instant.
    pub fraction: f64,
    /// `ΣK_i` — true work done at the sample instant (the oracle's input).
    pub current: u64,
}

/// Score a trajectory of samples against the retrospective oracle.
///
/// The oracle fraction at each sample is `current / final_current`, where
/// `final_current` is the largest work counter observed — gnm with the true
/// `N_i`, reconstructed after the fact. Queries whose trace ends mid-run
/// (abort, truncation) are scored against the work they actually did.
pub fn score_samples(points: &[SamplePoint], q_errors: &[f64]) -> ProgressScore {
    let q_error = QErrorSummary::from_errors(q_errors);
    let final_current = points.iter().map(|p| p.current).max().unwrap_or(0);
    if points.is_empty() || final_current == 0 {
        return ProgressScore {
            q_error,
            ..ProgressScore::default()
        };
    }

    let mut sum_err = 0.0f64;
    let mut max_err = 0.0f64;
    let mut errs = Vec::with_capacity(points.len());
    for p in points {
        let oracle = p.current as f64 / final_current as f64;
        let est = if p.fraction.is_finite() {
            p.fraction
        } else {
            0.0
        };
        let err = (est - oracle).abs();
        errs.push((oracle, err));
        sum_err += err;
        max_err = max_err.max(err);
    }

    let monotonicity_violations = points
        .windows(2)
        .filter(|w| {
            w[1].fraction.is_finite()
                && w[0].fraction.is_finite()
                && w[1].fraction < w[0].fraction - MONOTONICITY_TOLERANCE
        })
        .count();

    // Convergence: walk back from the end to find the first sample after
    // which every error stays inside the band, then report the *oracle*
    // fraction at that sample (how far through the true work the indicator
    // became reliable).
    let mut convergence = None;
    for (i, &(oracle, err)) in errs.iter().enumerate().rev() {
        if err > CONVERGENCE_BAND {
            break;
        }
        convergence = Some(if i == 0 { 0.0 } else { oracle });
    }

    ProgressScore {
        samples: points.len(),
        mean_abs_err: sum_err / points.len() as f64,
        max_abs_err: max_err,
        monotonicity_violations,
        convergence,
        q_error,
    }
}

/// Score a trace using its embedded `progress_sampled` snapshots (requires
/// the query to have run with a bus-attached
/// [`TimelineRecorder`](crate::timeline::TimelineRecorder)); q-errors come
/// from the `estimate_refined` stream, mirroring the metrics sink: each
/// operator's last pre-exact estimate vs its exact pin, online-refined
/// operators only.
pub fn score_events(events: &[TraceEvent]) -> ProgressScore {
    let mut points = Vec::new();
    // (last_estimate, refined_online) per operator.
    let mut ops: Vec<(f64, bool)> = Vec::new();
    let mut q_errors = Vec::new();
    for e in events {
        match e.kind {
            TraceEventKind::ProgressSampled {
                current, fraction, ..
            } => points.push(SamplePoint { fraction, current }),
            TraceEventKind::EstimateRefined {
                op, new, source, ..
            } => {
                let idx = op as usize;
                if ops.len() <= idx {
                    ops.resize(idx + 1, (f64::NAN, false));
                }
                match source {
                    EstimateSource::Exact => {
                        let (prior, refined) = ops[idx];
                        if refined && prior.is_finite() {
                            q_errors.push(q_error(new, prior));
                        }
                    }
                    _ => {
                        ops[idx].0 = new;
                        ops[idx].1 |= source == EstimateSource::Online;
                    }
                }
            }
            _ => {}
        }
    }
    score_samples(&points, &q_errors)
}

/// Score a recorded timeline. q-errors are derived from the per-operator
/// trajectories: an operator is considered online-refined when its
/// estimate changed between registration and its last unfinished sample
/// (the log does not carry refinement sources).
pub fn score_log(log: &ProgressLog) -> ProgressScore {
    let points: Vec<SamplePoint> = log
        .points()
        .iter()
        .map(|p| SamplePoint {
            fraction: p.fraction,
            current: p.current,
        })
        .collect();

    let n_ops = log.op_names().len();
    let mut q_errors = Vec::new();
    for i in 0..n_ops {
        let mut first_est = None;
        let mut last_unfinished_est = None;
        let mut final_emitted = None;
        for p in log.points() {
            let Some(op) = p.ops.get(i) else { continue };
            if first_est.is_none() {
                first_est = Some(op.estimate);
            }
            if op.finished {
                final_emitted.get_or_insert(op.emitted);
            } else {
                last_unfinished_est = Some(op.estimate);
            }
        }
        if let (Some(first), Some(last), Some(actual)) =
            (first_est, last_unfinished_est, final_emitted)
        {
            if last.is_finite() && last != first {
                q_errors.push(q_error(actual as f64, last));
            }
        }
    }
    score_samples(&points, &q_errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, u64)]) -> Vec<SamplePoint> {
        v.iter()
            .map(|&(fraction, current)| SamplePoint { fraction, current })
            .collect()
    }

    #[test]
    fn perfect_trajectory_scores_zero_error() {
        let p = pts(&[(0.0, 0), (0.25, 25), (0.5, 50), (1.0, 100)]);
        let s = score_samples(&p, &[]);
        assert_eq!(s.samples, 4);
        assert_eq!(s.mean_abs_err, 0.0);
        assert_eq!(s.max_abs_err, 0.0);
        assert_eq!(s.monotonicity_violations, 0);
        assert_eq!(s.convergence, Some(0.0));
        assert_eq!(s.q_error.count, 0);
    }

    #[test]
    fn errors_and_convergence_are_measured() {
        // Estimate wildly low early (optimistic denominator), converges at
        // the third sample (oracle fraction 0.5).
        let p = pts(&[(0.6, 10), (0.8, 25), (0.52, 50), (0.77, 75), (1.0, 100)]);
        let s = score_samples(&p, &[]);
        assert_eq!(s.samples, 5);
        assert!(s.max_abs_err > 0.4, "{s:?}");
        assert!(s.mean_abs_err > 0.1 && s.mean_abs_err < 0.4, "{s:?}");
        assert_eq!(s.convergence, Some(0.5));
        // 0.8 → 0.52 is a real regression
        assert_eq!(s.monotonicity_violations, 1);
    }

    #[test]
    fn never_converging_trajectory_reports_none() {
        let p = pts(&[(0.9, 10), (0.9, 50), (0.5, 100)]);
        let s = score_samples(&p, &[]);
        assert_eq!(s.convergence, None);
    }

    #[test]
    fn empty_and_zero_work_are_safe() {
        assert_eq!(score_samples(&[], &[]).samples, 0);
        let s = score_samples(&pts(&[(0.0, 0)]), &[1.5, 2.5]);
        assert_eq!(s.samples, 0);
        assert_eq!(s.q_error.count, 2);
        assert_eq!(s.q_error.mean, 2.0);
        assert_eq!(s.q_error.max, 2.5);
    }

    #[test]
    fn score_events_uses_sampled_snapshots_and_refinements() {
        use qprog_exec::trace::EstimateSource;
        let mk = |kind| TraceEvent {
            seq: 0,
            at_us: 0,
            kind,
        };
        let events = vec![
            mk(TraceEventKind::EstimateRefined {
                op: 0,
                old: f64::NAN,
                new: 1000.0,
                source: EstimateSource::Optimizer,
            }),
            mk(TraceEventKind::ProgressSampled {
                current: 50,
                total: 100.0,
                fraction: 0.5,
                lo: f64::NAN,
                hi: f64::NAN,
            }),
            mk(TraceEventKind::EstimateRefined {
                op: 0,
                old: 1000.0,
                new: 50.0,
                source: EstimateSource::Online,
            }),
            mk(TraceEventKind::EstimateRefined {
                op: 0,
                old: 50.0,
                new: 100.0,
                source: EstimateSource::Exact,
            }),
            mk(TraceEventKind::ProgressSampled {
                current: 100,
                total: 100.0,
                fraction: 1.0,
                lo: f64::NAN,
                hi: f64::NAN,
            }),
        ];
        let s = score_events(&events);
        assert_eq!(s.samples, 2);
        assert_eq!(s.mean_abs_err, 0.0);
        assert_eq!(s.q_error.count, 1);
        assert_eq!(s.q_error.mean, 2.0, "q-error(100, 50) = 2");
    }

    #[test]
    fn score_json_is_flat_and_parsable() {
        let s = score_samples(&pts(&[(0.5, 50), (1.0, 100)]), &[2.0]);
        let json = s.to_json();
        assert_eq!(crate::json::raw_field(&json, "samples"), Some("2"));
        assert_eq!(crate::json::raw_field(&json, "q_error_mean"), Some("2"));
        assert_eq!(crate::json::raw_field(&json, "convergence"), Some("0"));
        let none = ProgressScore::default().to_json();
        assert_eq!(crate::json::raw_field(&none, "convergence"), Some("null"));
    }

    #[test]
    fn score_json_round_trips() {
        let s = score_samples(&pts(&[(0.3, 30), (0.8, 60), (1.0, 100)]), &[1.5, 3.0]);
        let back = ProgressScore::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
        // None convergence and extra surrounding fields survive.
        let none = ProgressScore::default();
        let embedded = format!("{{\"run\":7,\"label\":\"q8\",{}", &none.to_json()[1..]);
        let back = ProgressScore::from_json(&embedded).unwrap();
        assert_eq!(back.convergence, None);
        assert_eq!(back.samples, 0);
        assert!(ProgressScore::from_json("{\"samples\":1}").is_err());
    }
}
