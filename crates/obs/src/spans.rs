//! Causal span trees: lifecycle attribution and Chrome trace-event export.
//!
//! Assembles a hierarchical [`SpanTree`] for one query from its trace
//! events, merging two sources:
//!
//! - **Explicit lifecycle spans** — typed
//!   [`SpanStart`](TraceEventKind::SpanStart) /
//!   [`SpanEnd`](TraceEventKind::SpanEnd) markers emitted by the query
//!   service (submit, journal append, queue-wait parks, backoff parks,
//!   dispatch attempts, finalize). These tile the `query` root gaplessly,
//!   so summed queue-wait + retry-park + execution durations reconcile
//!   with the journal's recorded wall time.
//! - **Derived execution spans** — operator, phase, worker, and pipeline
//!   intervals reconstructed from the events the engine already publishes
//!   (`PhaseTransition`, `OperatorFinished`, `OperatorWallTime`,
//!   `WorkerWallTime`, `PipelineStarted/Finished`). Deriving instead of
//!   re-instrumenting keeps the traced hot path free of new atomics: the
//!   underlying wall-time reads are already amortized over the governor's
//!   checkpoint stride.
//!
//! The tree exports as Chrome trace-event JSON
//! ([`SpanTree::to_chrome_json`]) loadable in Perfetto or
//! `chrome://tracing`: every node becomes a complete (`"ph":"X"`) event
//! with microsecond `ts`/`dur`, laid out on one thread-track per
//! operator/worker/pipeline so spans within a track are strictly nested.

use std::collections::BTreeMap;

use qprog_exec::span::{SpanKind, NO_PARENT};
use qprog_exec::trace::{Phase, TraceEvent, TraceEventKind};

use crate::json::escape;

/// Which Perfetto thread-track a span renders on. Tracks exist so that
/// concurrently-active spans (two operators, two workers) never share a
/// track — Chrome's viewer requires strict stack nesting per `tid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Track {
    /// The service lifecycle: root, submit, queue waits, dispatches.
    Lifecycle,
    /// One pipeline's running interval.
    Pipeline(u32),
    /// One operator and its phase children.
    Operator(u32),
    /// One worker thread's busy interval inside an operator.
    Worker {
        /// Operator registry index.
        op: u32,
        /// Task index within the operator's pool.
        worker: u32,
    },
}

/// One node of the span tree: a named `[start_us, end_us]` interval.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Display name (`"dispatch #2"`, `"op hash_join"`, `"phase probe"`).
    pub name: String,
    /// Category rendered into the Chrome `cat` field.
    pub cat: &'static str,
    /// Lifecycle kind for explicit spans (`None` for derived ones).
    pub kind: Option<SpanKind>,
    /// `arg` from the originating `SpanStart` (attempt number), 0 derived.
    pub arg: u32,
    /// Start, microseconds on the emitting stream's clock.
    pub start_us: u64,
    /// End, microseconds; `end_us >= start_us` after assembly.
    pub end_us: u64,
    /// Track this node renders on.
    pub track: Track,
    /// Nested child spans, sorted by `start_us`.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// The span's duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    fn clamp_into(&mut self, lo: u64, hi: u64) {
        self.start_us = self.start_us.clamp(lo, hi);
        self.end_us = self.end_us.clamp(self.start_us, hi);
        for c in &mut self.children {
            c.clamp_into(self.start_us, self.end_us);
        }
    }

    fn sort_rec(&mut self) {
        self.children.sort_by_key(|c| (c.start_us, c.end_us));
        for c in &mut self.children {
            c.sort_rec();
        }
    }
}

/// Summed lifecycle durations, one bucket per [`SpanKind`], plus the
/// dispatch-attempt count. Drives the per-tenant SLO metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleTotals {
    /// Root span duration (submit → terminal wall time).
    pub total_us: u64,
    /// Submit-side validation/admission/journal time.
    pub submit_us: u64,
    /// Time parked in the ready queue (all parks summed).
    pub queue_wait_us: u64,
    /// Time parked for retry backoff.
    pub backoff_us: u64,
    /// Execution time across all dispatch attempts.
    pub exec_us: u64,
    /// Terminal-processing time.
    pub finalize_us: u64,
    /// Number of dispatch attempts observed.
    pub attempts: u32,
}

/// A query's assembled span tree.
#[derive(Debug, Clone)]
pub struct SpanTree {
    /// The root (`query`) span; every other span nests under it.
    pub root: SpanNode,
}

impl SpanTree {
    /// Assemble a tree from one query's trace events. Handles streams with
    /// explicit lifecycle spans (service-managed queries), pure execution
    /// traces (session queries — a root is synthesized), and mixes of the
    /// two (derived execution spans attach under the last dispatch attempt
    /// when one exists, else under the root). Unclosed spans end at the
    /// stream's last timestamp; children are clamped into their parents so
    /// the result is always strictly nested.
    pub fn from_events(events: &[TraceEvent], op_names: &[String]) -> SpanTree {
        let t_max = events.iter().map(|e| e.at_us).max().unwrap_or(0);
        let t_min = events.iter().map(|e| e.at_us).min().unwrap_or(0);

        // -- explicit lifecycle spans ----------------------------------
        struct Open {
            kind: SpanKind,
            parent: u32,
            arg: u32,
            start: u64,
            end: Option<u64>,
        }
        let mut by_id: BTreeMap<u32, Open> = BTreeMap::new();
        for e in events {
            match e.kind {
                TraceEventKind::SpanStart {
                    span,
                    parent,
                    kind,
                    arg,
                } => {
                    by_id.entry(span).or_insert(Open {
                        kind,
                        parent,
                        arg,
                        start: e.at_us,
                        end: None,
                    });
                }
                TraceEventKind::SpanEnd { span } => {
                    if let Some(o) = by_id.get_mut(&span) {
                        o.end.get_or_insert(e.at_us);
                    }
                }
                _ => {}
            }
        }

        // Build lifecycle nodes and index children under their parents.
        let mut lifecycle: BTreeMap<u32, SpanNode> = BTreeMap::new();
        let mut kids: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        let mut root_id: Option<u32> = None;
        let mut last_dispatch: Option<u32> = None;
        for (&id, o) in &by_id {
            let name = match o.kind {
                SpanKind::QueueWait | SpanKind::BackoffPark | SpanKind::Dispatch => {
                    format!("{} #{}", o.kind, o.arg + 1)
                }
                _ => o.kind.to_string(),
            };
            lifecycle.insert(
                id,
                SpanNode {
                    name,
                    cat: "lifecycle",
                    kind: Some(o.kind),
                    arg: o.arg,
                    start_us: o.start,
                    end_us: o.end.unwrap_or(t_max),
                    track: Track::Lifecycle,
                    children: Vec::new(),
                },
            );
            if o.parent == NO_PARENT || o.kind == SpanKind::Query {
                root_id.get_or_insert(id);
            } else {
                kids.entry(o.parent).or_default().push(id);
            }
            if o.kind == SpanKind::Dispatch {
                last_dispatch = Some(id);
            }
        }

        // -- derived execution spans -----------------------------------
        let mut derived = derive_exec_spans(events, op_names, t_max);

        // -- stitch ----------------------------------------------------
        let mut root = match root_id {
            Some(rid) => {
                // Fold children bottom-up: ids are assembled in reverse so
                // a child's own subtree is complete before its parent
                // consumes it. (Service span logs allocate ids in start
                // order, so a parent's id is always below its children's.)
                let ids: Vec<u32> = lifecycle.keys().copied().rev().collect();
                for id in ids {
                    if id == rid {
                        continue;
                    }
                    let Some(node) = lifecycle.remove(&id) else {
                        continue;
                    };
                    let Some(o) = by_id.get(&id) else { continue };
                    let mut node = node;
                    if let Some(child_ids) = kids.remove(&id) {
                        for cid in child_ids {
                            if let Some(c) = lifecycle.remove(&cid) {
                                node.children.push(c);
                            }
                        }
                    }
                    // Execution detail nests under its dispatch attempt.
                    if Some(id) == last_dispatch {
                        node.children.append(&mut derived);
                    }
                    if let Some(p) = lifecycle.get_mut(&o.parent) {
                        p.children.push(node);
                    }
                }
                let mut root = lifecycle.remove(&rid).expect("root assembled");
                if let Some(child_ids) = kids.remove(&rid) {
                    for cid in child_ids {
                        if let Some(c) = lifecycle.remove(&cid) {
                            root.children.push(c);
                        }
                    }
                }
                root.children.append(&mut derived); // no dispatch span seen
                root
            }
            None => {
                // Pure execution trace: synthesize the query root.
                let end = events
                    .iter()
                    .rev()
                    .find_map(|e| match e.kind {
                        TraceEventKind::QueryFinished { .. }
                        | TraceEventKind::QueryAborted { .. } => Some(e.at_us),
                        _ => None,
                    })
                    .unwrap_or(t_max);
                SpanNode {
                    name: "query".to_string(),
                    cat: "lifecycle",
                    kind: Some(SpanKind::Query),
                    arg: 0,
                    start_us: t_min,
                    end_us: end.max(t_max),
                    track: Track::Lifecycle,
                    children: std::mem::take(&mut derived),
                }
            }
        };

        root.clamp_into(root.start_us, root.end_us);
        root.sort_rec();
        SpanTree { root }
    }

    /// Sum lifecycle durations per kind (direct tree walk; derived
    /// execution spans are ignored — only typed lifecycle spans count).
    pub fn lifecycle_totals(&self) -> LifecycleTotals {
        let mut t = LifecycleTotals {
            total_us: self.root.duration_us(),
            ..LifecycleTotals::default()
        };
        fn walk(n: &SpanNode, t: &mut LifecycleTotals) {
            match n.kind {
                Some(SpanKind::Submit) => t.submit_us += n.duration_us(),
                Some(SpanKind::QueueWait) => t.queue_wait_us += n.duration_us(),
                Some(SpanKind::BackoffPark) => t.backoff_us += n.duration_us(),
                Some(SpanKind::Dispatch) => {
                    t.exec_us += n.duration_us();
                    t.attempts += 1;
                }
                Some(SpanKind::Finalize) => t.finalize_us += n.duration_us(),
                _ => {}
            }
            for c in &n.children {
                walk(c, t);
            }
        }
        for c in &self.root.children {
            walk(c, &mut t);
        }
        t
    }

    /// Strict-nesting violations: a child escaping its parent's interval,
    /// or two same-track siblings overlapping. Empty for any tree built by
    /// [`from_events`](Self::from_events) (assembly clamps); exposed so
    /// tests and the export path can assert the invariant.
    pub fn nesting_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn walk(n: &SpanNode, out: &mut Vec<String>) {
            for c in &n.children {
                if c.start_us < n.start_us || c.end_us > n.end_us {
                    out.push(format!(
                        "{} [{}, {}] escapes parent {} [{}, {}]",
                        c.name, c.start_us, c.end_us, n.name, n.start_us, n.end_us
                    ));
                }
            }
            for w in n.children.windows(2) {
                if w[0].track == w[1].track && w[1].start_us < w[0].end_us {
                    out.push(format!(
                        "{} [{}, {}] overlaps sibling {} [{}, {}]",
                        w[1].name,
                        w[1].start_us,
                        w[1].end_us,
                        w[0].name,
                        w[0].start_us,
                        w[0].end_us
                    ));
                }
            }
            for c in &n.children {
                walk(c, out);
            }
        }
        walk(&self.root, &mut out);
        out
    }

    /// Export as a Chrome trace-event JSON document (object form, with
    /// `traceEvents` + `displayTimeUnit`), loadable in Perfetto and
    /// `chrome://tracing`. Every span becomes a complete (`"ph":"X"`)
    /// event; `ts`/`dur` are microseconds; `pid` is the query id and each
    /// [`Track`] gets its own named `tid`.
    pub fn to_chrome_json(&self, pid: u64) -> String {
        let mut tids: BTreeMap<Track, u64> = BTreeMap::new();
        tids.insert(Track::Lifecycle, 0);
        let mut events: Vec<String> = Vec::new();
        fn walk(n: &SpanNode, pid: u64, tids: &mut BTreeMap<Track, u64>, events: &mut Vec<String>) {
            let next = tids.len() as u64;
            let tid = *tids.entry(n.track).or_insert(next);
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{pid},\"tid\":{tid},\"args\":{{\"arg\":{}}}}}",
                escape(&n.name),
                n.cat,
                n.start_us,
                n.duration_us(),
                n.arg
            ));
            for c in &n.children {
                walk(c, pid, tids, events);
            }
        }
        walk(&self.root, pid, &mut tids, &mut events);
        // Thread-name metadata so Perfetto labels each track.
        for (track, tid) in &tids {
            let label = match track {
                Track::Lifecycle => "lifecycle".to_string(),
                Track::Pipeline(p) => format!("pipeline {p}"),
                Track::Operator(op) => format!("operator {op}"),
                Track::Worker { op, worker } => format!("op {op} worker {worker}"),
            };
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{label}\"}}}}"
            ));
        }
        format!(
            "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
            events.join(",")
        )
    }
}

/// Reconstruct operator / phase / worker / pipeline intervals from the
/// standard execution events. Returns top-level derived nodes (operators
/// and pipelines) with phases and workers nested under their operator.
fn derive_exec_spans(events: &[TraceEvent], op_names: &[String], t_max: u64) -> Vec<SpanNode> {
    struct OpState {
        first: u64,
        last: u64,
        open_phase: Option<(Phase, u64)>,
        phases: Vec<(Phase, u64, u64)>,
        workers: Vec<(u32, u64, u64)>,
        wall_us: Option<u64>,
        finished_at: Option<u64>,
    }
    let mut ops: BTreeMap<u32, OpState> = BTreeMap::new();
    let mut pipes: BTreeMap<u32, (u64, Option<u64>)> = BTreeMap::new();
    fn touch(ops: &mut BTreeMap<u32, OpState>, op: u32, at: u64) -> &mut OpState {
        let s = ops.entry(op).or_insert(OpState {
            first: at,
            last: at,
            open_phase: None,
            phases: Vec::new(),
            workers: Vec::new(),
            wall_us: None,
            finished_at: None,
        });
        s.first = s.first.min(at);
        s.last = s.last.max(at);
        s
    }
    for e in events {
        match e.kind {
            TraceEventKind::PhaseTransition { op, to, .. } => {
                let s = touch(&mut ops, op, e.at_us);
                if let Some((p, since)) = s.open_phase.take() {
                    s.phases.push((p, since, e.at_us));
                }
                s.open_phase = Some((to, e.at_us));
            }
            TraceEventKind::OperatorFinished { op, .. } => {
                let s = touch(&mut ops, op, e.at_us);
                if let Some((p, since)) = s.open_phase.take() {
                    s.phases.push((p, since, e.at_us));
                }
                s.finished_at = Some(e.at_us);
            }
            TraceEventKind::OperatorWallTime { op, wall_us } => {
                touch(&mut ops, op, e.at_us).wall_us = Some(wall_us);
            }
            TraceEventKind::WorkerWallTime {
                op,
                worker,
                busy_us,
            } => {
                let s = touch(&mut ops, op, e.at_us);
                s.workers
                    .push((worker, e.at_us.saturating_sub(busy_us), e.at_us));
            }
            TraceEventKind::EstimateRefined { op, .. }
            | TraceEventKind::BoundsRefined { op, .. }
            | TraceEventKind::EstimatorDegraded { op, .. } => {
                touch(&mut ops, op, e.at_us);
            }
            TraceEventKind::PipelineStarted { pipeline } => {
                pipes.entry(pipeline).or_insert((e.at_us, None));
            }
            TraceEventKind::PipelineFinished { pipeline } => {
                pipes.entry(pipeline).or_insert((e.at_us, None)).1 = Some(e.at_us);
            }
            _ => {}
        }
    }

    let mut out = Vec::new();
    for (&p, &(start, end)) in &pipes {
        out.push(SpanNode {
            name: format!("pipeline {p}"),
            cat: "pipeline",
            kind: None,
            arg: 0,
            start_us: start,
            end_us: end.unwrap_or(t_max),
            track: Track::Pipeline(p),
            children: Vec::new(),
        });
    }
    for (&op, s) in &mut ops {
        if let Some((p, since)) = s.open_phase.take() {
            s.phases.push((p, since, t_max));
        }
        let name = op_names
            .get(op as usize)
            .filter(|n| !n.is_empty())
            .map(|n| format!("op {n}"))
            .unwrap_or_else(|| format!("op {op}"));
        // Boundaries: phase transitions when present; else the event span,
        // widened backwards by the measured wall time for phase-less
        // operators (scans) whose only stamp is their finish.
        let end = s.finished_at.unwrap_or(s.last);
        let start = if s.phases.is_empty() {
            s.wall_us.map_or(s.first, |w| end.saturating_sub(w))
        } else {
            s.first.min(s.phases[0].1)
        };
        let mut node = SpanNode {
            name,
            cat: "operator",
            kind: None,
            arg: 0,
            start_us: start.min(end),
            end_us: end,
            track: Track::Operator(op),
            children: Vec::new(),
        };
        for &(p, lo, hi) in &s.phases {
            node.children.push(SpanNode {
                name: format!("phase {}", p.name()),
                cat: "phase",
                kind: None,
                arg: 0,
                start_us: lo,
                end_us: hi,
                track: Track::Operator(op),
                children: Vec::new(),
            });
        }
        for &(w, lo, hi) in &s.workers {
            node.children.push(SpanNode {
                name: format!("worker {w}"),
                cat: "worker",
                kind: None,
                arg: w,
                start_us: lo,
                end_us: hi,
                track: Track::Worker { op, worker: w },
                children: Vec::new(),
            });
        }
        out.push(node);
    }
    out.sort_by_key(|n| (n.start_us, n.end_us));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, at_us: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent { seq, at_us, kind }
    }

    fn start(seq: u64, at: u64, span: u32, parent: u32, kind: SpanKind, arg: u32) -> TraceEvent {
        ev(
            seq,
            at,
            TraceEventKind::SpanStart {
                span,
                parent,
                kind,
                arg,
            },
        )
    }

    fn end(seq: u64, at: u64, span: u32) -> TraceEvent {
        ev(seq, at, TraceEventKind::SpanEnd { span })
    }

    /// submit[0,50] → queue_wait[50,200] → dispatch[200,900] →
    /// backoff[900,1100] → queue_wait[1100,1150] → dispatch[1150,1900] →
    /// finalize[1900,2000]; root [0,2000].
    fn retried_lifecycle() -> Vec<TraceEvent> {
        vec![
            start(0, 0, 0, NO_PARENT, SpanKind::Query, 0),
            start(1, 0, 1, 0, SpanKind::Submit, 0),
            start(2, 10, 2, 1, SpanKind::JournalAppend, 0),
            end(3, 40, 2),
            end(4, 50, 1),
            start(5, 50, 3, 0, SpanKind::QueueWait, 0),
            end(6, 200, 3),
            start(7, 200, 4, 0, SpanKind::Dispatch, 0),
            end(8, 900, 4),
            start(9, 900, 5, 0, SpanKind::BackoffPark, 1),
            end(10, 1100, 5),
            start(11, 1100, 6, 0, SpanKind::QueueWait, 1),
            end(12, 1150, 6),
            start(13, 1150, 7, 0, SpanKind::Dispatch, 1),
            end(14, 1900, 7),
            start(15, 1900, 8, 0, SpanKind::Finalize, 0),
            end(16, 2000, 8),
            end(17, 2000, 0),
        ]
    }

    #[test]
    fn lifecycle_tree_is_gapless_and_totals_reconcile() {
        let tree = SpanTree::from_events(&retried_lifecycle(), &[]);
        assert_eq!(tree.root.name, "query");
        assert_eq!(tree.root.duration_us(), 2000);
        assert_eq!(tree.root.children.len(), 7);
        // Gapless: each direct child starts where the previous ended.
        let mut cursor = tree.root.start_us;
        for c in &tree.root.children {
            assert_eq!(c.start_us, cursor, "gap before {}", c.name);
            cursor = c.end_us;
        }
        assert_eq!(cursor, tree.root.end_us);
        let t = tree.lifecycle_totals();
        assert_eq!(t.submit_us, 50);
        assert_eq!(t.queue_wait_us, 150 + 50);
        assert_eq!(t.backoff_us, 200);
        assert_eq!(t.exec_us, 700 + 750);
        assert_eq!(t.finalize_us, 100);
        assert_eq!(t.attempts, 2);
        assert_eq!(
            t.submit_us + t.queue_wait_us + t.backoff_us + t.exec_us + t.finalize_us,
            t.total_us
        );
        assert!(tree.nesting_violations().is_empty());
        // The journal-append child nests inside submit.
        let submit = &tree.root.children[0];
        assert_eq!(submit.name, "submit");
        assert_eq!(submit.children.len(), 1);
        assert_eq!(submit.children[0].name, "journal_append");
    }

    #[test]
    fn unclosed_spans_end_at_stream_max() {
        let events = vec![
            start(0, 0, 0, NO_PARENT, SpanKind::Query, 0),
            start(1, 10, 1, 0, SpanKind::QueueWait, 0),
            ev(2, 500, TraceEventKind::QueryFinished { rows: 1 }),
        ];
        let tree = SpanTree::from_events(&events, &[]);
        assert_eq!(tree.root.end_us, 500);
        assert_eq!(tree.root.children[0].end_us, 500);
    }

    #[test]
    fn exec_trace_derives_operator_phase_and_worker_spans() {
        use qprog_exec::trace::Phase::*;
        let events = vec![
            ev(0, 0, TraceEventKind::PipelineStarted { pipeline: 0 }),
            ev(
                1,
                5,
                TraceEventKind::PhaseTransition {
                    op: 1,
                    from: Init,
                    to: Build,
                },
            ),
            ev(
                2,
                100,
                TraceEventKind::PhaseTransition {
                    op: 1,
                    from: Build,
                    to: Probe,
                },
            ),
            ev(
                3,
                150,
                TraceEventKind::WorkerWallTime {
                    op: 1,
                    worker: 0,
                    busy_us: 90,
                },
            ),
            ev(
                4,
                200,
                TraceEventKind::OperatorFinished { op: 1, emitted: 9 },
            ),
            ev(
                5,
                210,
                TraceEventKind::OperatorWallTime {
                    op: 0,
                    wall_us: 180,
                },
            ),
            ev(
                6,
                210,
                TraceEventKind::OperatorFinished { op: 0, emitted: 50 },
            ),
            ev(7, 220, TraceEventKind::PipelineFinished { pipeline: 0 }),
            ev(8, 230, TraceEventKind::QueryFinished { rows: 9 }),
        ];
        let names = vec!["scan".to_string(), "hash_join".to_string()];
        let tree = SpanTree::from_events(&events, &names);
        assert_eq!(tree.root.name, "query");
        assert_eq!(tree.root.end_us, 230);
        let kid_names: Vec<&str> = tree.root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(kid_names, vec!["pipeline 0", "op hash_join", "op scan"]);
        let join = &tree.root.children[1];
        assert_eq!(join.start_us, 5);
        assert_eq!(join.end_us, 200);
        let phases: Vec<&str> = join.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(phases, vec!["phase build", "worker 0", "phase probe"]);
        // Worker interval reconstructed backwards from its busy time.
        assert_eq!(join.children[1].start_us, 60);
        assert_eq!(join.children[1].end_us, 150);
        // Phase-less scan widened backwards by its measured wall time.
        let scan = &tree.root.children[2];
        assert_eq!(scan.start_us, 30);
        assert_eq!(scan.end_us, 210);
        assert!(tree.nesting_violations().is_empty());
    }

    #[test]
    fn chrome_export_shape() {
        let tree = SpanTree::from_events(&retried_lifecycle(), &[]);
        let json = tree.to_chrome_json(42);
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"pid\":42"), "{json}");
        assert!(json.contains("\"name\":\"dispatch #2\""), "{json}");
        assert!(json.contains("\"name\":\"thread_name\""), "{json}");
        // The root covers the whole run.
        assert!(json.contains("\"ts\":0,\"dur\":2000"), "{json}");
    }

    #[test]
    fn children_are_clamped_into_parents() {
        // A worker whose reconstructed start precedes its operator's first
        // event must be pulled inside, keeping the tree strictly nested.
        let events = vec![
            ev(
                0,
                100,
                TraceEventKind::PhaseTransition {
                    op: 0,
                    from: Phase::Init,
                    to: Phase::Build,
                },
            ),
            ev(
                1,
                150,
                TraceEventKind::WorkerWallTime {
                    op: 0,
                    worker: 1,
                    busy_us: 10_000,
                },
            ),
            ev(
                2,
                200,
                TraceEventKind::OperatorFinished { op: 0, emitted: 1 },
            ),
        ];
        let tree = SpanTree::from_events(&events, &[]);
        assert!(tree.nesting_violations().is_empty(), "{tree:?}");
    }
}
