//! In-memory, block-structured storage for the `qprog` engine.
//!
//! The paper's framework needs three things from the storage layer:
//!
//! 1. **Block-level random samples**: table scans must be able to deliver a
//!    random sample of a requested size *first*, then the remainder of the
//!    table excluding the sampled blocks (§3, §5 of the paper). [`ScanOrder`]
//!    provides exactly that permutation of block ids.
//! 2. **Base-table statistics** for the optimizer's initial cardinality
//!    estimates (row counts, min/max, distinct counts, equi-width
//!    histograms) — see [`stats`].
//! 3. A **catalog** mapping table names to tables and their statistics —
//!    see [`catalog`].

pub mod block;
pub mod catalog;
pub mod sample;
pub mod stats;
pub mod table;

pub use block::{Block, BLOCK_CAPACITY};
pub use catalog::Catalog;
pub use sample::ScanOrder;
pub use stats::{ColumnStats, EquiWidthHistogram, TableStats};
pub use table::Table;
