//! In-memory tables.

use std::sync::Arc;

use qprog_types::{QError, QResult, Row, Schema, SchemaRef, Value};

use crate::block::{Block, BLOCK_CAPACITY};

/// A named, block-structured, in-memory table.
///
/// Rows are type-checked against the schema on insertion so that downstream
/// operators can rely on column types without re-validating.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: SchemaRef,
    blocks: Vec<Block>,
    num_rows: usize,
}

impl Table {
    /// An empty table with the given name and schema. Fields are qualified
    /// with the table name so that joins can disambiguate columns.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let name = name.into();
        let schema = schema.with_qualifier(&name).into_ref();
        Table {
            name,
            schema,
            blocks: Vec::new(),
            num_rows: 0,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema (fields qualified with the table name).
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Total number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Borrow a block by id.
    pub fn block(&self, id: usize) -> QResult<&Block> {
        self.blocks
            .get(id)
            .ok_or_else(|| QError::internal(format!("block {id} out of bounds")))
    }

    /// Append a row, validating arity and column types.
    pub fn push(&mut self, row: Row) -> QResult<()> {
        if row.arity() != self.schema.arity() {
            return Err(QError::schema(format!(
                "row arity {} does not match schema arity {} for table `{}`",
                row.arity(),
                self.schema.arity(),
                self.name
            )));
        }
        for (i, v) in row.values().iter().enumerate() {
            let field = self.schema.field(i)?;
            match v {
                Value::Null if field.nullable => {}
                Value::Null => {
                    return Err(QError::schema(format!(
                        "NULL in non-nullable column `{}` of `{}`",
                        field.name, self.name
                    )))
                }
                v if v.data_type() != field.data_type => {
                    return Err(QError::type_err(format!(
                        "column `{}` of `{}` expects {}, got {}",
                        field.name,
                        self.name,
                        field.data_type,
                        v.data_type()
                    )))
                }
                _ => {}
            }
        }
        if self.blocks.last().is_none_or(Block::is_full) {
            self.blocks.push(Block::new(self.schema.arity()));
        }
        self.blocks
            .last_mut()
            .expect("block just ensured")
            .push(row);
        self.num_rows += 1;
        Ok(())
    }

    /// Append many rows.
    pub fn extend(&mut self, rows: impl IntoIterator<Item = Row>) -> QResult<()> {
        for r in rows {
            self.push(r)?;
        }
        Ok(())
    }

    /// Iterate over all rows in storage order, materializing each from the
    /// columnar blocks (for tests, stats, and examples; scans read columns
    /// directly via [`Block::cols`]).
    pub fn iter(&self) -> impl Iterator<Item = Row> + '_ {
        self.blocks
            .iter()
            .flat_map(|b| (0..b.len()).map(|r| b.row(r).expect("in-bounds row")))
    }

    /// Materialize a row by global index (for tests and examples; scans use
    /// block-ordered iteration).
    pub fn row(&self, idx: usize) -> Option<Row> {
        let block = idx / BLOCK_CAPACITY;
        let offset = idx % BLOCK_CAPACITY;
        self.blocks.get(block).and_then(|b| b.row(offset))
    }

    /// Wrap in an [`Arc`] for registration in a catalog.
    pub fn into_shared(self) -> Arc<Table> {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qprog_types::{row, DataType, Field};

    fn two_col_table() -> Table {
        Table::new(
            "t",
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Utf8).with_nullable(true),
            ]),
        )
    }

    #[test]
    fn schema_is_qualified_with_table_name() {
        let t = two_col_table();
        assert_eq!(t.schema().index_of("t.a").unwrap(), 0);
    }

    #[test]
    fn push_validates_arity_and_types() {
        let mut t = two_col_table();
        t.push(row![1i64, "x"]).unwrap();
        assert!(t.push(row![1i64]).is_err());
        assert!(t.push(row!["bad", "x"]).is_err());
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn nullability_is_enforced() {
        let mut t = two_col_table();
        t.push(Row::new(vec![Value::Int64(1), Value::Null]))
            .unwrap();
        assert!(t
            .push(Row::new(vec![Value::Null, Value::str("x")]))
            .is_err());
    }

    #[test]
    fn rows_span_blocks() {
        let mut t = two_col_table();
        let n = BLOCK_CAPACITY * 2 + 10;
        for i in 0..n {
            t.push(row![i as i64, "r"]).unwrap();
        }
        assert_eq!(t.num_rows(), n);
        assert_eq!(t.num_blocks(), 3);
        assert_eq!(
            t.row(BLOCK_CAPACITY)
                .unwrap()
                .get(0)
                .unwrap()
                .as_i64()
                .unwrap(),
            BLOCK_CAPACITY as i64
        );
        // iteration preserves insertion order
        let collected: Vec<i64> = t
            .iter()
            .map(|r| r.get(0).unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(collected, (0..n as i64).collect::<Vec<_>>());
    }

    #[test]
    fn row_out_of_bounds_is_none() {
        let t = two_col_table();
        assert!(t.row(0).is_none());
    }
}
