//! Block-level random sampling for sample-first table scans.
//!
//! The paper (§3, §5 *Implementation*) requires table scans to first deliver
//! a block-level random sample of the base table, then scan the remainder
//! while excluding the already-delivered blocks ("a simple antijoin on
//! block-ids"). [`ScanOrder`] materializes that plan as a permutation of
//! block ids: a shuffled random prefix of `sample_blocks` ids followed by
//! the remaining ids in storage order.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use crate::table::Table;

/// The order in which a sample-first scan visits a table's blocks.
#[derive(Debug, Clone)]
pub struct ScanOrder {
    order: Vec<usize>,
    sample_blocks: usize,
}

impl ScanOrder {
    /// Storage-order scan (no sampling).
    pub fn sequential(num_blocks: usize) -> Self {
        ScanOrder {
            order: (0..num_blocks).collect(),
            sample_blocks: 0,
        }
    }

    /// Sample-first scan: a uniform random `fraction` of blocks (rounded up,
    /// clamped to the table size) is visited first in random order; the rest
    /// follow in storage order. Deterministic in `seed`.
    pub fn sample_first(num_blocks: usize, fraction: f64, seed: u64) -> Self {
        let fraction = fraction.clamp(0.0, 1.0);
        let k = ((num_blocks as f64 * fraction).ceil() as usize).min(num_blocks);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids: Vec<usize> = (0..num_blocks).collect();
        // Partial Fisher-Yates: the first k positions end up holding a
        // uniform random k-subset in random order.
        for i in 0..k {
            let j = rng.random_range(i..num_blocks);
            ids.swap(i, j);
        }
        let mut sampled: Vec<usize> = ids[..k].to_vec();
        sampled.shuffle(&mut rng);
        let mut in_sample = vec![false; num_blocks];
        for &b in &sampled {
            in_sample[b] = true;
        }
        let mut order = sampled;
        order.extend((0..num_blocks).filter(|&b| !in_sample[b]));
        ScanOrder {
            order,
            sample_blocks: k,
        }
    }

    /// Sample-first scan over a table.
    pub fn for_table(table: &Table, fraction: f64, seed: u64) -> Self {
        if fraction <= 0.0 {
            ScanOrder::sequential(table.num_blocks())
        } else {
            ScanOrder::sample_first(table.num_blocks(), fraction, seed)
        }
    }

    /// The visit order of block ids.
    pub fn blocks(&self) -> &[usize] {
        &self.order
    }

    /// How many leading blocks constitute the random sample.
    pub fn sample_blocks(&self) -> usize {
        self.sample_blocks
    }

    /// Split the visit order into `ways` contiguous chunks for
    /// partition-parallel scans. Concatenating the chunks in order yields
    /// the original visit order exactly, so a parallel scan that drains
    /// chunk `i` before chunk `i+1`'s output reproduces the serial row
    /// order. Chunks may be empty when `ways > num_blocks`; each chunk's
    /// `sample_blocks` covers the portion of the sample prefix it holds.
    pub fn split(&self, ways: usize) -> Vec<ScanOrder> {
        let ways = ways.max(1);
        let n = self.order.len();
        let base = n / ways;
        let extra = n % ways;
        let mut out = Vec::with_capacity(ways);
        let mut start = 0;
        for i in 0..ways {
            let len = base + usize::from(i < extra);
            let end = start + len;
            let sample = self.sample_blocks.clamp(start, end) - start;
            out.push(ScanOrder {
                order: self.order[start..end].to_vec(),
                sample_blocks: sample,
            });
            start = end;
        }
        out
    }
}

/// Uniform reservoir sample of `k` items from an iterator (Algorithm R).
///
/// Used by tests and by on-the-fly sampling when no precomputed block sample
/// exists.
pub fn reservoir_sample<T, I>(items: I, k: usize, seed: u64) -> Vec<T>
where
    I: IntoIterator<Item = T>,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    for (i, item) in items.into_iter().enumerate() {
        if reservoir.len() < k {
            reservoir.push(item);
        } else {
            let j = rng.random_range(0..=i);
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn sequential_is_identity() {
        let o = ScanOrder::sequential(4);
        assert_eq!(o.blocks(), &[0, 1, 2, 3]);
        assert_eq!(o.sample_blocks(), 0);
    }

    #[test]
    fn sample_first_is_a_permutation() {
        for &n in &[0usize, 1, 7, 100] {
            for &f in &[0.0, 0.1, 0.5, 1.0] {
                let o = ScanOrder::sample_first(n, f, 42);
                let seen: HashSet<usize> = o.blocks().iter().copied().collect();
                assert_eq!(seen.len(), n, "n={n} f={f}");
                assert!(o.blocks().iter().all(|&b| b < n));
            }
        }
    }

    #[test]
    fn sample_size_matches_fraction() {
        let o = ScanOrder::sample_first(100, 0.1, 1);
        assert_eq!(o.sample_blocks(), 10);
        let o = ScanOrder::sample_first(100, 1.0, 1);
        assert_eq!(o.sample_blocks(), 100);
        // rounds up
        let o = ScanOrder::sample_first(100, 0.001, 1);
        assert_eq!(o.sample_blocks(), 1);
    }

    #[test]
    fn remainder_is_in_storage_order() {
        let o = ScanOrder::sample_first(50, 0.2, 7);
        let rest = &o.blocks()[o.sample_blocks()..];
        let mut sorted = rest.to_vec();
        sorted.sort_unstable();
        assert_eq!(rest, sorted.as_slice());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = ScanOrder::sample_first(64, 0.25, 9);
        let b = ScanOrder::sample_first(64, 0.25, 9);
        let c = ScanOrder::sample_first(64, 0.25, 10);
        assert_eq!(a.blocks(), b.blocks());
        assert_ne!(a.blocks(), c.blocks());
    }

    #[test]
    fn samples_are_roughly_uniform() {
        // Each block should appear in the sample prefix with probability
        // ~k/n across seeds.
        let n = 20;
        let mut counts = vec![0u32; n];
        for seed in 0..2000 {
            let o = ScanOrder::sample_first(n, 0.25, seed);
            for &b in &o.blocks()[..o.sample_blocks()] {
                counts[b] += 1;
            }
        }
        // expected 2000 * 5/20 = 500 per block; allow generous slack
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (350..=650).contains(&c),
                "block {b} sampled {c} times, expected ~500"
            );
        }
    }

    #[test]
    fn split_concatenation_reproduces_visit_order() {
        let o = ScanOrder::sample_first(53, 0.3, 11);
        for ways in [1usize, 2, 3, 4, 7, 53, 60] {
            let parts = o.split(ways);
            assert_eq!(parts.len(), ways);
            let cat: Vec<usize> = parts
                .iter()
                .flat_map(|p| p.blocks().iter().copied())
                .collect();
            assert_eq!(cat, o.blocks(), "ways={ways}");
            let sample_sum: usize = parts.iter().map(|p| p.sample_blocks()).sum();
            assert_eq!(sample_sum, o.sample_blocks(), "ways={ways}");
            // Chunk sizes are balanced within one block.
            let (min, max) = parts
                .iter()
                .map(|p| p.blocks().len())
                .fold((usize::MAX, 0), |(lo, hi), l| (lo.min(l), hi.max(l)));
            assert!(max - min <= 1, "ways={ways}");
        }
    }

    #[test]
    fn split_sample_prefix_stays_a_prefix_per_chunk() {
        // Every chunk's sample_blocks must cover exactly its slice of the
        // global sample prefix: chunks fully inside the prefix are all
        // sample, chunks past it have none.
        let o = ScanOrder::sample_first(40, 0.5, 3);
        let parts = o.split(4);
        let mut covered = 0;
        for p in &parts {
            let start = covered;
            let end = covered + p.blocks().len();
            let expect = o.sample_blocks().clamp(start, end) - start;
            assert_eq!(p.sample_blocks(), expect);
            covered = end;
        }
    }

    #[test]
    fn split_zero_ways_is_one_chunk() {
        let o = ScanOrder::sequential(5);
        let parts = o.split(0);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].blocks(), o.blocks());
    }

    #[test]
    fn reservoir_sample_size_and_membership() {
        let s = reservoir_sample(0..1000, 10, 3);
        assert_eq!(s.len(), 10);
        assert!(s.iter().all(|&x| x < 1000));
        let small = reservoir_sample(0..5, 10, 3);
        assert_eq!(small.len(), 5);
    }

    #[test]
    fn reservoir_sample_is_roughly_uniform() {
        let mut hits = [0u32; 10];
        for seed in 0..5000 {
            for x in reservoir_sample(0..10, 3, seed) {
                hits[x] += 1;
            }
        }
        // expected 5000 * 3/10 = 1500
        for (i, &h) in hits.iter().enumerate() {
            assert!(
                (1300..=1700).contains(&h),
                "item {i} sampled {h} times, expected ~1500"
            );
        }
    }
}
