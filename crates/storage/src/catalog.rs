//! The system catalog: table registry plus statistics.

use std::collections::BTreeMap;
use std::sync::Arc;

use qprog_types::{QError, QResult};

use crate::stats::TableStats;
use crate::table::Table;

/// Maps table names to tables and their ANALYZE-time statistics.
///
/// Statistics are computed eagerly on registration, mirroring a freshly
/// analyzed database — the paper assumes base-table sizes are "usually
/// available in the system catalogs" (§3).
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Table>>,
    stats: BTreeMap<String, Arc<TableStats>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table, computing its statistics. Replaces any existing
    /// table of the same name.
    pub fn register(&mut self, table: Table) -> QResult<()> {
        let stats = TableStats::analyze(&table)?;
        let name = table.name().to_string();
        self.tables.insert(name.clone(), Arc::new(table));
        self.stats.insert(name, Arc::new(stats));
        Ok(())
    }

    /// Register an already-shared table.
    pub fn register_shared(&mut self, table: Arc<Table>) -> QResult<()> {
        let stats = TableStats::analyze(&table)?;
        let name = table.name().to_string();
        self.tables.insert(name.clone(), table);
        self.stats.insert(name, Arc::new(stats));
        Ok(())
    }

    /// Look up a table by name (case-insensitive).
    pub fn table(&self, name: &str) -> QResult<Arc<Table>> {
        self.lookup(&self.tables, name)
            .ok_or_else(|| QError::TableNotFound(name.to_string()))
    }

    /// Look up a table's statistics by name (case-insensitive).
    pub fn stats(&self, name: &str) -> QResult<Arc<TableStats>> {
        self.lookup(&self.stats, name)
            .ok_or_else(|| QError::TableNotFound(name.to_string()))
    }

    fn lookup<T: Clone>(&self, map: &BTreeMap<String, T>, name: &str) -> Option<T> {
        map.get(name).cloned().or_else(|| {
            map.iter()
                .find(|(k, _)| k.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.clone())
        })
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True iff no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qprog_types::{row, DataType, Field, Schema};

    fn small_table(name: &str) -> Table {
        let mut t = Table::new(name, Schema::new(vec![Field::new("a", DataType::Int64)]));
        for i in 0..10 {
            t.push(row![i]).unwrap();
        }
        t
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.register(small_table("orders")).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.table("orders").unwrap().num_rows(), 10);
        assert_eq!(c.stats("orders").unwrap().row_count, 10);
        assert!(c.table("lineitem").is_err());
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let mut c = Catalog::new();
        c.register(small_table("Orders")).unwrap();
        assert!(c.table("orders").is_ok());
        assert!(c.stats("ORDERS").is_ok());
    }

    #[test]
    fn reregistration_replaces() {
        let mut c = Catalog::new();
        c.register(small_table("t")).unwrap();
        let mut bigger = small_table("t");
        bigger.push(row![99i64]).unwrap();
        c.register(bigger).unwrap();
        assert_eq!(c.table("t").unwrap().num_rows(), 11);
        assert_eq!(c.stats("t").unwrap().row_count, 11);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn table_names_sorted() {
        let mut c = Catalog::new();
        c.register(small_table("b")).unwrap();
        c.register(small_table("a")).unwrap();
        assert_eq!(c.table_names(), vec!["a", "b"]);
    }
}
