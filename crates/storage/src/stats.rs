//! Base-table statistics for optimizer cardinality estimates.
//!
//! These statistics are intentionally "optimizer-grade": equi-width
//! histograms with a fixed bucket budget, uniformity assumed inside buckets
//! and independence assumed across columns. Under the Zipfian skew used in
//! the paper's evaluation they produce the badly wrong initial estimates
//! (e.g. the ~13× error in Fig. 4(a)) that motivate online refinement.

use std::collections::HashSet;

use qprog_types::{DataType, Key, QResult, Value};

use crate::table::Table;

/// Default number of equi-width histogram buckets.
pub const DEFAULT_BUCKETS: usize = 64;

/// An equi-width histogram over an integer column.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiWidthHistogram {
    min: i64,
    max: i64,
    counts: Vec<u64>,
    total: u64,
}

impl EquiWidthHistogram {
    /// Build from integer observations with the given bucket budget.
    /// Returns `None` when there are no (non-null integer) observations.
    pub fn build(values: impl IntoIterator<Item = i64>, buckets: usize) -> Option<Self> {
        let vals: Vec<i64> = values.into_iter().collect();
        if vals.is_empty() {
            return None;
        }
        let min = *vals.iter().min().expect("non-empty");
        let max = *vals.iter().max().expect("non-empty");
        let buckets = buckets.max(1);
        let mut h = EquiWidthHistogram {
            min,
            max,
            counts: vec![0; buckets],
            total: 0,
        };
        for v in vals {
            let b = h.bucket_of(v);
            h.counts[b] += 1;
            h.total += 1;
        }
        Some(h)
    }

    fn width(&self) -> f64 {
        // +1: the domain [min, max] is inclusive on both ends.
        ((self.max - self.min) as f64 + 1.0) / self.counts.len() as f64
    }

    fn bucket_of(&self, v: i64) -> usize {
        let w = self.width();
        (((v - self.min) as f64 / w) as usize).min(self.counts.len() - 1)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observed minimum / maximum.
    pub fn bounds(&self) -> (i64, i64) {
        (self.min, self.max)
    }

    /// Selectivity of `col = v` assuming uniformity inside the bucket.
    pub fn eq_selectivity(&self, v: i64, ndv: u64) -> f64 {
        if v < self.min || v > self.max || self.total == 0 {
            return 0.0;
        }
        let b = self.bucket_of(v);
        let bucket_frac = self.counts[b] as f64 / self.total as f64;
        // Assume the column's distinct values are spread evenly over the
        // buckets, so a bucket holds ndv / buckets of them.
        let per_bucket_ndv = (ndv as f64 / self.counts.len() as f64).max(1.0);
        bucket_frac / per_bucket_ndv
    }

    /// Selectivity of `col < v` with linear interpolation inside the bucket.
    pub fn lt_selectivity(&self, v: i64) -> f64 {
        if self.total == 0 || v <= self.min {
            return 0.0;
        }
        if v > self.max {
            return 1.0;
        }
        let b = self.bucket_of(v);
        let below: u64 = self.counts[..b].iter().sum();
        let w = self.width();
        let bucket_lo = self.min as f64 + b as f64 * w;
        let frac_in_bucket = ((v as f64 - bucket_lo) / w).clamp(0.0, 1.0);
        (below as f64 + frac_in_bucket * self.counts[b] as f64) / self.total as f64
    }

    /// Bucket counts (for inspection / tests).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

/// Per-column statistics.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Exact distinct-value count at ANALYZE time.
    pub ndv: u64,
    /// Number of NULLs.
    pub null_count: u64,
    /// Equi-width histogram (integer columns only).
    pub histogram: Option<EquiWidthHistogram>,
}

impl ColumnStats {
    /// Selectivity of `col = v` under these stats; falls back to `1/ndv`
    /// when no histogram exists.
    pub fn eq_selectivity(&self, v: &Value) -> f64 {
        if self.ndv == 0 {
            return 0.0;
        }
        match (&self.histogram, v) {
            (Some(h), Value::Int64(i)) => h.eq_selectivity(*i, self.ndv),
            _ => 1.0 / self.ndv as f64,
        }
    }
}

/// Whole-table statistics.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Exact row count at ANALYZE time.
    pub row_count: u64,
    /// Per-column stats, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Compute statistics for a table (full scan, exact NDV).
    pub fn analyze(table: &Table) -> QResult<TableStats> {
        let arity = table.schema().arity();
        let mut ndv_sets: Vec<HashSet<Key>> = (0..arity).map(|_| HashSet::new()).collect();
        let mut null_counts = vec![0u64; arity];
        let mut int_cols: Vec<Vec<i64>> = (0..arity).map(|_| Vec::new()).collect();
        let int_col_mask: Vec<bool> = (0..arity)
            .map(|i| {
                table
                    .schema()
                    .field(i)
                    .map(|f| f.data_type == DataType::Int64)
                    .unwrap_or(false)
            })
            .collect();

        for row in table.iter() {
            for (i, v) in row.values().iter().enumerate() {
                if v.is_null() {
                    null_counts[i] += 1;
                    continue;
                }
                if let Ok(k) = Key::from_value(v) {
                    ndv_sets[i].insert(k);
                }
                if int_col_mask[i] {
                    if let Value::Int64(x) = v {
                        int_cols[i].push(*x);
                    }
                }
            }
        }

        let columns = (0..arity)
            .map(|i| ColumnStats {
                ndv: ndv_sets[i].len() as u64,
                null_count: null_counts[i],
                histogram: if int_col_mask[i] {
                    EquiWidthHistogram::build(int_cols[i].iter().copied(), DEFAULT_BUCKETS)
                } else {
                    None
                },
            })
            .collect();

        Ok(TableStats {
            row_count: table.num_rows() as u64,
            columns,
        })
    }

    /// Stats for column `idx`, if present.
    pub fn column(&self, idx: usize) -> Option<&ColumnStats> {
        self.columns.get(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qprog_types::{row, DataType, Field, Schema};

    fn table_with_ints(vals: &[i64]) -> Table {
        let mut t = Table::new("t", Schema::new(vec![Field::new("a", DataType::Int64)]));
        for &v in vals {
            t.push(row![v]).unwrap();
        }
        t
    }

    #[test]
    fn histogram_build_and_totals() {
        let h = EquiWidthHistogram::build(0..100, 10).unwrap();
        assert_eq!(h.total(), 100);
        assert_eq!(h.bounds(), (0, 99));
        assert_eq!(h.counts(), &[10; 10]);
        assert!(EquiWidthHistogram::build(std::iter::empty(), 10).is_none());
    }

    #[test]
    fn histogram_single_value_domain() {
        let h = EquiWidthHistogram::build(std::iter::repeat_n(5, 10), 4).unwrap();
        assert_eq!(h.total(), 10);
        assert_eq!(h.eq_selectivity(5, 1), 1.0);
        assert_eq!(h.eq_selectivity(6, 1), 0.0);
    }

    #[test]
    fn lt_selectivity_interpolates() {
        let h = EquiWidthHistogram::build(0..1000, 10).unwrap();
        assert_eq!(h.lt_selectivity(0), 0.0);
        assert_eq!(h.lt_selectivity(1001), 1.0);
        let half = h.lt_selectivity(500);
        assert!((half - 0.5).abs() < 0.02, "got {half}");
        let q = h.lt_selectivity(250);
        assert!((q - 0.25).abs() < 0.02, "got {q}");
    }

    #[test]
    fn eq_selectivity_uniform_column() {
        // 1000 rows, values 0..100 → eq selectivity ≈ 1/100.
        let vals: Vec<i64> = (0..1000).map(|i| i % 100).collect();
        let h = EquiWidthHistogram::build(vals.iter().copied(), 10).unwrap();
        let s = h.eq_selectivity(42, 100);
        assert!((s - 0.01).abs() < 0.003, "got {s}");
    }

    #[test]
    fn eq_selectivity_is_skew_blind() {
        // 90% of the mass on value 0, but the histogram averages it over
        // the bucket — the known weakness the paper exploits.
        let mut vals = vec![0i64; 900];
        vals.extend(1..=100);
        let h = EquiWidthHistogram::build(vals.iter().copied(), 10).unwrap();
        let hot = h.eq_selectivity(0, 101);
        assert!(hot < 0.5, "histogram should underestimate the hot value");
    }

    #[test]
    fn analyze_computes_ndv_nulls_and_histograms() {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("s", DataType::Utf8).with_nullable(true),
            ]),
        );
        t.push(row![1i64, "x"]).unwrap();
        t.push(row![1i64, "y"]).unwrap();
        t.push(Row::new(vec![Value::Int64(2), Value::Null]))
            .unwrap();
        let st = TableStats::analyze(&t).unwrap();
        assert_eq!(st.row_count, 3);
        assert_eq!(st.columns[0].ndv, 2);
        assert_eq!(st.columns[1].ndv, 2);
        assert_eq!(st.columns[1].null_count, 1);
        assert!(st.columns[0].histogram.is_some());
        assert!(st.columns[1].histogram.is_none());
    }

    #[test]
    fn column_stats_fallback_selectivity() {
        let t = table_with_ints(&[1, 2, 3, 4]);
        let st = TableStats::analyze(&t).unwrap();
        let c = st.column(0).unwrap();
        let s = c.eq_selectivity(&Value::Int64(2));
        assert!(s > 0.0 && s <= 1.0);
        // string value on int column → 1/ndv fallback
        assert!((c.eq_selectivity(&Value::str("x")) - 0.25).abs() < 1e-9);
    }

    use qprog_types::Row;
}
