//! Fixed-capacity columnar blocks.
//!
//! Tables are stored as a sequence of blocks so that scans can implement the
//! paper's *block-level random sampling*: the sampled unit is a block, not a
//! row, mirroring how a disk-resident system would sample pages.
//!
//! Blocks are column-major — one `Vec<Value>` per column — so the
//! vectorized scan copies contiguous column slices straight into a
//! [`RowBatch`](qprog_types::RowBatch) without materializing intermediate
//! rows.

use qprog_types::{Row, Value};

/// Number of rows per block.
///
/// Small enough that a sample fraction of a few percent still selects many
/// blocks (keeping the sample statistically useful), large enough that
/// per-block bookkeeping is negligible.
pub const BLOCK_CAPACITY: usize = 256;

/// A columnar block of at most [`BLOCK_CAPACITY`] rows.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Column-major storage: `cols[c][r]` is row `r`'s value in column `c`.
    cols: Vec<Vec<Value>>,
    len: usize,
}

impl Block {
    /// An empty block of `arity` columns with preallocated capacity.
    pub fn new(arity: usize) -> Self {
        Block {
            cols: (0..arity)
                .map(|_| Vec::with_capacity(BLOCK_CAPACITY))
                .collect(),
            len: 0,
        }
    }

    /// Number of rows currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the block holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True iff the block cannot accept more rows.
    pub fn is_full(&self) -> bool {
        self.len >= BLOCK_CAPACITY
    }

    /// Append a row. Panics if the block is full — the table layer checks
    /// `is_full` before pushing, so a panic indicates a bug there.
    pub fn push(&mut self, row: Row) {
        assert!(!self.is_full(), "push into full block");
        debug_assert_eq!(row.arity(), self.cols.len());
        for (col, v) in self.cols.iter_mut().zip(row.into_values()) {
            col.push(v);
        }
        self.len += 1;
    }

    /// Borrow the column-major storage (`arity` vectors of `len` values
    /// each) — the zero-copy surface the vectorized scan reads through
    /// [`RowBatch::extend_from_cols`](qprog_types::RowBatch::extend_from_cols).
    pub fn cols(&self) -> &[Vec<Value>] {
        &self.cols
    }

    /// Borrow one column's values.
    pub fn col(&self, c: usize) -> &[Value] {
        &self.cols[c]
    }

    /// Materialize one row by offset within the block.
    pub fn row(&self, offset: usize) -> Option<Row> {
        if offset >= self.len {
            return None;
        }
        Some(Row::new(
            self.cols.iter().map(|c| c[offset].clone()).collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qprog_types::row;

    #[test]
    fn push_and_read() {
        let mut b = Block::new(1);
        assert!(b.is_empty());
        b.push(row![1i64]);
        b.push(row![2i64]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.row(1).unwrap().get(0).unwrap().as_i64().unwrap(), 2);
        assert!(b.row(2).is_none());
        assert_eq!(b.col(0).len(), 2);
        assert_eq!(b.cols().len(), 1);
    }

    #[test]
    fn fills_to_capacity() {
        let mut b = Block::new(1);
        for i in 0..BLOCK_CAPACITY {
            assert!(!b.is_full());
            b.push(row![i as i64]);
        }
        assert!(b.is_full());
        assert_eq!(b.len(), BLOCK_CAPACITY);
    }

    #[test]
    #[should_panic(expected = "full block")]
    fn push_past_capacity_panics() {
        let mut b = Block::new(1);
        for i in 0..=BLOCK_CAPACITY {
            b.push(row![i as i64]);
        }
    }
}
