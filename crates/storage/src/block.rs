//! Fixed-capacity row blocks.
//!
//! Tables are stored as a sequence of blocks so that scans can implement the
//! paper's *block-level random sampling*: the sampled unit is a block, not a
//! row, mirroring how a disk-resident system would sample pages.

use qprog_types::Row;

/// Number of rows per block.
///
/// Small enough that a sample fraction of a few percent still selects many
/// blocks (keeping the sample statistically useful), large enough that
/// per-block bookkeeping is negligible.
pub const BLOCK_CAPACITY: usize = 256;

/// A block of at most [`BLOCK_CAPACITY`] rows.
#[derive(Debug, Clone, Default)]
pub struct Block {
    rows: Vec<Row>,
}

impl Block {
    /// An empty block with preallocated capacity.
    pub fn new() -> Self {
        Block {
            rows: Vec::with_capacity(BLOCK_CAPACITY),
        }
    }

    /// Number of rows currently stored.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the block holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// True iff the block cannot accept more rows.
    pub fn is_full(&self) -> bool {
        self.rows.len() >= BLOCK_CAPACITY
    }

    /// Append a row. Panics if the block is full — the table layer checks
    /// `is_full` before pushing, so a panic indicates a bug there.
    pub fn push(&mut self, row: Row) {
        assert!(!self.is_full(), "push into full block");
        self.rows.push(row);
    }

    /// Borrow the rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Borrow one row by offset within the block.
    pub fn row(&self, offset: usize) -> Option<&Row> {
        self.rows.get(offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qprog_types::row;

    #[test]
    fn push_and_read() {
        let mut b = Block::new();
        assert!(b.is_empty());
        b.push(row![1i64]);
        b.push(row![2i64]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.row(1).unwrap().get(0).unwrap().as_i64().unwrap(), 2);
        assert!(b.row(2).is_none());
    }

    #[test]
    fn fills_to_capacity() {
        let mut b = Block::new();
        for i in 0..BLOCK_CAPACITY {
            assert!(!b.is_full());
            b.push(row![i as i64]);
        }
        assert!(b.is_full());
        assert_eq!(b.len(), BLOCK_CAPACITY);
    }

    #[test]
    #[should_panic(expected = "full block")]
    fn push_past_capacity_panics() {
        let mut b = Block::new();
        for i in 0..=BLOCK_CAPACITY {
            b.push(row![i as i64]);
        }
    }
}
