//! Recursive-descent parser for the supported SQL subset.

use qprog_types::{QError, QResult};

use crate::ast::*;
use crate::lexer::{tokenize, Token};

/// Parse one SELECT statement.
pub fn parse(sql: &str) -> QResult<Query> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    // allow a trailing semicolon
    if p.peek_is(&Token::Semicolon) {
        p.advance();
    }
    if p.pos != p.tokens.len() {
        return Err(QError::parse(format!(
            "unexpected trailing tokens starting at {:?}",
            p.tokens[p.pos]
        )));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_is(&self, t: &Token) -> bool {
        self.peek() == Some(t)
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_keyword(kw))
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> QResult<()> {
        if self.peek_keyword(kw) {
            self.advance();
            Ok(())
        } else {
            Err(QError::parse(format!(
                "expected `{kw}`, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Token) -> QResult<()> {
        if self.peek() == Some(&t) {
            self.advance();
            Ok(())
        } else {
            Err(QError::parse(format!(
                "expected {t:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> QResult<String> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(QError::parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    /// `name` or `qualifier.name`.
    fn column_name(&mut self) -> QResult<String> {
        let first = self.ident()?;
        if self.peek_is(&Token::Dot) {
            self.advance();
            let second = self.ident()?;
            Ok(format!("{first}.{second}"))
        } else {
            Ok(first)
        }
    }

    fn query(&mut self) -> QResult<Query> {
        self.expect_keyword("select")?;
        let distinct = self.eat_keyword("distinct");
        let select = self.select_list()?;
        self.expect_keyword("from")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let join_type = if self.eat_keyword("inner") {
                self.expect_keyword("join")?;
                JoinType::Inner
            } else if self.eat_keyword("left") {
                self.eat_keyword("outer");
                self.expect_keyword("join")?;
                JoinType::LeftOuter
            } else if self.eat_keyword("join") {
                JoinType::Inner
            } else {
                break;
            };
            let table = self.table_ref()?;
            self.expect_keyword("on")?;
            let left = self.column_name()?;
            self.expect(Token::Eq)?;
            let right = self.column_name()?;
            joins.push(JoinClause {
                table,
                on: (left, right),
                join_type,
            });
        }
        let where_clause = if self.eat_keyword("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            group_by.push(self.column_name()?);
            while self.peek_is(&Token::Comma) {
                self.advance();
                group_by.push(self.column_name()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                let column = self.column_name()?;
                let ascending = if self.eat_keyword("desc") {
                    false
                } else {
                    self.eat_keyword("asc");
                    true
                };
                order_by.push(OrderItem { column, ascending });
                if self.peek_is(&Token::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("limit") {
            match self.advance() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(QError::parse(format!(
                        "LIMIT expects a non-negative integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Query {
            distinct,
            select,
            from,
            joins,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn table_ref(&mut self) -> QResult<TableRef> {
        let table = self.ident()?;
        let alias = if self.eat_keyword("as") {
            Some(self.ident()?)
        } else if let Some(Token::Ident(s)) = self.peek() {
            // bare alias, unless it's a clause keyword
            const CLAUSES: [&str; 11] = [
                "join", "inner", "left", "outer", "on", "where", "group", "order", "limit",
                "select", "from",
            ];
            if CLAUSES.iter().any(|k| s.eq_ignore_ascii_case(k)) {
                None
            } else {
                Some(self.ident()?)
            }
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    fn select_list(&mut self) -> QResult<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if self.peek_is(&Token::Comma) {
                self.advance();
            } else {
                break;
            }
        }
        Ok(items)
    }

    fn select_item(&mut self) -> QResult<SelectItem> {
        if self.peek_is(&Token::Star) {
            self.advance();
            return Ok(SelectItem::Wildcard);
        }
        // aggregate call?
        if let Some(Token::Ident(name)) = self.peek() {
            let func = match name.to_ascii_lowercase().as_str() {
                "count" => Some(AggCall::Count),
                "sum" => Some(AggCall::Sum),
                "min" => Some(AggCall::Min),
                "max" => Some(AggCall::Max),
                "avg" => Some(AggCall::Avg),
                _ => None,
            };
            if let Some(mut func) = func {
                if self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                    self.advance(); // func name
                    self.advance(); // (
                    let column = if self.peek_is(&Token::Star) {
                        if func != AggCall::Count {
                            return Err(QError::parse("only COUNT accepts `*`"));
                        }
                        func = AggCall::CountStar;
                        self.advance();
                        None
                    } else {
                        Some(self.column_name()?)
                    };
                    self.expect(Token::RParen)?;
                    let alias = self.optional_alias()?;
                    return Ok(SelectItem::Aggregate {
                        func,
                        column,
                        alias,
                    });
                }
            }
        }
        let expr = self.expr()?;
        let alias = self.optional_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn optional_alias(&mut self) -> QResult<Option<String>> {
        if self.eat_keyword("as") {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    // ---- expression precedence climbing ----

    fn expr(&mut self) -> QResult<AstExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> QResult<AstExpr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("or") {
            let right = self.and_expr()?;
            left = AstExpr::Binary {
                op: AstBinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> QResult<AstExpr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("and") {
            let right = self.not_expr()?;
            left = AstExpr::Binary {
                op: AstBinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> QResult<AstExpr> {
        if self.eat_keyword("not") {
            Ok(AstExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> QResult<AstExpr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_keyword("is") {
            let negate = self.eat_keyword("not");
            self.expect_keyword("null")?;
            return Ok(AstExpr::IsNull {
                expr: Box::new(left),
                negate,
            });
        }
        // [NOT] BETWEEN a AND b → (left >= a AND left <= b)
        let negated = if self.peek_keyword("not") {
            // lookahead: only consume NOT if BETWEEN/IN follows
            match self.tokens.get(self.pos + 1) {
                Some(t) if t.is_keyword("between") || t.is_keyword("in") => {
                    self.advance();
                    true
                }
                _ => false,
            }
        } else {
            false
        };
        if self.eat_keyword("between") {
            let lo = self.additive()?;
            self.expect_keyword("and")?;
            let hi = self.additive()?;
            let range = AstExpr::Binary {
                op: AstBinOp::And,
                left: Box::new(AstExpr::Binary {
                    op: AstBinOp::GtEq,
                    left: Box::new(left.clone()),
                    right: Box::new(lo),
                }),
                right: Box::new(AstExpr::Binary {
                    op: AstBinOp::LtEq,
                    left: Box::new(left),
                    right: Box::new(hi),
                }),
            };
            return Ok(if negated {
                AstExpr::Not(Box::new(range))
            } else {
                range
            });
        }
        // [NOT] IN (v, v, ...) → OR chain of equalities
        if self.eat_keyword("in") {
            self.expect(Token::LParen)?;
            let mut alts = Vec::new();
            loop {
                alts.push(self.additive()?);
                if self.peek_is(&Token::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
            self.expect(Token::RParen)?;
            let mut it = alts.into_iter();
            let first = it.next().ok_or_else(|| QError::parse("empty IN list"))?;
            let mut ors = AstExpr::Binary {
                op: AstBinOp::Eq,
                left: Box::new(left.clone()),
                right: Box::new(first),
            };
            for alt in it {
                ors = AstExpr::Binary {
                    op: AstBinOp::Or,
                    left: Box::new(ors),
                    right: Box::new(AstExpr::Binary {
                        op: AstBinOp::Eq,
                        left: Box::new(left.clone()),
                        right: Box::new(alt),
                    }),
                };
            }
            return Ok(if negated {
                AstExpr::Not(Box::new(ors))
            } else {
                ors
            });
        }
        let op = match self.peek() {
            Some(Token::Eq) => AstBinOp::Eq,
            Some(Token::NotEq) => AstBinOp::NotEq,
            Some(Token::Lt) => AstBinOp::Lt,
            Some(Token::LtEq) => AstBinOp::LtEq,
            Some(Token::Gt) => AstBinOp::Gt,
            Some(Token::GtEq) => AstBinOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.additive()?;
        Ok(AstExpr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    fn additive(&mut self) -> QResult<AstExpr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => AstBinOp::Add,
                Some(Token::Minus) => AstBinOp::Sub,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.multiplicative()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn multiplicative(&mut self) -> QResult<AstExpr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => AstBinOp::Mul,
                Some(Token::Slash) => AstBinOp::Div,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.unary()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn unary(&mut self) -> QResult<AstExpr> {
        if self.peek_is(&Token::Minus) {
            self.advance();
            return match self.advance() {
                Some(Token::Int(n)) => Ok(AstExpr::Int(-n)),
                Some(Token::Float(f)) => Ok(AstExpr::Float(-f)),
                other => Err(QError::parse(format!(
                    "`-` expects a numeric literal, found {other:?}"
                ))),
            };
        }
        self.primary()
    }

    fn primary(&mut self) -> QResult<AstExpr> {
        match self.advance() {
            Some(Token::Int(n)) => Ok(AstExpr::Int(n)),
            Some(Token::Float(f)) => Ok(AstExpr::Float(f)),
            Some(Token::Str(s)) => Ok(AstExpr::Str(s)),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(s)) => {
                if s.eq_ignore_ascii_case("true") {
                    Ok(AstExpr::Bool(true))
                } else if s.eq_ignore_ascii_case("false") {
                    Ok(AstExpr::Bool(false))
                } else if s.eq_ignore_ascii_case("null") {
                    Ok(AstExpr::Null)
                } else if self.peek_is(&Token::Dot) {
                    self.advance();
                    let second = self.ident()?;
                    Ok(AstExpr::Column(format!("{s}.{second}")))
                } else {
                    Ok(AstExpr::Column(s))
                }
            }
            other => Err(QError::parse(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let q = parse("SELECT a, b FROM t").unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.from.table, "t");
        assert!(q.joins.is_empty());
        assert!(q.where_clause.is_none());
    }

    #[test]
    fn wildcard_and_limit() {
        let q = parse("SELECT * FROM t LIMIT 5;").unwrap();
        assert_eq!(q.select, vec![SelectItem::Wildcard]);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn joins_with_aliases() {
        let q = parse(
            "SELECT * FROM customer c JOIN nation AS n ON c.nationkey = n.nationkey \
             INNER JOIN region ON n.regionkey = region.regionkey",
        )
        .unwrap();
        assert_eq!(q.from.effective_name(), "c");
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.joins[0].table.effective_name(), "n");
        assert_eq!(q.joins[0].on.0, "c.nationkey");
        assert_eq!(q.joins[1].table.effective_name(), "region");
    }

    #[test]
    fn aggregates_and_grouping() {
        let q = parse(
            "SELECT nationkey, count(*) AS cnt, sum(acctbal) FROM customer \
             GROUP BY nationkey ORDER BY cnt DESC LIMIT 10",
        )
        .unwrap();
        assert_eq!(q.group_by, vec!["nationkey"]);
        assert_eq!(q.order_by.len(), 1);
        assert!(!q.order_by[0].ascending);
        match &q.select[1] {
            SelectItem::Aggregate { func, alias, .. } => {
                assert_eq!(*func, AggCall::CountStar);
                assert_eq!(alias.as_deref(), Some("cnt"));
            }
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn where_precedence() {
        let q = parse("SELECT a FROM t WHERE a < 5 AND b = 1 OR NOT c > 2").unwrap();
        // OR is the top-level operator
        match q.where_clause.unwrap() {
            AstExpr::Binary { op, .. } => assert_eq!(op, AstBinOp::Or),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse("SELECT a + b * 2 FROM t").unwrap();
        match &q.select[0] {
            SelectItem::Expr {
                expr: AstExpr::Binary { op, right, .. },
                ..
            } => {
                assert_eq!(*op, AstBinOp::Add);
                assert!(matches!(
                    **right,
                    AstExpr::Binary {
                        op: AstBinOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn is_null_and_negative_literals() {
        let q = parse("SELECT a FROM t WHERE a IS NOT NULL AND b = -3").unwrap();
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn parse_errors() {
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT a FROM").is_err());
        assert!(parse("SELECT a FROM t WHERE").is_err());
        assert!(parse("SELECT sum(*) FROM t").is_err());
        assert!(parse("SELECT a FROM t LIMIT x").is_err());
        assert!(parse("SELECT a FROM t garbage garbage").is_err());
        assert!(parse("SELECT a FROM t JOIN u ON a").is_err());
    }

    #[test]
    fn left_join_and_distinct() {
        let q = parse(
            "SELECT DISTINCT a FROM t LEFT OUTER JOIN u ON t.a = u.a LEFT JOIN v ON v.b = t.b",
        )
        .unwrap();
        assert!(q.distinct);
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.joins[0].join_type, JoinType::LeftOuter);
        assert_eq!(q.joins[1].join_type, JoinType::LeftOuter);
        let q = parse("SELECT a FROM t JOIN u ON t.a = u.a").unwrap();
        assert_eq!(q.joins[0].join_type, JoinType::Inner);
    }

    #[test]
    fn between_and_in_desugar() {
        let q = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 5").unwrap();
        match q.where_clause.unwrap() {
            AstExpr::Binary { op, .. } => assert_eq!(op, AstBinOp::And),
            other => panic!("{other:?}"),
        }
        let q = parse("SELECT a FROM t WHERE a IN (1, 2, 3)").unwrap();
        match q.where_clause.unwrap() {
            AstExpr::Binary { op, .. } => assert_eq!(op, AstBinOp::Or),
            other => panic!("{other:?}"),
        }
        let q = parse("SELECT a FROM t WHERE a NOT IN (1) AND b NOT BETWEEN 2 AND 3").unwrap();
        assert!(q.where_clause.is_some());
        assert!(parse("SELECT a FROM t WHERE a IN ()").is_err());
    }

    #[test]
    fn parenthesized_expressions() {
        let q = parse("SELECT (a + b) * 2 FROM t WHERE (a = 1 OR b = 2) AND a < 9").unwrap();
        match q.where_clause.unwrap() {
            AstExpr::Binary { op, .. } => assert_eq!(op, AstBinOp::And),
            other => panic!("{other:?}"),
        }
    }
}
