//! A minimal SQL front end for `qprog`.
//!
//! Supports the query shape the paper's workloads need:
//!
//! ```sql
//! SELECT <exprs | aggregates | *>
//! FROM <table> [AS alias]
//! [JOIN <table> [AS alias] ON <col> = <col>]...
//! [WHERE <predicate>]
//! [GROUP BY <cols>]
//! [ORDER BY <cols> [ASC|DESC]]
//! [LIMIT <n>]
//! ```
//!
//! Pipeline of a query: [`lexer`] → [`parser`] (AST in [`ast`]) →
//! [`binder`] (name resolution against a
//! [`PlanBuilder`](qprog_plan::PlanBuilder) catalog, producing a
//! [`LogicalPlan`](qprog_plan::LogicalPlan)).

pub mod ast;
pub mod binder;
pub mod lexer;
pub mod parser;

use qprog_plan::{LogicalPlan, PlanBuilder};
use qprog_types::QResult;

/// Parse and bind a SQL query against a catalog in one call.
pub fn plan_sql(builder: &PlanBuilder, sql: &str) -> QResult<LogicalPlan> {
    let query = parser::parse(sql)?;
    binder::bind(builder, &query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qprog_storage::{Catalog, Table};
    use qprog_types::{row, DataType, Field, Schema};

    fn builder() -> PlanBuilder {
        let mut c = Catalog::new();
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Int64),
            ]),
        );
        for i in 0..10 {
            t.push(row![i, i % 3]).unwrap();
        }
        c.register(t).unwrap();
        PlanBuilder::new(c)
    }

    #[test]
    fn end_to_end_plan() {
        let b = builder();
        let plan = plan_sql(&b, "SELECT a FROM t WHERE a < 5 ORDER BY a LIMIT 3").unwrap();
        assert_eq!(plan.schema.arity(), 1);
    }

    #[test]
    fn parse_errors_surface() {
        let b = builder();
        assert!(plan_sql(&b, "SELEC a FROM t").is_err());
        assert!(plan_sql(&b, "SELECT a FROM missing").is_err());
        assert!(plan_sql(&b, "SELECT nosuch FROM t").is_err());
    }
}
