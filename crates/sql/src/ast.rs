//! Abstract syntax tree for the supported SQL subset.

/// A parsed SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    pub select: Vec<SelectItem>,
    pub from: TableRef,
    pub joins: Vec<JoinClause>,
    pub where_clause: Option<AstExpr>,
    pub group_by: Vec<String>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<usize>,
}

/// A table reference with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name other clauses refer to this table by.
    pub fn effective_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// Join type keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinType {
    #[default]
    Inner,
    /// `LEFT [OUTER] JOIN` — preserves the accumulated (left) side.
    LeftOuter,
}

/// `[LEFT [OUTER]] JOIN <table> ON <left> = <right>`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    pub table: TableRef,
    /// Qualified or unqualified column names of the equi-join condition.
    pub on: (String, String),
    pub join_type: JoinType,
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// A scalar expression with optional alias.
    Expr {
        expr: AstExpr,
        alias: Option<String>,
    },
    /// `func(col)` / `count(*)` with optional alias.
    Aggregate {
        func: AggCall,
        column: Option<String>,
        alias: Option<String>,
    },
}

/// Aggregate function names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggCall {
    Count,
    CountStar,
    Sum,
    Min,
    Max,
    Avg,
}

/// `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub column: String,
    pub ascending: bool,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    Column(String),
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Null,
    Binary {
        op: AstBinOp,
        left: Box<AstExpr>,
        right: Box<AstExpr>,
    },
    Not(Box<AstExpr>),
    IsNull {
        expr: Box<AstExpr>,
        negate: bool,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}
