//! SQL tokenizer.

use qprog_types::{QError, QResult};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (unquoted; stored as written).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Punctuation / operators.
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semicolon,
}

impl Token {
    /// Whether this token is the given keyword (case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize SQL text.
pub fn tokenize(input: &str) -> QResult<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_ascii_whitespace() => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                // line comment support: `-- ...`
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    tokens.push(Token::Minus);
                    i += 1;
                }
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token::LtEq);
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token::NotEq);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(QError::parse("unexpected `!`"));
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(QError::parse("unterminated string literal")),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let is_float = i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes
                        .get(i + 1)
                        .is_some_and(|b| (*b as char).is_ascii_digit());
                if is_float {
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    let text = &input[start..i];
                    tokens.push(Token::Float(text.parse().map_err(|e| {
                        QError::parse(format!("bad float literal `{text}`: {e}"))
                    })?));
                } else {
                    let text = &input[start..i];
                    tokens.push(Token::Int(text.parse().map_err(|e| {
                        QError::parse(format!("bad integer literal `{text}`: {e}"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => return Err(QError::parse(format!("unexpected character `{other}`"))),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_query_tokens() {
        let toks = tokenize("SELECT a, count(*) FROM t WHERE a <= 5").unwrap();
        assert!(toks[0].is_keyword("select"));
        assert_eq!(toks[1], Token::Ident("a".into()));
        assert_eq!(toks[2], Token::Comma);
        assert!(toks.contains(&Token::LtEq));
        assert!(toks.contains(&Token::Star));
        assert_eq!(*toks.last().unwrap(), Token::Int(5));
    }

    #[test]
    fn numbers_and_strings() {
        let toks = tokenize("42 3.25 'it''s' 'x'").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(42),
                Token::Float(3.25),
                Token::Str("it's".into()),
                Token::Str("x".into()),
            ]
        );
    }

    #[test]
    fn qualified_names_and_operators() {
        let toks = tokenize("t.a <> u.b >= 1 != 2").unwrap();
        assert_eq!(toks[1], Token::Dot);
        assert_eq!(toks[3], Token::NotEq);
        assert_eq!(toks[7], Token::GtEq);
        assert_eq!(toks[9], Token::NotEq);
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT a -- trailing comment\nFROM t").unwrap();
        assert_eq!(toks.len(), 4);
        assert!(toks[2].is_keyword("from"));
    }

    #[test]
    fn minus_and_division() {
        let toks = tokenize("a - 1 / 2").unwrap();
        assert_eq!(toks[1], Token::Minus);
        assert_eq!(toks[3], Token::Slash);
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("héllo").is_err());
    }
}
