//! Name resolution: AST → logical plan.
//!
//! Joins bind left-deep with each newly joined table as the **build** side
//! and the accumulated plan as the **probe** side — so
//! `FROM a JOIN b ON … JOIN c ON …` produces the hash-join pipeline
//! `c ⋈ (b ⋈ a)` driven by `a`, matching the plan shapes the paper's
//! experiments use.

use qprog_exec::expr::{BinOp, Expr};
use qprog_exec::ops::agg::AggFunc;
use qprog_plan::{LogicalPlan, PlanBuilder};
use qprog_types::{QError, QResult, Value};

use crate::ast::*;

/// Bind a parsed query to a logical plan.
pub fn bind(builder: &PlanBuilder, query: &Query) -> QResult<LogicalPlan> {
    // FROM + JOINs
    let mut plan = scan_ref(builder, &query.from)?;
    for join in &query.joins {
        let build = scan_ref(builder, &join.table)?;
        let (l, r) = (&join.on.0, &join.on.1);
        // One side must resolve in the new (build) table, the other in the
        // accumulated (probe) plan.
        let (build_key, probe_key) = if build.col(l).is_ok() && plan.col(r).is_ok() {
            (l.as_str(), r.as_str())
        } else if build.col(r).is_ok() && plan.col(l).is_ok() {
            (r.as_str(), l.as_str())
        } else {
            return Err(QError::plan(format!(
                "join condition `{l} = {r}` does not reference both sides"
            )));
        };
        plan = match join.join_type {
            crate::ast::JoinType::Inner => plan.hash_join(build, build_key, probe_key)?,
            crate::ast::JoinType::LeftOuter => plan.left_outer_join(build, build_key, probe_key)?,
        };
    }

    // WHERE
    if let Some(pred) = &query.where_clause {
        let bound = bind_expr(pred, &plan)?;
        plan = plan.filter(bound)?;
    }

    // GROUP BY / aggregates
    let has_agg = query
        .select
        .iter()
        .any(|s| matches!(s, SelectItem::Aggregate { .. }));
    if has_agg || !query.group_by.is_empty() {
        if query.distinct {
            return Err(QError::plan(
                "SELECT DISTINCT cannot be combined with aggregates/GROUP BY",
            ));
        }
        plan = bind_aggregate(plan, query)?;
    } else {
        plan = bind_projection(plan, &query.select)?;
        if query.distinct {
            // DISTINCT = GROUP BY all output columns, no aggregates.
            let names: Vec<String> = plan
                .schema
                .fields()
                .iter()
                .map(|f| f.qualified_name())
                .collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            plan = plan.aggregate(&refs, &[])?;
        }
    }

    // ORDER BY
    if !query.order_by.is_empty() {
        let keys: Vec<(&str, bool)> = query
            .order_by
            .iter()
            .map(|o| (o.column.as_str(), o.ascending))
            .collect();
        plan = plan.sort(&keys)?;
    }

    // LIMIT
    if let Some(n) = query.limit {
        plan = plan.limit(n)?;
    }
    Ok(plan)
}

fn scan_ref(builder: &PlanBuilder, table: &TableRef) -> QResult<LogicalPlan> {
    let plan = builder.scan(&table.table)?;
    Ok(match &table.alias {
        Some(a) => plan.with_alias(a),
        None => plan,
    })
}

fn bind_aggregate(plan: LogicalPlan, query: &Query) -> QResult<LogicalPlan> {
    // Collect aggregates in select-list order; validate plain columns are
    // grouping columns.
    let mut aggs: Vec<(AggFunc, Option<String>, String)> = Vec::new();
    #[derive(Clone)]
    enum OutputRef {
        Group(String),
        Agg(usize),
    }
    let mut outputs: Vec<(OutputRef, String)> = Vec::new();
    for (i, item) in query.select.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                return Err(QError::plan("`*` cannot be mixed with GROUP BY/aggregates"))
            }
            SelectItem::Expr { expr, alias } => {
                let AstExpr::Column(name) = expr else {
                    return Err(QError::plan(
                        "non-aggregate select items must be plain grouping columns",
                    ));
                };
                let in_group = query.group_by.iter().any(|g| {
                    g.eq_ignore_ascii_case(name)
                        || name.ends_with(&format!(".{g}"))
                        || g.ends_with(&format!(".{name}"))
                });
                if !in_group {
                    return Err(QError::plan(format!(
                        "column `{name}` must appear in GROUP BY"
                    )));
                }
                let out_name = alias.clone().unwrap_or_else(|| short_name(name));
                outputs.push((OutputRef::Group(name.clone()), out_name));
            }
            SelectItem::Aggregate {
                func,
                column,
                alias,
            } => {
                let f = match func {
                    AggCall::CountStar => AggFunc::CountStar,
                    AggCall::Count => AggFunc::Count,
                    AggCall::Sum => AggFunc::Sum,
                    AggCall::Min => AggFunc::Min,
                    AggCall::Max => AggFunc::Max,
                    AggCall::Avg => AggFunc::Avg,
                };
                let out_name = alias.clone().unwrap_or_else(|| format!("agg{i}"));
                aggs.push((f, column.clone(), out_name.clone()));
                outputs.push((OutputRef::Agg(aggs.len() - 1), out_name));
            }
        }
    }
    let group_refs: Vec<&str> = query.group_by.iter().map(String::as_str).collect();
    let agg_specs: Vec<(AggFunc, Option<&str>, &str)> = aggs
        .iter()
        .map(|(f, c, a)| (*f, c.as_deref(), a.as_str()))
        .collect();
    let agged = plan.aggregate(&group_refs, &agg_specs)?;

    // Aggregate output: group cols (in GROUP BY order) then aggregates.
    // Re-project to the select-list order when it differs.
    let natural: Vec<OutputRef> = query
        .group_by
        .iter()
        .map(|g| OutputRef::Group(g.clone()))
        .chain((0..aggs.len()).map(OutputRef::Agg))
        .collect();
    let select_matches_natural = outputs.len() == natural.len()
        && outputs
            .iter()
            .zip(&natural)
            .all(|((o, _), n)| match (o, n) {
                (OutputRef::Agg(a), OutputRef::Agg(b)) => a == b,
                (OutputRef::Group(a), OutputRef::Group(b)) => {
                    a.eq_ignore_ascii_case(b)
                        || a.ends_with(&format!(".{b}"))
                        || b.ends_with(&format!(".{a}"))
                }
                _ => false,
            });
    if select_matches_natural {
        return Ok(agged);
    }
    let projections: Vec<(Expr, &str)> = outputs
        .iter()
        .map(|(r, name)| {
            let idx = match r {
                OutputRef::Group(g) => agged.col(&short_name(g))?,
                OutputRef::Agg(i) => query.group_by.len() + i,
            };
            Ok((Expr::Column(idx), name.as_str()))
        })
        .collect::<QResult<_>>()?;
    agged.project(projections)
}

fn bind_projection(plan: LogicalPlan, select: &[SelectItem]) -> QResult<LogicalPlan> {
    if select.len() == 1 && matches!(select[0], SelectItem::Wildcard) {
        return Ok(plan);
    }
    let mut projections: Vec<(Expr, String)> = Vec::new();
    for (i, item) in select.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                return Err(QError::plan("`*` cannot be mixed with other select items"))
            }
            SelectItem::Aggregate { .. } => unreachable!("caller routes aggregates"),
            SelectItem::Expr { expr, alias } => {
                let bound = bind_expr(expr, &plan)?;
                let name = alias.clone().unwrap_or_else(|| match expr {
                    AstExpr::Column(c) => short_name(c),
                    _ => format!("col{i}"),
                });
                projections.push((bound, name));
            }
        }
    }
    let refs: Vec<(Expr, &str)> = projections
        .iter()
        .map(|(e, n)| (e.clone(), n.as_str()))
        .collect();
    plan.project(refs)
}

fn short_name(qualified: &str) -> String {
    qualified
        .rsplit_once('.')
        .map(|(_, n)| n.to_string())
        .unwrap_or_else(|| qualified.to_string())
}

fn bind_expr(e: &AstExpr, plan: &LogicalPlan) -> QResult<Expr> {
    Ok(match e {
        AstExpr::Column(name) => plan.col_expr(name)?,
        AstExpr::Int(v) => Expr::Literal(Value::Int64(*v)),
        AstExpr::Float(v) => Expr::Literal(Value::Float64(*v)),
        AstExpr::Str(s) => Expr::Literal(Value::str(s)),
        AstExpr::Bool(b) => Expr::Literal(Value::Bool(*b)),
        AstExpr::Null => Expr::Literal(Value::Null),
        AstExpr::Not(inner) => Expr::Not(Box::new(bind_expr(inner, plan)?)),
        AstExpr::IsNull { expr, negate } => Expr::IsNull {
            expr: Box::new(bind_expr(expr, plan)?),
            negate: *negate,
        },
        AstExpr::Binary { op, left, right } => Expr::Binary {
            op: match op {
                AstBinOp::Add => BinOp::Add,
                AstBinOp::Sub => BinOp::Sub,
                AstBinOp::Mul => BinOp::Mul,
                AstBinOp::Div => BinOp::Div,
                AstBinOp::Eq => BinOp::Eq,
                AstBinOp::NotEq => BinOp::NotEq,
                AstBinOp::Lt => BinOp::Lt,
                AstBinOp::LtEq => BinOp::LtEq,
                AstBinOp::Gt => BinOp::Gt,
                AstBinOp::GtEq => BinOp::GtEq,
                AstBinOp::And => BinOp::And,
                AstBinOp::Or => BinOp::Or,
            },
            left: Box::new(bind_expr(left, plan)?),
            right: Box::new(bind_expr(right, plan)?),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use qprog_plan::physical::{compile, PhysicalOptions};
    use qprog_storage::{Catalog, Table};
    use qprog_types::{row, DataType, Field, Schema};

    fn builder() -> PlanBuilder {
        let mut c = Catalog::new();
        let mut customer = Table::new(
            "customer",
            Schema::new(vec![
                Field::new("custkey", DataType::Int64),
                Field::new("nationkey", DataType::Int64),
            ]),
        );
        for i in 0..300i64 {
            customer.push(row![i, i % 25]).unwrap();
        }
        let mut nation = Table::new(
            "nation",
            Schema::new(vec![
                Field::new("nationkey", DataType::Int64),
                Field::new("regionkey", DataType::Int64),
            ]),
        );
        for i in 0..25i64 {
            nation.push(row![i, i % 5]).unwrap();
        }
        let mut region = Table::new(
            "region",
            Schema::new(vec![Field::new("regionkey", DataType::Int64)]),
        );
        for i in 0..5i64 {
            region.push(row![i]).unwrap();
        }
        c.register(customer).unwrap();
        c.register(nation).unwrap();
        c.register(region).unwrap();
        PlanBuilder::new(c)
    }

    fn run(sql: &str) -> Vec<qprog_types::Row> {
        let b = builder();
        let plan = bind(&b, &parse(sql).unwrap()).unwrap();
        let mut q = compile(&plan, &PhysicalOptions::default()).unwrap();
        q.collect().unwrap()
    }

    #[test]
    fn select_star() {
        let rows = run("SELECT * FROM nation");
        assert_eq!(rows.len(), 25);
        assert_eq!(rows[0].arity(), 2);
    }

    #[test]
    fn projection_and_filter() {
        let rows = run("SELECT custkey FROM customer WHERE nationkey = 3");
        assert_eq!(rows.len(), 12); // 300/25
        assert_eq!(rows[0].arity(), 1);
    }

    #[test]
    fn join_chain_runs() {
        let rows = run("SELECT * FROM customer \
             JOIN nation ON customer.nationkey = nation.nationkey \
             JOIN region ON nation.regionkey = region.regionkey");
        assert_eq!(rows.len(), 300);
        assert_eq!(rows[0].arity(), 5);
    }

    #[test]
    fn join_condition_sides_can_swap() {
        let a = run("SELECT * FROM customer JOIN nation ON customer.nationkey = nation.nationkey");
        let b = run("SELECT * FROM customer JOIN nation ON nation.nationkey = customer.nationkey");
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn aliases_resolve() {
        let rows = run(
            "SELECT c.custkey FROM customer AS c JOIN nation n ON c.nationkey = n.nationkey \
             WHERE c.custkey < 10",
        );
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn group_by_with_aggregates() {
        let rows = run(
            "SELECT nationkey, count(*) AS cnt, min(custkey) AS lo FROM customer \
             GROUP BY nationkey ORDER BY nationkey",
        );
        assert_eq!(rows.len(), 25);
        assert_eq!(rows[0].get(1).unwrap().as_i64().unwrap(), 12);
        assert_eq!(rows[0].get(0).unwrap().as_i64().unwrap(), 0);
        assert_eq!(rows[0].get(2).unwrap().as_i64().unwrap(), 0);
    }

    #[test]
    fn select_order_reprojected() {
        // aggregate before the group column
        let rows = run("SELECT count(*) AS cnt, nationkey FROM customer GROUP BY nationkey");
        assert_eq!(rows.len(), 25);
        assert_eq!(rows[0].get(0).unwrap().as_i64().unwrap(), 12);
    }

    #[test]
    fn global_aggregation() {
        let rows = run("SELECT count(*), sum(custkey) FROM customer");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0).unwrap().as_i64().unwrap(), 300);
        assert_eq!(
            rows[0].get(1).unwrap().as_i64().unwrap(),
            (0..300).sum::<i64>()
        );
    }

    #[test]
    fn binder_errors() {
        let b = builder();
        // non-grouped column in select
        assert!(bind(
            &b,
            &parse("SELECT custkey, count(*) FROM customer GROUP BY nationkey").unwrap()
        )
        .is_err());
        // join condition referencing one side only
        assert!(bind(
            &b,
            &parse("SELECT * FROM customer JOIN nation ON customer.custkey = customer.nationkey")
                .unwrap()
        )
        .is_err());
        // unknown column
        assert!(bind(&b, &parse("SELECT wat FROM customer").unwrap()).is_err());
    }

    #[test]
    fn left_join_preserves_unmatched_rows() {
        // every customer has a nation (nationkey < 25), so filter nation to
        // force misses
        let b = builder();
        let plan = bind(
            &b,
            &parse(
                "SELECT * FROM customer LEFT JOIN region ON customer.custkey = region.regionkey",
            )
            .unwrap(),
        )
        .unwrap();
        let mut q = compile(&plan, &PhysicalOptions::default()).unwrap();
        let rows = q.collect().unwrap();
        // all 300 customers preserved; only custkey 0..5 match a regionkey
        assert_eq!(rows.len(), 300);
        let matched = rows.iter().filter(|r| !r.get(0).unwrap().is_null()).count();
        assert_eq!(matched, 5);
    }

    #[test]
    fn select_distinct() {
        let rows = run("SELECT DISTINCT nationkey FROM customer ORDER BY nationkey");
        assert_eq!(rows.len(), 25);
        let rows = run("SELECT DISTINCT nationkey, regionkey FROM nation");
        assert_eq!(rows.len(), 25);
    }

    #[test]
    fn between_and_in_execute() {
        let rows = run("SELECT custkey FROM customer WHERE custkey BETWEEN 10 AND 12");
        assert_eq!(rows.len(), 3);
        let rows = run("SELECT custkey FROM customer WHERE nationkey IN (0, 1) AND custkey < 50");
        assert_eq!(rows.len(), 4); // custkeys 0,1,25,26
        let rows = run("SELECT custkey FROM customer WHERE custkey NOT BETWEEN 3 AND 299");
        assert_eq!(rows.len(), 3); // 0,1,2
    }

    #[test]
    fn expressions_in_select() {
        let rows = run("SELECT custkey * 2 AS dbl FROM customer WHERE custkey < 3 ORDER BY dbl");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].get(0).unwrap().as_i64().unwrap(), 4);
    }
}
