//! Deterministic failpoint registry for chaos-testing qprog.
//!
//! A *failpoint* is a named site in production code — `exec/hash_build/insert`,
//! `monitor/accept` — where a test can inject a fault: a typed error, a panic,
//! a sleep, or a scheduler yield. Sites are declared with [`fail_point!`]:
//!
//! ```ignore
//! qprog_fault::fail_point!("exec/scan/next");
//! ```
//!
//! Without `--features failpoints` the whole machinery compiles out: every
//! site folds to `Ok(())` and costs nothing per tuple. With the feature on,
//! each evaluation consults a global registry configured either
//! programmatically ([`configure`]) or from the environment:
//!
//! - `QPROG_FAILPOINTS` — `site=spec;site=spec` pairs applied at first use,
//! - `QPROG_FAILPOINTS_SEED` — seed for the deterministic PRNG behind
//!   probabilistic specs.
//!
//! # Spec grammar
//!
//! ```text
//! spec   := "off" | [prob "%"] [count "*"] action ["(" arg ")"]
//! action := "error" | "panic" | "sleep" | "yield"
//! ```
//!
//! Examples: `error`, `error(disk full)`, `panic`, `sleep(25)` (milliseconds),
//! `yield(8)`, `50%error`, `3*error` (fire at most three times),
//! `25%2*sleep(10)`. Probability draws come from a seeded SplitMix64 stream,
//! so a given seed yields the same fault schedule on every run.
//!
//! Injected errors surface as
//! [`QError::Lifecycle`]`(`[`ExecError::Injected`](qprog_types::ExecError::Injected)`)`
//! so the lifecycle layer can distinguish them from organic failures.

use qprog_types::QResult;

/// Evaluate a failpoint site, propagating any injected error.
///
/// Expands to `$crate::eval(name)?` — use inside functions returning
/// [`QResult`]. For call sites that cannot propagate (e.g. the monitor
/// accept loop) call [`eval`] directly and handle the `Err`.
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        $crate::eval($name)?
    };
}

/// True when this build carries the failpoint machinery.
pub const fn active() -> bool {
    cfg!(feature = "failpoints")
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::*;
    use qprog_types::QError;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock, RwLock};

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Action {
        Off,
        Error(String),
        Panic(String),
        /// Sleep for the given number of milliseconds.
        Sleep(u64),
        /// Call `thread::yield_now()` the given number of times.
        Yield(u32),
    }

    #[derive(Debug)]
    struct Site {
        spec: String,
        /// Trigger probability in percent; `None` means always.
        prob_pct: Option<u32>,
        /// Remaining triggers for `cnt*` specs; `None` means unlimited.
        remaining: Option<AtomicU64>,
        action: Action,
        hits: AtomicU64,
    }

    struct Registry {
        sites: RwLock<HashMap<String, Site>>,
        rng: AtomicU64,
    }

    fn registry() -> &'static Registry {
        static REGISTRY: OnceLock<Registry> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let seed = std::env::var("QPROG_FAILPOINTS_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0x9E37_79B9_7F4A_7C15);
            let reg = Registry {
                sites: RwLock::new(HashMap::new()),
                rng: AtomicU64::new(seed),
            };
            if let Ok(spec) = std::env::var("QPROG_FAILPOINTS") {
                // Bad env specs are reported once rather than silently eaten.
                if let Err(e) = apply_many(&reg, &spec) {
                    eprintln!("qprog-fault: ignoring invalid QPROG_FAILPOINTS: {e}");
                }
            }
            reg
        })
    }

    /// SplitMix64 step over a shared atomic state: deterministic for a given
    /// seed regardless of which thread draws (the *set* of outcomes is fixed;
    /// inter-thread interleaving only permutes who sees which draw).
    fn next_u64(state: &AtomicU64) -> u64 {
        let mut z = state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn parse_spec(spec: &str) -> Result<(Option<u32>, Option<u64>, Action), String> {
        let mut rest = spec.trim();
        if rest == "off" {
            return Ok((None, None, Action::Off));
        }
        let mut prob = None;
        if let Some(i) = rest.find('%') {
            let head = &rest[..i];
            let p: u32 = head
                .parse()
                .map_err(|_| format!("bad probability `{head}` in `{spec}`"))?;
            if p > 100 {
                return Err(format!("probability {p}% > 100% in `{spec}`"));
            }
            prob = Some(p);
            rest = &rest[i + 1..];
        }
        let mut count = None;
        if let Some(i) = rest.find('*') {
            let head = &rest[..i];
            let c: u64 = head
                .parse()
                .map_err(|_| format!("bad count `{head}` in `{spec}`"))?;
            count = Some(c);
            rest = &rest[i + 1..];
        }
        let (name, arg) = match rest.find('(') {
            Some(i) => {
                let close = rest
                    .rfind(')')
                    .ok_or_else(|| format!("unclosed `(` in `{spec}`"))?;
                if close < i {
                    return Err(format!("mismatched parentheses in `{spec}`"));
                }
                (&rest[..i], Some(&rest[i + 1..close]))
            }
            None => (rest, None),
        };
        let action = match name {
            "off" => Action::Off,
            "error" => Action::Error(arg.unwrap_or("injected").to_string()),
            "panic" => Action::Panic(arg.unwrap_or("injected").to_string()),
            "sleep" => {
                let ms = arg
                    .ok_or_else(|| format!("sleep needs `(ms)` in `{spec}`"))?
                    .parse::<u64>()
                    .map_err(|_| format!("bad sleep millis in `{spec}`"))?;
                Action::Sleep(ms)
            }
            "yield" => {
                let n = match arg {
                    Some(a) => a
                        .parse::<u32>()
                        .map_err(|_| format!("bad yield count in `{spec}`"))?,
                    None => 1,
                };
                Action::Yield(n)
            }
            other => return Err(format!("unknown action `{other}` in `{spec}`")),
        };
        Ok((prob, count, action))
    }

    fn apply_many(reg: &Registry, specs: &str) -> Result<(), String> {
        for pair in specs.split(';').filter(|p| !p.trim().is_empty()) {
            let (site, spec) = pair
                .split_once('=')
                .ok_or_else(|| format!("expected `site=spec`, got `{pair}`"))?;
            apply_one(reg, site.trim(), spec.trim())?;
        }
        Ok(())
    }

    fn apply_one(reg: &Registry, site: &str, spec: &str) -> Result<(), String> {
        let (prob_pct, count, action) = parse_spec(spec)?;
        let entry = Site {
            spec: spec.to_string(),
            prob_pct,
            remaining: count.map(AtomicU64::new),
            action,
            hits: AtomicU64::new(0),
        };
        lock_write(reg).insert(site.to_string(), entry);
        Ok(())
    }

    fn lock_write(reg: &Registry) -> std::sync::RwLockWriteGuard<'_, HashMap<String, Site>> {
        reg.sites.write().unwrap_or_else(|p| p.into_inner())
    }

    fn lock_read(reg: &Registry) -> std::sync::RwLockReadGuard<'_, HashMap<String, Site>> {
        reg.sites.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Evaluate one site. See the crate docs for the spec grammar.
    pub fn eval(site: &str) -> QResult<()> {
        let reg = registry();
        let sites = lock_read(reg);
        let Some(s) = sites.get(site) else {
            return Ok(());
        };
        if matches!(s.action, Action::Off) {
            return Ok(());
        }
        if let Some(p) = s.prob_pct {
            if next_u64(&reg.rng) % 100 >= p as u64 {
                return Ok(());
            }
        }
        if let Some(rem) = &s.remaining {
            // Decrement-if-positive; once exhausted the site goes quiet.
            let mut cur = rem.load(Ordering::Relaxed);
            loop {
                if cur == 0 {
                    return Ok(());
                }
                match rem.compare_exchange_weak(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => break,
                    Err(now) => cur = now,
                }
            }
        }
        s.hits.fetch_add(1, Ordering::Relaxed);
        match &s.action {
            Action::Off => Ok(()),
            Action::Error(msg) => Err(QError::injected(format!("{site}: {msg}"))),
            Action::Panic(msg) => {
                let msg = format!("failpoint {site}: {msg}");
                drop(sites);
                panic!("{msg}");
            }
            Action::Sleep(ms) => {
                let ms = *ms;
                drop(sites);
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(())
            }
            Action::Yield(n) => {
                let n = *n;
                drop(sites);
                for _ in 0..n {
                    std::thread::yield_now();
                }
                Ok(())
            }
        }
    }

    /// Install (or replace) a spec for `site`.
    pub fn configure(site: &str, spec: &str) -> Result<(), String> {
        apply_one(registry(), site, spec)
    }

    /// Install `site=spec;site=spec` pairs, e.g. from a config string.
    pub fn configure_many(specs: &str) -> Result<(), String> {
        apply_many(registry(), specs)
    }

    /// Remove one site's configuration.
    pub fn remove(site: &str) {
        lock_write(registry()).remove(site);
    }

    /// Remove every configured site (leaves the PRNG state alone).
    pub fn teardown() {
        lock_write(registry()).clear();
    }

    /// Reseed the deterministic PRNG behind probabilistic specs.
    pub fn set_seed(seed: u64) {
        registry().rng.store(seed, Ordering::Relaxed);
    }

    /// How many times `site` has actually triggered (passed its
    /// probability and count gates).
    pub fn hits(site: &str) -> u64 {
        lock_read(registry())
            .get(site)
            .map(|s| s.hits.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// The configured `(site, spec)` pairs, sorted by site.
    pub fn list() -> Vec<(String, String)> {
        let mut v: Vec<_> = lock_read(registry())
            .iter()
            .map(|(k, s)| (k.clone(), s.spec.clone()))
            .collect();
        v.sort();
        v
    }

    static SCENARIO: Mutex<()> = Mutex::new(());

    /// RAII guard serialising failpoint tests against each other.
    ///
    /// The registry is process-global, so concurrent tests would otherwise
    /// see each other's specs. [`FailScenario::setup`] takes a global lock
    /// and clears the registry; dropping the guard clears it again.
    pub struct FailScenario {
        _guard: MutexGuard<'static, ()>,
    }

    impl FailScenario {
        pub fn setup() -> FailScenario {
            let guard = SCENARIO.lock().unwrap_or_else(|p| p.into_inner());
            teardown();
            FailScenario { _guard: guard }
        }
    }

    impl Drop for FailScenario {
        fn drop(&mut self) {
            teardown();
        }
    }
}

#[cfg(feature = "failpoints")]
pub use imp::{
    configure, configure_many, eval, hits, list, remove, set_seed, teardown, FailScenario,
};

#[cfg(not(feature = "failpoints"))]
mod noop {
    use super::*;

    /// No-op site evaluation: folds to `Ok(())` and vanishes after inlining.
    #[inline(always)]
    pub fn eval(_site: &str) -> QResult<()> {
        Ok(())
    }

    /// Accepted but ignored without `--features failpoints`.
    pub fn configure(_site: &str, _spec: &str) -> Result<(), String> {
        Ok(())
    }

    /// Accepted but ignored without `--features failpoints`.
    pub fn configure_many(_specs: &str) -> Result<(), String> {
        Ok(())
    }

    pub fn remove(_site: &str) {}

    pub fn teardown() {}

    pub fn set_seed(_seed: u64) {}

    pub fn hits(_site: &str) -> u64 {
        0
    }

    pub fn list() -> Vec<(String, String)> {
        Vec::new()
    }

    /// No-op scenario guard in non-failpoint builds.
    pub struct FailScenario {}

    impl FailScenario {
        pub fn setup() -> FailScenario {
            FailScenario {}
        }
    }
}

#[cfg(not(feature = "failpoints"))]
pub use noop::{
    configure, configure_many, eval, hits, list, remove, set_seed, teardown, FailScenario,
};

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use qprog_types::{ExecError, QError};

    fn run(site: &str) -> QResult<()> {
        fail_point!(site);
        Ok(())
    }

    #[test]
    fn unconfigured_site_is_ok() {
        let _s = FailScenario::setup();
        assert!(run("t/none").is_ok());
        assert_eq!(hits("t/none"), 0);
    }

    #[test]
    fn error_action_yields_injected() {
        let _s = FailScenario::setup();
        configure("t/err", "error(disk full)").unwrap();
        let e = run("t/err").unwrap_err();
        match e {
            QError::Lifecycle(ExecError::Injected(m)) => {
                assert!(m.contains("t/err"), "{m}");
                assert!(m.contains("disk full"), "{m}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(hits("t/err"), 1);
    }

    #[test]
    fn count_limits_triggers() {
        let _s = FailScenario::setup();
        configure("t/cnt", "2*error").unwrap();
        assert!(run("t/cnt").is_err());
        assert!(run("t/cnt").is_err());
        assert!(run("t/cnt").is_ok());
        assert_eq!(hits("t/cnt"), 2);
    }

    #[test]
    fn probability_is_deterministic_for_seed() {
        let _s = FailScenario::setup();
        configure("t/prob", "50%error").unwrap();
        set_seed(7);
        let a: Vec<bool> = (0..64).map(|_| run("t/prob").is_err()).collect();
        set_seed(7);
        let b: Vec<bool> = (0..64).map(|_| run("t/prob").is_err()).collect();
        assert_eq!(a, b);
        let fired = a.iter().filter(|x| **x).count();
        assert!(
            fired > 0 && fired < 64,
            "50% should be neither 0 nor all: {fired}"
        );
    }

    #[test]
    fn sleep_action_delays() {
        let _s = FailScenario::setup();
        configure("t/sleep", "sleep(30)").unwrap();
        let t0 = std::time::Instant::now();
        assert!(run("t/sleep").is_ok());
        assert!(t0.elapsed() >= std::time::Duration::from_millis(25));
    }

    #[test]
    #[should_panic(expected = "failpoint t/panic")]
    fn panic_action_panics() {
        let _s = FailScenario::setup();
        configure("t/panic", "panic(kaboom)").unwrap();
        let _ = run("t/panic");
    }

    #[test]
    fn off_and_remove_silence_a_site() {
        let _s = FailScenario::setup();
        configure("t/off", "error").unwrap();
        configure("t/off", "off").unwrap();
        assert!(run("t/off").is_ok());
        configure("t/off", "error").unwrap();
        remove("t/off");
        assert!(run("t/off").is_ok());
    }

    #[test]
    fn spec_parser_rejects_garbage() {
        let _s = FailScenario::setup();
        assert!(configure("t/bad", "explode").is_err());
        assert!(configure("t/bad", "150%error").is_err());
        assert!(configure("t/bad", "sleep").is_err());
        assert!(configure("t/bad", "sleep(abc)").is_err());
        assert!(configure_many("no-equals-sign").is_err());
        assert!(configure_many("a=error;b=3*sleep(5)").is_ok());
        assert_eq!(list().len(), 2);
    }

    #[test]
    fn yield_action_is_benign() {
        let _s = FailScenario::setup();
        configure("t/yield", "yield(4)").unwrap();
        assert!(run("t/yield").is_ok());
        assert_eq!(hits("t/yield"), 1);
    }
}
