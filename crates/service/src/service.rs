//! The query service: admission → journal → queue → dispatch → retry →
//! terminal, with graceful drain.
//!
//! # Lifecycle
//!
//! ```text
//! submit ──► admission (depth / tenant caps) ──► journal append (WAL)
//!        ──► observer.on_queued ──► ready queue (DRR) ──► worker pops
//!        ──► deadline re-check ──► executor.execute(cancel, remaining)
//!        ──► Ok → terminal finished
//!            Err retryable (injected / panic) → backoff → queue (delayed)
//!            Err other (cancelled / deadline / budget / error) → terminal failed
//! ```
//!
//! Every terminal is journaled, reported to the [`StatusObserver`] (which
//! the monitor bridges onto the progress directory and SSE hub), and
//! counted; the journal guarantees that anything accepted but not terminal
//! at crash time is re-dispatched exactly once on reopen.

use std::collections::VecDeque;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qprog_exec::governor::CancellationToken;
use qprog_exec::span::SpanKind;
use qprog_exec::sync::Mutex;
use qprog_exec::trace::TraceEvent;
use qprog_metrics::{Counter, Gauge, Histogram, Registry};
use qprog_types::{ExecError, QError};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::journal::{escape, Journal, PendingEntry};
use crate::queue::{AdmissionConfig, JobSpec, Pop, ReadyQueue, RejectReason};
use crate::spans::{SpanLog, SpanTotals};

/// Recent dispatch timestamps retained for the shed-time estimate.
const DRAIN_RATE_WINDOW: usize = 64;

/// Largest workload text accepted at submit time.
pub const MAX_SQL_BYTES: usize = 64 * 1024;

/// Retry behaviour for transiently-failed runs.
///
/// Only faults the engine classifies as transient are retried: injected
/// faults and operator panics. Cancellation, deadline expiry, and budget
/// breaches are deliberate terminations and never retry.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total execution attempts per submission (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base: Duration,
    /// Upper bound on the un-jittered backoff.
    pub cap: Duration,
    /// Seed for deterministic jitter (`crates/prng`): the same (seed, id,
    /// attempt) triple always yields the same delay, so chaos runs replay.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0x5E_ED_0F_90_47,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based) of job `id`:
    /// `min(base · 2^(attempt−1), cap)` scaled by a deterministic jitter
    /// factor in `[0.5, 1.0]`.
    pub fn backoff(&self, id: u64, attempt: u32) -> Duration {
        let doublings = attempt.saturating_sub(1).min(16);
        let exp = self
            .base
            .saturating_mul(1u32 << doublings)
            .min(self.cap)
            .max(Duration::from_millis(1));
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(attempt),
        );
        exp.mul_f64(0.5 + 0.5 * rng.random_f64())
    }
}

/// Service-wide configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Admission-control bounds.
    pub admission: AdmissionConfig,
    /// Retry behaviour.
    pub retry: RetryPolicy,
    /// Dispatcher worker threads (0 = accept + journal only; tests use
    /// this to stage pending work for crash-recovery runs).
    pub workers: usize,
    /// Deadline applied to submissions that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Terminal job records kept for status queries before eviction.
    pub retain_terminals: usize,
    /// How long [`QueryService::drain`] waits for in-flight and queued
    /// work before checkpoint-aborting it.
    pub drain_timeout: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            admission: AdmissionConfig::default(),
            retry: RetryPolicy::default(),
            workers: 2,
            default_deadline: None,
            retain_terminals: 256,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// A submission as received from a client.
#[derive(Debug, Clone)]
pub struct SubmitRequest {
    /// Workload text (SQL).
    pub sql: String,
    /// Tenant identity (quota + fairness key). Must be non-empty.
    pub tenant: String,
    /// Optional display label; derived from the SQL when absent.
    pub label: Option<String>,
    /// Optional deadline budget measured from acceptance.
    pub deadline: Option<Duration>,
}

/// Why a submission was not accepted.
#[derive(Debug)]
pub enum SubmitError {
    /// Malformed request (empty/oversized SQL, empty tenant, or the
    /// executor rejected the workload). Maps to HTTP 400.
    Invalid(String),
    /// Shed by admission control. Maps to HTTP 429 + `Retry-After`.
    Rejected {
        /// Which bound was hit.
        reason: RejectReason,
        /// Human-readable explanation.
        detail: String,
        /// Suggested client back-off.
        retry_after: Duration,
    },
    /// The service is draining or stopped. Maps to HTTP 503.
    ShuttingDown,
    /// The journal append failed — the submission was *not* accepted.
    /// Maps to HTTP 500.
    Internal(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Invalid(d) => write!(f, "invalid submission: {d}"),
            SubmitError::Rejected { reason, detail, .. } => {
                write!(f, "rejected ({}): {detail}", reason.label())
            }
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
            SubmitError::Internal(d) => write!(f, "submission failed: {d}"),
        }
    }
}

/// Acknowledgement for an accepted submission.
#[derive(Debug, Clone, Copy)]
pub struct Ticket {
    /// Process-unique query id; poll `/progress/{id}` or stream
    /// `/progress/{id}/stream` with it.
    pub id: u64,
    /// Queue depth right after this submission was enqueued.
    pub queue_depth: usize,
}

/// Lifecycle state of a tracked submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// Executing.
    Running,
    /// Failed transiently; parked for backoff.
    Retrying,
    /// Completed successfully.
    Finished,
    /// Reached a failure terminal.
    Failed,
}

impl JobState {
    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Retrying => "retrying",
            JobState::Finished => "finished",
            JobState::Failed => "failed",
        }
    }

    fn is_terminal(self) -> bool {
        matches!(self, JobState::Finished | JobState::Failed)
    }
}

/// Terminal outcome of a submission.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// The query ran to completion.
    Finished {
        /// Rows produced.
        rows: u64,
    },
    /// The query terminated without completing.
    Failed {
        /// Typed failure kind: `cancelled`, `deadline`, `budget`, `panic`,
        /// `injected`, or `error`.
        kind: &'static str,
        /// Human-readable detail.
        detail: String,
    },
}

impl JobOutcome {
    /// The journal/state label for this outcome.
    pub fn label(&self) -> &'static str {
        match self {
            JobOutcome::Finished { .. } => "finished",
            JobOutcome::Failed { kind, .. } => kind,
        }
    }
}

/// Point-in-time status of one submission.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Query id.
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Display label.
    pub label: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Execution attempts started so far.
    pub attempts: u32,
    /// Rows produced (terminal successes only).
    pub rows: Option<u64>,
    /// Failure kind, when `state == Failed`.
    pub failure: Option<&'static str>,
    /// Failure detail, when `state == Failed`.
    pub detail: Option<String>,
}

/// Result of a cancellation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was still queued/delayed; it is now terminal `cancelled`.
    CancelledQueued,
    /// The job was running; its cancellation token fired and the run will
    /// reach a `cancelled` terminal shortly.
    SignalledRunning,
    /// The job already reached a terminal state.
    AlreadyTerminal,
    /// No such job.
    Unknown,
}

/// Runs accepted jobs. The monitor-facing glue implements this on top of
/// `SessionBuilder`/`RunOptions`; unit tests use mocks.
pub trait JobExecutor: Send + Sync {
    /// Cheap well-formedness check at submit time (e.g. plan the SQL).
    fn validate(&self, sql: &str) -> Result<(), String> {
        let _ = sql;
        Ok(())
    }

    /// Execute the job to completion, honouring `cancel` and `deadline`
    /// (the remaining budget after queue wait). Returns rows produced.
    fn execute(
        &self,
        job: &JobSpec,
        cancel: CancellationToken,
        deadline: Option<Duration>,
    ) -> Result<u64, QError>;
}

/// Receives lifecycle callbacks; the monitor's bridge turns these into
/// directory entries and SSE frames.
///
/// Observers are called with the service's internal lock held and must not
/// call back into the service.
pub trait StatusObserver: Send + Sync {
    /// Reserve a fresh id `≥ floor`, unique among all ids the observer has
    /// seen (including replayed ones).
    fn allocate_id(&self, floor: u64) -> u64;

    /// A submission was accepted (or recovered from the journal).
    fn on_queued(&self, job: &JobSpec) {
        let _ = job;
    }

    /// A worker picked the job up; `job.attempt` prior attempts completed.
    fn on_dispatched(&self, job: &JobSpec) {
        let _ = job;
    }

    /// The job failed transiently and was parked for `backoff`.
    fn on_retrying(&self, job: &JobSpec, kind: &'static str, backoff: Duration) {
        let _ = (job, kind, backoff);
    }

    /// The job reached a terminal state.
    fn on_terminal(&self, job: &JobSpec, outcome: &JobOutcome) {
        let _ = (job, outcome);
    }

    /// A terminal job record aged out of the status table.
    fn on_evicted(&self, id: u64) {
        let _ = id;
    }

    /// Push any buffered state (drain calls this so SSE subscribers see
    /// every ending before shutdown).
    fn flush(&self) {}
}

/// Minimal [`StatusObserver`]: allocates ids, ignores events. Used when no
/// monitor is attached and by unit tests.
#[derive(Debug, Default)]
pub struct LocalIds(AtomicU64);

impl StatusObserver for LocalIds {
    fn allocate_id(&self, floor: u64) -> u64 {
        self.0.fetch_max(floor, Ordering::Relaxed);
        self.0.fetch_add(1, Ordering::Relaxed).max(floor)
    }
}

#[derive(Debug, Default)]
struct SvcCounters {
    submitted: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    invalid: AtomicU64,
    dispatched: AtomicU64,
    retries: AtomicU64,
    finished: AtomicU64,
    failed: AtomicU64,
    journal_errors: AtomicU64,
}

/// Counters snapshot for `/service` and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Submissions received (any outcome).
    pub submitted: u64,
    /// Submissions accepted into the queue.
    pub admitted: u64,
    /// Submissions shed by admission control.
    pub rejected: u64,
    /// Submissions refused as malformed.
    pub invalid: u64,
    /// Jobs handed to the executor (includes retry attempts).
    pub dispatched: u64,
    /// Retry attempts scheduled.
    pub retries: u64,
    /// Jobs that reached the `finished` terminal.
    pub finished: u64,
    /// Jobs that reached a failure terminal.
    pub failed: u64,
    /// Journal terminal-append failures (job completion still reported;
    /// the affected job may be re-dispatched after a crash).
    pub journal_errors: u64,
    /// Jobs currently queued or in backoff.
    pub queue_depth: usize,
    /// Jobs currently executing.
    pub running: usize,
}

struct SvcMetrics {
    registry: Arc<Registry>,
    queue_depth: Arc<Gauge>,
    retries: Arc<Counter>,
    /// Shared bucket bounds for the per-tenant SLO histograms: 100µs to
    /// ~26s in ×4 steps, fixed so every tenant series is comparable.
    slo_buckets: Vec<f64>,
}

impl SvcMetrics {
    fn new(registry: Arc<Registry>) -> Self {
        let queue_depth = registry.gauge(
            "qprog_queue_depth",
            "Submissions queued or in retry backoff",
            &[],
        );
        let retries = registry.counter("qprog_retries_total", "Retry attempts scheduled", &[]);
        SvcMetrics {
            registry,
            queue_depth,
            retries,
            slo_buckets: Histogram::exponential_buckets(100.0, 4.0, 10),
        }
    }

    fn submission(&self, outcome: &str) {
        self.registry
            .counter(
                "qprog_submissions_total",
                "Submissions received, by outcome",
                &[("outcome", outcome)],
            )
            .inc();
    }

    fn tenant_inflight(&self, tenant: &str, value: f64) {
        self.registry
            .gauge(
                "qprog_tenant_inflight",
                "In-system (queued + running) submissions per tenant",
                &[("tenant", tenant)],
            )
            .set(value);
    }

    /// Record one completed submission's lifecycle attribution.
    fn slo(&self, tenant: &str, t: &SpanTotals) {
        self.registry
            .histogram(
                "qprog_queue_wait_us",
                "Queued + retry-parked time per completed submission (µs)",
                &[("tenant", tenant)],
                &self.slo_buckets,
            )
            .observe((t.queue_wait_us + t.backoff_us) as f64);
        self.registry
            .histogram(
                "qprog_exec_us",
                "Execution time across all dispatch attempts per completed submission (µs)",
                &[("tenant", tenant)],
                &self.slo_buckets,
            )
            .observe(t.exec_us as f64);
        self.registry
            .counter(
                "qprog_dispatch_attempts_total",
                "Dispatch attempts across completed submissions",
                &[("tenant", tenant)],
            )
            .add(u64::from(t.attempts));
    }

    fn deadline_miss(&self, tenant: &str, location: &str) {
        self.registry
            .counter(
                "qprog_deadline_miss_total",
                "Deadline misses, by where the budget ran out",
                &[("tenant", tenant), ("where", location)],
            )
            .inc();
    }
}

/// Per-tenant lifecycle aggregates across completed submissions, surfaced
/// in [`QueryService::stats_json`] for `GET /service`.
#[derive(Debug, Clone, Copy, Default)]
struct TenantSlo {
    completed: u64,
    queue_wait_us: u64,
    exec_us: u64,
    attempts: u64,
    deadline_miss_queue: u64,
    deadline_miss_exec: u64,
}

struct JobRecord {
    spec: JobSpec,
    state: JobState,
    attempts: u32,
    rows: Option<u64>,
    failure: Option<&'static str>,
    detail: Option<String>,
    /// Lifecycle span log; appended only under the state lock.
    spans: SpanLog,
    /// Scheduled end of the current backoff park, on the span log's
    /// clock. Present exactly while the job's open span is a
    /// `backoff_park`, so the re-dispatch pop can split park from
    /// queue-wait at the scheduled ready time.
    backoff_ready_us: Option<u64>,
}

#[derive(Default)]
struct SvcState {
    jobs: std::collections::BTreeMap<u64, JobRecord>,
    tenant_inflight: std::collections::BTreeMap<String, usize>,
    tenant_slo: std::collections::BTreeMap<String, TenantSlo>,
    cancels: std::collections::BTreeMap<u64, CancellationToken>,
    terminal_order: std::collections::VecDeque<u64>,
}

/// The resilient submit/queue/dispatch service. See the module docs for
/// the lifecycle; construct with [`QueryService::open`].
pub struct QueryService {
    cfg: ServiceConfig,
    journal: Journal,
    queue: ReadyQueue,
    executor: Arc<dyn JobExecutor>,
    observer: Arc<dyn StatusObserver>,
    state: Mutex<SvcState>,
    admitting: AtomicBool,
    stop: AtomicBool,
    running: AtomicUsize,
    id_floor: u64,
    counters: SvcCounters,
    metrics: Option<SvcMetrics>,
    diagnostics: Vec<String>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Recent worker-pop timestamps (bounded to [`DRAIN_RATE_WINDOW`]);
    /// the shed path derives `Retry-After` from the observed drain rate.
    dispatch_times: Mutex<VecDeque<Instant>>,
}

impl QueryService {
    /// Open the service over journal directory `dir`: replay pending
    /// submissions from the previous incarnation (re-queued exactly once,
    /// in original order), then start `cfg.workers` dispatcher threads.
    pub fn open(
        dir: &Path,
        cfg: ServiceConfig,
        executor: Arc<dyn JobExecutor>,
        observer: Arc<dyn StatusObserver>,
        metrics: Option<Arc<Registry>>,
    ) -> io::Result<Arc<QueryService>> {
        let (journal, replay) = Journal::open(dir)?;
        let svc = Arc::new(QueryService {
            cfg,
            journal,
            queue: ReadyQueue::new(),
            executor,
            observer,
            state: Mutex::new(SvcState::default()),
            admitting: AtomicBool::new(true),
            stop: AtomicBool::new(false),
            running: AtomicUsize::new(0),
            id_floor: replay.next_id,
            counters: SvcCounters::default(),
            metrics: metrics.map(SvcMetrics::new),
            diagnostics: replay.diagnostics,
            workers: Mutex::new(Vec::new()),
            dispatch_times: Mutex::new(VecDeque::with_capacity(DRAIN_RATE_WINDOW)),
        });
        for e in replay.pending {
            let spec = JobSpec {
                id: e.id,
                tenant: e.tenant,
                label: e.label,
                sql: e.sql,
                // The wait already spent before the crash is unknowable;
                // the deadline budget restarts at recovery.
                deadline: e.deadline,
                submitted: Instant::now(),
                attempt: 0,
            };
            svc.enqueue(spec);
        }
        let mut workers = svc.workers.lock();
        for i in 0..svc.cfg.workers {
            let me = Arc::clone(&svc);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("qprog-svc-worker-{i}"))
                    .spawn(move || me.worker_loop())
                    .expect("spawn service worker"),
            );
        }
        drop(workers);
        Ok(svc)
    }

    /// Recovery notes from the journal replay (torn lines, etc). Empty on
    /// a clean open.
    pub fn recovery_diagnostics(&self) -> &[String] {
        &self.diagnostics
    }

    /// Journal file path (tests simulate crashes against it).
    pub fn journal_path(&self) -> &Path {
        self.journal.path()
    }

    /// Accept a submission: validate, admit, journal, queue. Returns the
    /// query id immediately — progress is observed via the monitor.
    pub fn submit(&self, req: SubmitRequest) -> Result<Ticket, SubmitError> {
        // Lifecycle span epoch: every later span (and the journal's wall
        // time) is measured from this instant.
        let accepted_at = Instant::now();
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = qprog_fault::eval("service/submit") {
            self.count_submission("error");
            self.counters.invalid.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Internal(e.to_string()));
        }
        if !self.admitting.load(Ordering::Acquire) {
            self.count_submission("shutdown");
            return Err(SubmitError::ShuttingDown);
        }
        if let Err(detail) = self.validate(&req) {
            self.count_submission("invalid");
            self.counters.invalid.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Invalid(detail));
        }
        let mut state = self.state.lock();
        let depth = self.queue.depth();
        if depth >= self.cfg.admission.max_queue_depth {
            drop(state);
            return Err(self.reject(
                RejectReason::QueueFull,
                format!("queue depth {depth} at limit"),
            ));
        }
        let inflight = state.tenant_inflight.get(&req.tenant).copied().unwrap_or(0);
        if inflight >= self.cfg.admission.max_tenant_inflight {
            drop(state);
            return Err(self.reject(
                RejectReason::TenantCap,
                format!(
                    "tenant {:?} has {inflight} submissions in flight",
                    req.tenant
                ),
            ));
        }
        let id = self.observer.allocate_id(self.id_floor);
        let label = req
            .label
            .filter(|l| !l.trim().is_empty())
            .unwrap_or_else(|| {
                let mut l: String = req.sql.chars().take(48).collect();
                if l.len() < req.sql.len() {
                    l.push('…');
                }
                l
            });
        let deadline = req.deadline.or(self.cfg.default_deadline);
        let entry = PendingEntry {
            id,
            tenant: req.tenant.clone(),
            label: label.clone(),
            sql: req.sql.clone(),
            deadline,
        };
        let mut spans = SpanLog::new(accepted_at);
        spans.push_at(0, SpanKind::Query, 0);
        spans.push_at(0, SpanKind::Submit, 0);
        spans.push(SpanKind::JournalAppend, 0);
        if let Err(e) = self.journal.append_submit(&entry) {
            drop(state);
            self.count_submission("error");
            self.counters.journal_errors.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Internal(format!("journal append failed: {e}")));
        }
        spans.pop();
        let spec = JobSpec {
            id,
            tenant: req.tenant,
            label,
            sql: req.sql,
            deadline,
            submitted: accepted_at,
            attempt: 0,
        };
        Self::enqueue_locked(self, &mut state, spec, spans);
        drop(state);
        self.counters.admitted.fetch_add(1, Ordering::Relaxed);
        self.count_submission("admitted");
        Ok(Ticket {
            id,
            queue_depth: self.refresh_depth(),
        })
    }

    fn validate(&self, req: &SubmitRequest) -> Result<(), String> {
        if req.tenant.trim().is_empty() {
            return Err("tenant must be non-empty".to_string());
        }
        if req.sql.trim().is_empty() {
            return Err("sql must be non-empty".to_string());
        }
        if req.sql.len() > MAX_SQL_BYTES {
            return Err(format!(
                "sql is {} bytes; limit is {MAX_SQL_BYTES}",
                req.sql.len()
            ));
        }
        self.executor.validate(&req.sql)
    }

    fn reject(&self, reason: RejectReason, detail: String) -> SubmitError {
        self.counters.rejected.fetch_add(1, Ordering::Relaxed);
        self.count_submission(reason.label());
        SubmitError::Rejected {
            reason,
            detail,
            retry_after: self.suggested_retry_after(),
        }
    }

    /// Client back-off suggested on shed: the predicted time for the
    /// current backlog to drain at the observed dispatch rate, clamped to
    /// [1, 60] seconds. Falls back to the configured constant until enough
    /// dispatches have been observed to measure a rate.
    fn suggested_retry_after(&self) -> Duration {
        let depth = self.queue.depth().max(1);
        let times = self.dispatch_times.lock();
        if times.len() >= 2 {
            let window = times
                .back()
                .expect("len checked")
                .duration_since(*times.front().expect("len checked"))
                .as_secs_f64();
            if window > 1e-6 {
                let rate = (times.len() - 1) as f64 / window;
                let secs = (depth as f64 / rate).ceil() as u64;
                return Duration::from_secs(secs.clamp(1, 60));
            }
            // All observed dispatches landed within a microsecond: the
            // queue drains effectively instantly.
            return Duration::from_secs(1);
        }
        self.cfg.admission.retry_after
    }

    /// Enqueue a replayed spec (record + observer + queue). The submit
    /// side happened in a previous incarnation, so its span is zero-width:
    /// the recovered lifecycle re-enters at the queue.
    fn enqueue(&self, spec: JobSpec) {
        let mut spans = SpanLog::new(spec.submitted);
        spans.push_at(0, SpanKind::Query, 0);
        spans.push_at(0, SpanKind::Submit, 0);
        let mut state = self.state.lock();
        Self::enqueue_locked(self, &mut state, spec, spans);
        drop(state);
        self.refresh_depth();
    }

    fn enqueue_locked(&self, state: &mut SvcState, spec: JobSpec, mut spans: SpanLog) {
        // The submit phase ends here and queue wait begins, at the same
        // stamp — the tiling that makes span sums reconcile with wall time.
        let now = spans.now_us();
        while spans.depth() > 1 {
            spans.pop_at(now);
        }
        spans.push_at(now, SpanKind::QueueWait, spec.attempt);
        *state
            .tenant_inflight
            .entry(spec.tenant.clone())
            .or_insert(0) += 1;
        if let Some(m) = &self.metrics {
            m.tenant_inflight(&spec.tenant, state.tenant_inflight[&spec.tenant] as f64);
        }
        state.jobs.insert(
            spec.id,
            JobRecord {
                spec: spec.clone(),
                state: JobState::Queued,
                attempts: 0,
                rows: None,
                failure: None,
                detail: None,
                spans,
                backoff_ready_us: None,
            },
        );
        self.observer.on_queued(&spec);
        self.queue.push(spec);
    }

    /// Status of a tracked (non-evicted) submission.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        let state = self.state.lock();
        state.jobs.get(&id).map(|r| JobStatus {
            id,
            tenant: r.spec.tenant.clone(),
            label: r.spec.label.clone(),
            state: r.state,
            attempts: r.attempts,
            rows: r.rows,
            failure: r.failure,
            detail: r.detail.clone(),
        })
    }

    /// Request cancellation of a submission.
    pub fn cancel(&self, id: u64) -> CancelOutcome {
        let mut state = self.state.lock();
        let current = match state.jobs.get(&id) {
            None => return CancelOutcome::Unknown,
            Some(r) if r.state.is_terminal() => return CancelOutcome::AlreadyTerminal,
            Some(r) => r.state,
        };
        match current {
            JobState::Queued | JobState::Retrying => {
                if let Some(spec) = self.queue.remove(id) {
                    self.finish_locked(
                        &mut state,
                        &spec,
                        JobOutcome::Failed {
                            kind: "cancelled",
                            detail: "cancelled by client while queued".to_string(),
                        },
                    );
                    drop(state);
                    self.refresh_depth();
                    return CancelOutcome::CancelledQueued;
                }
                // Raced with a worker pop: fall through to signalling.
                if let Some(token) = state.cancels.get(&id) {
                    token.cancel();
                    return CancelOutcome::SignalledRunning;
                }
                CancelOutcome::AlreadyTerminal
            }
            JobState::Running => {
                if let Some(token) = state.cancels.get(&id) {
                    token.cancel();
                }
                CancelOutcome::SignalledRunning
            }
            _ => CancelOutcome::AlreadyTerminal,
        }
    }

    /// Counters snapshot.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.counters;
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            admitted: c.admitted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            invalid: c.invalid.load(Ordering::Relaxed),
            dispatched: c.dispatched.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            finished: c.finished.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            journal_errors: c.journal_errors.load(Ordering::Relaxed),
            queue_depth: self.queue.depth(),
            running: self.running.load(Ordering::Relaxed),
        }
    }

    /// The lifecycle span events recorded for a tracked (non-evicted)
    /// submission, timestamped in microseconds from its submit instant.
    /// Feed them to `qprog_obs::spans::SpanTree` for tree assembly and
    /// Chrome trace-event export (`GET /trace/{id}` does exactly that).
    pub fn span_events(&self, id: u64) -> Option<Vec<TraceEvent>> {
        self.state
            .lock()
            .jobs
            .get(&id)
            .map(|r| r.spans.events().to_vec())
    }

    /// Summed lifecycle durations for a tracked submission.
    pub fn span_totals(&self, id: u64) -> Option<SpanTotals> {
        self.state.lock().jobs.get(&id).map(|r| r.spans.totals())
    }

    /// Current in-system submissions for `tenant`.
    pub fn tenant_inflight(&self, tenant: &str) -> usize {
        self.state
            .lock()
            .tenant_inflight
            .get(tenant)
            .copied()
            .unwrap_or(0)
    }

    /// Whether new submissions are being accepted.
    pub fn is_admitting(&self) -> bool {
        self.admitting.load(Ordering::Acquire)
    }

    /// JSON snapshot for the monitor's `GET /service` endpoint.
    pub fn stats_json(&self) -> String {
        let s = self.stats();
        let tenants: Vec<String> = {
            let state = self.state.lock();
            let mut names: std::collections::BTreeSet<&String> =
                state.tenant_inflight.keys().collect();
            names.extend(state.tenant_slo.keys());
            names
                .into_iter()
                .map(|t| {
                    let inflight = state.tenant_inflight.get(t).copied().unwrap_or(0);
                    let slo = state.tenant_slo.get(t).copied().unwrap_or_default();
                    format!(
                        "{{\"tenant\":\"{}\",\"inflight\":{inflight},\
                         \"completed\":{},\"queue_wait_us\":{},\"exec_us\":{},\
                         \"attempts\":{},\"deadline_miss_queue\":{},\
                         \"deadline_miss_exec\":{}}}",
                        escape(t),
                        slo.completed,
                        slo.queue_wait_us,
                        slo.exec_us,
                        slo.attempts,
                        slo.deadline_miss_queue,
                        slo.deadline_miss_exec
                    )
                })
                .collect()
        };
        format!(
            "{{\"admitting\":{},\"queue_depth\":{},\"running\":{},\
             \"submitted\":{},\"admitted\":{},\"rejected\":{},\"invalid\":{},\
             \"dispatched\":{},\"retries\":{},\"finished\":{},\"failed\":{},\
             \"journal_errors\":{},\"tenants\":[{}]}}",
            self.is_admitting(),
            s.queue_depth,
            s.running,
            s.submitted,
            s.admitted,
            s.rejected,
            s.invalid,
            s.dispatched,
            s.retries,
            s.finished,
            s.failed,
            s.journal_errors,
            tenants.join(",")
        )
    }

    /// Graceful drain: stop admitting, wait up to `cfg.drain_timeout` for
    /// queued + running work, then checkpoint-abort the remainder
    /// (queued jobs reach a `cancelled` terminal; running jobs get their
    /// cancellation tokens fired) and flush the observer so every SSE
    /// subscriber sees an ending.
    pub fn drain(&self) {
        self.admitting.store(false, Ordering::Release);
        let deadline = Instant::now() + self.cfg.drain_timeout;
        while Instant::now() < deadline
            && (self.queue.depth() > 0 || self.running.load(Ordering::Relaxed) > 0)
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        for job in self.queue.drain_all() {
            let mut state = self.state.lock();
            self.finish_locked(
                &mut state,
                &job,
                JobOutcome::Failed {
                    kind: "cancelled",
                    detail: "service draining".to_string(),
                },
            );
        }
        {
            let state = self.state.lock();
            for token in state.cancels.values() {
                token.cancel();
            }
        }
        let grace = Instant::now() + Duration::from_secs(2);
        while Instant::now() < grace && self.running.load(Ordering::Relaxed) > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.refresh_depth();
        self.observer.flush();
    }

    /// Stop workers without draining: queued submissions stay journaled
    /// as pending and will be re-dispatched on the next open (the
    /// crash-adjacent shutdown; call [`drain`](Self::drain) first for the
    /// graceful one).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        self.admitting.store(false, Ordering::Release);
        self.queue.close();
        let workers = std::mem::take(&mut *self.workers.lock());
        for w in workers {
            let _ = w.join();
        }
    }

    fn worker_loop(self: Arc<Self>) {
        loop {
            if self.stop.load(Ordering::Acquire) {
                return;
            }
            match self.queue.pop(Duration::from_millis(250)) {
                Pop::Closed => return,
                Pop::Timeout => continue,
                Pop::Job(job) => self.run_job(job),
            }
        }
    }

    fn run_job(&self, job: JobSpec) {
        self.refresh_depth();
        {
            // Every pop drains the queue — including deadline-expired jobs —
            // so each one is a sample for the Retry-After drain-rate model.
            let mut times = self.dispatch_times.lock();
            times.push_back(Instant::now());
            if times.len() > DRAIN_RATE_WINDOW {
                times.pop_front();
            }
        }
        // Deadline budget spent waiting counts: a submission that expired
        // in the queue terminates without ever reaching the engine.
        let remaining = match job.deadline {
            Some(d) => {
                let waited = job.submitted.elapsed();
                if waited >= d {
                    self.finish(
                        &job,
                        JobOutcome::Failed {
                            kind: "deadline",
                            detail: format!(
                                "deadline ({}ms) expired after {}ms in queue",
                                d.as_millis(),
                                waited.as_millis()
                            ),
                        },
                    );
                    return;
                }
                Some(d - waited)
            }
            None => None,
        };
        if let Err(e) = qprog_fault::eval("service/dispatch") {
            self.handle_failure(job, &e);
            return;
        }
        let token = CancellationToken::new();
        {
            let mut state = self.state.lock();
            if let Some(r) = state.jobs.get_mut(&job.id) {
                r.state = JobState::Running;
                r.attempts = job.attempt + 1;
                let now = r.spans.now_us();
                if let Some(ready) = r.backoff_ready_us.take() {
                    // The park ended at its scheduled ready time; the
                    // stretch from ready to this pop is queue wait for the
                    // retry attempt.
                    let ready = ready.min(now);
                    r.spans.pop_at(ready);
                    r.spans.push_at(ready, SpanKind::QueueWait, job.attempt);
                }
                r.spans.pop_at(now);
                r.spans.push_at(now, SpanKind::Dispatch, job.attempt);
            }
            state.cancels.insert(job.id, token.clone());
        }
        self.running.fetch_add(1, Ordering::Relaxed);
        self.counters.dispatched.fetch_add(1, Ordering::Relaxed);
        self.observer.on_dispatched(&job);
        let result = self.executor.execute(&job, token, remaining);
        self.running.fetch_sub(1, Ordering::Relaxed);
        self.state.lock().cancels.remove(&job.id);
        match result {
            Ok(rows) => self.finish(&job, JobOutcome::Finished { rows }),
            Err(e) => self.handle_failure(job, &e),
        }
    }

    fn handle_failure(&self, job: JobSpec, err: &QError) {
        let (kind, retryable) = classify(err);
        let attempts_done = job.attempt + 1;
        let may_retry = retryable
            && attempts_done < self.cfg.retry.max_attempts
            && !self.stop.load(Ordering::Acquire)
            && self.admitting.load(Ordering::Acquire);
        if may_retry {
            if let Err(fe) = qprog_fault::eval("service/retry") {
                self.finish(
                    &job,
                    JobOutcome::Failed {
                        kind,
                        detail: format!("{err} (retry abandoned: {fe})"),
                    },
                );
                return;
            }
            let backoff = self.cfg.retry.backoff(job.id, attempts_done);
            self.counters.retries.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.retries.inc();
            }
            {
                let mut state = self.state.lock();
                if let Some(r) = state.jobs.get_mut(&job.id) {
                    r.state = JobState::Retrying;
                    // Close the dispatch attempt (or the still-open queue
                    // wait, when dispatch itself failpointed) and open the
                    // backoff park, recording its scheduled end.
                    let now = r.spans.now_us();
                    r.spans.pop_at(now);
                    r.spans.push_at(now, SpanKind::BackoffPark, attempts_done);
                    r.backoff_ready_us = Some(now + backoff.as_micros() as u64);
                }
            }
            self.observer.on_retrying(&job, kind, backoff);
            let mut next = job;
            next.attempt = attempts_done;
            self.queue.push_delayed(next, Instant::now() + backoff);
            self.refresh_depth();
        } else {
            self.finish(
                &job,
                JobOutcome::Failed {
                    kind,
                    detail: err.to_string(),
                },
            );
        }
    }

    fn finish(&self, job: &JobSpec, outcome: JobOutcome) {
        let mut state = self.state.lock();
        self.finish_locked(&mut state, job, outcome);
    }

    fn finish_locked(&self, state: &mut SvcState, job: &JobSpec, outcome: JobOutcome) {
        // Close the span tree first: open children end where terminal
        // processing begins, the finalize span covers the record
        // bookkeeping, and the root's end is the single wall-time stamp
        // the journal records — so summed child durations reconcile with
        // the journal's wall time exactly.
        let mut wall_us = job.submitted.elapsed().as_micros() as u64;
        let mut totals = SpanTotals::default();
        let mut was_running = false;
        if let Some(r) = state.jobs.get_mut(&job.id) {
            was_running = r.state == JobState::Running;
            r.backoff_ready_us = None;
            let t0 = r.spans.now_us();
            r.spans.close_children(t0);
            r.spans.push_at(t0, SpanKind::Finalize, 0);
            match &outcome {
                JobOutcome::Finished { rows } => {
                    r.state = JobState::Finished;
                    r.rows = Some(*rows);
                }
                JobOutcome::Failed { kind, detail } => {
                    r.state = JobState::Failed;
                    r.failure = Some(kind);
                    r.detail = Some(detail.clone());
                }
            }
            let t_term = r.spans.now_us();
            r.spans.close_all(t_term);
            wall_us = t_term;
            totals = r.spans.totals();
        }
        if let Err(e) = self
            .journal
            .append_terminal(job.id, outcome.label(), wall_us)
        {
            // Completion is still reported; after a crash the job may be
            // re-dispatched (at-least-once on journal IO failure).
            self.counters.journal_errors.fetch_add(1, Ordering::Relaxed);
            let _ = e;
        }
        match &outcome {
            JobOutcome::Finished { .. } => self.counters.finished.fetch_add(1, Ordering::Relaxed),
            JobOutcome::Failed { .. } => self.counters.failed.fetch_add(1, Ordering::Relaxed),
        };
        let deadline_missed = matches!(
            &outcome,
            JobOutcome::Failed {
                kind: "deadline",
                ..
            }
        );
        let miss_location = if was_running { "exec" } else { "queue" };
        {
            let slo = state.tenant_slo.entry(job.tenant.clone()).or_default();
            slo.completed += 1;
            slo.queue_wait_us += totals.queue_wait_us + totals.backoff_us;
            slo.exec_us += totals.exec_us;
            slo.attempts += u64::from(totals.attempts);
            if deadline_missed {
                if was_running {
                    slo.deadline_miss_exec += 1;
                } else {
                    slo.deadline_miss_queue += 1;
                }
            }
        }
        if let Some(m) = &self.metrics {
            m.slo(&job.tenant, &totals);
            if deadline_missed {
                m.deadline_miss(&job.tenant, miss_location);
            }
        }
        if let Some(n) = state.tenant_inflight.get_mut(&job.tenant) {
            *n = n.saturating_sub(1);
            let left = *n;
            if left == 0 {
                state.tenant_inflight.remove(&job.tenant);
            }
            if let Some(m) = &self.metrics {
                m.tenant_inflight(&job.tenant, left as f64);
            }
        }
        self.observer.on_terminal(job, &outcome);
        state.terminal_order.push_back(job.id);
        let mut evicted = Vec::new();
        while state.terminal_order.len() > self.cfg.retain_terminals {
            if let Some(old) = state.terminal_order.pop_front() {
                state.jobs.remove(&old);
                evicted.push(old);
            }
        }
        // Opportunistic journal compaction once the terminal tail dwarfs
        // the live set, so long-running services don't grow the log
        // without bound (tmp + rename, same as reopen).
        let live_count = state
            .jobs
            .values()
            .filter(|r| !r.state.is_terminal())
            .count();
        if self.journal.terminal_count() >= 512
            && self.journal.terminal_count() as usize >= 4 * live_count
        {
            let live: Vec<PendingEntry> = state
                .jobs
                .values()
                .filter(|r| !r.state.is_terminal())
                .map(|r| PendingEntry {
                    id: r.spec.id,
                    tenant: r.spec.tenant.clone(),
                    label: r.spec.label.clone(),
                    sql: r.spec.sql.clone(),
                    deadline: r.spec.deadline,
                })
                .collect();
            if let Err(e) = self.journal.compact(&live) {
                self.counters.journal_errors.fetch_add(1, Ordering::Relaxed);
                let _ = e;
            }
        }
        for id in evicted {
            self.observer.on_evicted(id);
        }
    }

    fn count_submission(&self, outcome: &str) {
        if let Some(m) = &self.metrics {
            m.submission(outcome);
        }
    }

    fn refresh_depth(&self) -> usize {
        let depth = self.queue.depth();
        if let Some(m) = &self.metrics {
            m.queue_depth.set(depth as f64);
        }
        depth
    }
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("stats", &self.stats())
            .finish()
    }
}

/// Map an execution error to its typed terminal kind and retryability.
/// Injected faults and operator panics are transient (retryable);
/// cancellation, deadline expiry, and budget breaches are deliberate.
fn classify(e: &QError) -> (&'static str, bool) {
    match e.lifecycle() {
        Some(ExecError::Injected(_)) => ("injected", true),
        Some(ExecError::OperatorPanic(_)) => ("panic", true),
        Some(ExecError::Cancelled) => ("cancelled", false),
        Some(ExecError::DeadlineExceeded) => ("deadline", false),
        Some(ExecError::BudgetExceeded(_)) => ("budget", false),
        None => ("error", false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicU32;

    fn tmpdir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "qprog-service-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Scripted executor: per-id failure budget, then success.
    struct MockExec {
        /// Errors to return before succeeding, per call order.
        fail_first: AtomicU32,
        error: fn() -> QError,
        executions: Mutex<Vec<u64>>,
        delay: Duration,
    }

    impl MockExec {
        fn ok() -> Arc<Self> {
            Arc::new(MockExec {
                fail_first: AtomicU32::new(0),
                error: QError::cancelled,
                executions: Mutex::new(Vec::new()),
                delay: Duration::ZERO,
            })
        }

        fn failing(n: u32, error: fn() -> QError) -> Arc<Self> {
            Arc::new(MockExec {
                fail_first: AtomicU32::new(n),
                error,
                executions: Mutex::new(Vec::new()),
                delay: Duration::ZERO,
            })
        }

        fn executed(&self) -> Vec<u64> {
            self.executions.lock().clone()
        }
    }

    impl JobExecutor for MockExec {
        fn validate(&self, sql: &str) -> Result<(), String> {
            if sql.contains("syntax error") {
                return Err("unparseable workload".to_string());
            }
            Ok(())
        }

        fn execute(
            &self,
            job: &JobSpec,
            cancel: CancellationToken,
            _deadline: Option<Duration>,
        ) -> Result<u64, QError> {
            self.executions.lock().push(job.id);
            if !self.delay.is_zero() {
                let until = Instant::now() + self.delay;
                while Instant::now() < until {
                    if cancel.is_cancelled() {
                        return Err(QError::cancelled());
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            if cancel.is_cancelled() {
                return Err(QError::cancelled());
            }
            let remaining = self.fail_first.load(Ordering::Relaxed);
            if remaining > 0 {
                self.fail_first.store(remaining - 1, Ordering::Relaxed);
                return Err((self.error)());
            }
            Ok(7)
        }
    }

    fn svc(dir: &Path, exec: Arc<dyn JobExecutor>, cfg: ServiceConfig) -> Arc<QueryService> {
        QueryService::open(dir, cfg, exec, Arc::new(LocalIds::default()), None).unwrap()
    }

    fn req(sql: &str, tenant: &str) -> SubmitRequest {
        SubmitRequest {
            sql: sql.to_string(),
            tenant: tenant.to_string(),
            label: None,
            deadline: None,
        }
    }

    fn wait_terminal(s: &QueryService, id: u64) -> JobStatus {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let st = s.status(id).expect("job evicted before terminal check");
            if st.state.is_terminal() {
                return st;
            }
            assert!(Instant::now() < deadline, "job {id} never reached terminal");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn submit_runs_to_finished() {
        let dir = tmpdir("happy");
        let exec = MockExec::ok();
        let s = svc(&dir, exec.clone(), ServiceConfig::default());
        let t = s.submit(req("select 1", "acme")).unwrap();
        let st = wait_terminal(&s, t.id);
        assert_eq!(st.state, JobState::Finished);
        assert_eq!(st.rows, Some(7));
        assert_eq!(st.attempts, 1);
        assert_eq!(exec.executed(), vec![t.id]);
        let stats = s.stats();
        assert_eq!((stats.admitted, stats.finished, stats.failed), (1, 1, 0));
        s.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_submissions_are_typed() {
        let dir = tmpdir("invalid");
        let s = svc(&dir, MockExec::ok(), ServiceConfig::default());
        assert!(matches!(
            s.submit(req("", "acme")),
            Err(SubmitError::Invalid(_))
        ));
        assert!(matches!(
            s.submit(req("select 1", "")),
            Err(SubmitError::Invalid(_))
        ));
        assert!(matches!(
            s.submit(req("syntax error here", "acme")),
            Err(SubmitError::Invalid(_))
        ));
        assert_eq!(s.stats().invalid, 3);
        s.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admission_sheds_on_depth_and_tenant_caps() {
        let dir = tmpdir("admission");
        let cfg = ServiceConfig {
            admission: AdmissionConfig {
                max_queue_depth: 4,
                max_tenant_inflight: 2,
                retry_after: Duration::from_millis(250),
            },
            workers: 0, // nothing drains the queue
            ..ServiceConfig::default()
        };
        let s = svc(&dir, MockExec::ok(), cfg);
        assert!(s.submit(req("select 1", "a")).is_ok());
        assert!(s.submit(req("select 1", "a")).is_ok());
        match s.submit(req("select 1", "a")) {
            Err(SubmitError::Rejected {
                reason,
                retry_after,
                ..
            }) => {
                assert_eq!(reason, RejectReason::TenantCap);
                assert_eq!(retry_after, Duration::from_millis(250));
            }
            other => panic!("expected tenant cap, got {other:?}"),
        }
        assert!(s.submit(req("select 1", "b")).is_ok());
        assert!(s.submit(req("select 1", "c")).is_ok());
        match s.submit(req("select 1", "d")) {
            Err(SubmitError::Rejected { reason, .. }) => {
                assert_eq!(reason, RejectReason::QueueFull)
            }
            other => panic!("expected queue full, got {other:?}"),
        }
        assert_eq!(s.stats().rejected, 2);
        assert_eq!(s.tenant_inflight("a"), 2);
        s.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_failures_retry_then_succeed() {
        let dir = tmpdir("retry");
        let exec = MockExec::failing(2, || QError::injected("unit"));
        let cfg = ServiceConfig {
            retry: RetryPolicy {
                max_attempts: 3,
                base: Duration::from_millis(5),
                cap: Duration::from_millis(20),
                seed: 42,
            },
            ..ServiceConfig::default()
        };
        let s = svc(&dir, exec.clone(), cfg);
        let t = s.submit(req("select 1", "acme")).unwrap();
        let st = wait_terminal(&s, t.id);
        assert_eq!(st.state, JobState::Finished);
        assert_eq!(st.attempts, 3);
        assert_eq!(exec.executed().len(), 3);
        assert_eq!(s.stats().retries, 2);
        s.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retries_exhaust_into_typed_failure() {
        let dir = tmpdir("exhaust");
        let exec = MockExec::failing(99, || QError::operator_panic("boom"));
        let cfg = ServiceConfig {
            retry: RetryPolicy {
                max_attempts: 2,
                base: Duration::from_millis(2),
                cap: Duration::from_millis(4),
                seed: 1,
            },
            ..ServiceConfig::default()
        };
        let s = svc(&dir, exec.clone(), cfg);
        let t = s.submit(req("select 1", "acme")).unwrap();
        let st = wait_terminal(&s, t.id);
        assert_eq!(st.state, JobState::Failed);
        assert_eq!(st.failure, Some("panic"));
        assert_eq!(exec.executed().len(), 2);
        s.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deliberate_terminations_never_retry() {
        for (mk, kind) in [
            (QError::cancelled as fn() -> QError, "cancelled"),
            (|| QError::budget_exceeded("rows"), "budget"),
            (QError::deadline_exceeded, "deadline"),
        ] {
            let dir = tmpdir("noretry");
            let exec = MockExec::failing(99, mk);
            let s = svc(&dir, exec.clone(), ServiceConfig::default());
            let t = s.submit(req("select 1", "acme")).unwrap();
            let st = wait_terminal(&s, t.id);
            assert_eq!(st.state, JobState::Failed);
            assert_eq!(st.failure, Some(kind));
            assert_eq!(exec.executed().len(), 1, "{kind} must not retry");
            s.shutdown();
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn deadline_expired_in_queue_never_reaches_executor() {
        let dir = tmpdir("queue-deadline");
        // One worker, busy for 150ms: the second job's 20ms deadline
        // expires while it waits in the queue.
        let exec = Arc::new(MockExec {
            fail_first: AtomicU32::new(0),
            error: QError::cancelled,
            executions: Mutex::new(Vec::new()),
            delay: Duration::from_millis(150),
        });
        let cfg = ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        };
        let s = svc(&dir, exec.clone(), cfg);
        let blocker = s.submit(req("select 0", "acme")).unwrap();
        let doomed = s
            .submit(SubmitRequest {
                deadline: Some(Duration::from_millis(20)),
                ..req("select 1", "acme")
            })
            .unwrap();
        let st = wait_terminal(&s, doomed.id);
        assert_eq!(st.state, JobState::Failed);
        assert_eq!(st.failure, Some("deadline"));
        assert!(st.detail.unwrap().contains("in queue"));
        wait_terminal(&s, blocker.id);
        assert_eq!(exec.executed(), vec![blocker.id], "doomed job never ran");
        s.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancel_covers_queued_running_and_terminal() {
        let dir = tmpdir("cancel");
        let exec = Arc::new(MockExec {
            fail_first: AtomicU32::new(0),
            error: QError::cancelled,
            executions: Mutex::new(Vec::new()),
            delay: Duration::from_millis(400),
        });
        let cfg = ServiceConfig {
            workers: 0,
            ..ServiceConfig::default()
        };
        let s = svc(&dir, exec.clone(), cfg);
        let t = s.submit(req("select 1", "acme")).unwrap();
        assert_eq!(s.cancel(t.id), CancelOutcome::CancelledQueued);
        let st = s.status(t.id).unwrap();
        assert_eq!(st.state, JobState::Failed);
        assert_eq!(st.failure, Some("cancelled"));
        assert_eq!(s.cancel(t.id), CancelOutcome::AlreadyTerminal);
        assert_eq!(s.cancel(999_999), CancelOutcome::Unknown);
        assert!(exec.executed().is_empty(), "cancelled before dispatch");
        s.shutdown();
        let _ = std::fs::remove_dir_all(&dir);

        // Running cancellation, with a live worker this time.
        let dir = tmpdir("cancel-running");
        let exec = Arc::new(MockExec {
            fail_first: AtomicU32::new(0),
            error: QError::cancelled,
            executions: Mutex::new(Vec::new()),
            delay: Duration::from_secs(30),
        });
        let s = svc(&dir, exec.clone(), ServiceConfig::default());
        let t = s.submit(req("select 1", "acme")).unwrap();
        let spin = Instant::now();
        while s.stats().running == 0 && spin.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(s.cancel(t.id), CancelOutcome::SignalledRunning);
        let st = wait_terminal(&s, t.id);
        assert_eq!(st.failure, Some("cancelled"));
        s.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_leaves_pending_and_reopen_redispatches_exactly_once() {
        let dir = tmpdir("recovery");
        let staged = {
            let cfg = ServiceConfig {
                workers: 0, // accept + journal, never dispatch
                ..ServiceConfig::default()
            };
            let s = svc(&dir, MockExec::ok(), cfg);
            let ids: Vec<u64> = (0..3)
                .map(|i| s.submit(req(&format!("select {i}"), "acme")).unwrap().id)
                .collect();
            s.shutdown(); // crash-adjacent: no drain, pending stays journaled
            ids
        };
        let exec = MockExec::ok();
        let s = QueryService::open(
            &dir,
            ServiceConfig::default(),
            exec.clone() as Arc<dyn JobExecutor>,
            Arc::new(LocalIds::default()),
            None,
        )
        .unwrap();
        for &id in &staged {
            let st = wait_terminal(&s, id);
            assert_eq!(st.state, JobState::Finished, "job {id}");
        }
        let mut executed = exec.executed();
        executed.sort_unstable();
        assert_eq!(executed, staged, "each pending job ran exactly once");
        assert_eq!(s.stats().dispatched, 3);
        // Fresh ids never collide with replayed ones.
        let t = s.submit(req("select 99", "acme")).unwrap();
        assert!(t.id > *staged.iter().max().unwrap());
        s.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_flushes_queued_work_to_terminals() {
        let dir = tmpdir("drain");
        let cfg = ServiceConfig {
            workers: 0,
            drain_timeout: Duration::from_millis(50),
            ..ServiceConfig::default()
        };
        let s = svc(&dir, MockExec::ok(), cfg);
        let ids: Vec<u64> = (0..3)
            .map(|i| s.submit(req(&format!("select {i}"), "t")).unwrap().id)
            .collect();
        s.drain();
        for id in ids {
            let st = s.status(id).unwrap();
            assert_eq!(st.state, JobState::Failed);
            assert_eq!(st.failure, Some("cancelled"));
        }
        assert!(matches!(
            s.submit(req("select 1", "t")),
            Err(SubmitError::ShuttingDown)
        ));
        s.shutdown();
        // Drained terminals are journaled: reopen has nothing pending.
        let exec = MockExec::ok();
        let s2 = QueryService::open(
            &dir,
            ServiceConfig::default(),
            exec.clone() as Arc<dyn JobExecutor>,
            Arc::new(LocalIds::default()),
            None,
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert!(exec.executed().is_empty(), "{:?}", exec.executed());
        s2.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let p = RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(100),
            cap: Duration::from_secs(1),
            seed: 7,
        };
        for attempt in 1..=4u32 {
            let a = p.backoff(3, attempt);
            let b = p.backoff(3, attempt);
            assert_eq!(a, b, "same (seed, id, attempt) must agree");
            let exp = Duration::from_millis(100 * (1 << (attempt - 1))).min(p.cap);
            assert!(
                a >= exp.mul_f64(0.5) && a <= exp,
                "attempt {attempt}: {a:?}"
            );
        }
        assert_ne!(p.backoff(3, 1), p.backoff(4, 1), "jitter varies by id");
        assert_eq!(p.backoff(9, 10), p.backoff(9, 10));
        assert!(p.backoff(9, 10) <= Duration::from_secs(1));
    }

    #[test]
    fn terminal_records_evict_beyond_retention() {
        let dir = tmpdir("evict");
        let cfg = ServiceConfig {
            retain_terminals: 2,
            ..ServiceConfig::default()
        };
        let s = svc(&dir, MockExec::ok(), cfg);
        let ids: Vec<u64> = (0..4)
            .map(|i| {
                let id = s.submit(req(&format!("select {i}"), "t")).unwrap().id;
                wait_terminal(&s, id);
                id
            })
            .collect();
        assert!(s.status(ids[0]).is_none(), "oldest terminal evicted");
        assert!(s.status(ids[3]).is_some());
        s.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_json_is_flat_and_complete() {
        let dir = tmpdir("statsjson");
        let s = svc(
            &dir,
            MockExec::ok(),
            ServiceConfig {
                workers: 0,
                ..ServiceConfig::default()
            },
        );
        s.submit(req("select 1", "a\"b")).unwrap();
        let json = s.stats_json();
        assert!(json.contains("\"admitting\":true"), "{json}");
        assert!(json.contains("\"queue_depth\":1"), "{json}");
        assert!(json.contains("\"tenant\":\"a\\\"b\""), "{json}");
        s.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
