//! Resilient multi-tenant submit/queue/dispatch service for qprog.
//!
//! This crate turns the passive progress monitor into a front door: clients
//! submit workloads (`POST /submit` when bridged through `qprog-monitor`),
//! get a query id back immediately, and the service takes responsibility
//! for running the query to a *typed terminal state* no matter what —
//! overload, transient faults, crashes, or shutdown:
//!
//! - **Crash safety** — every accepted submission is journaled to a JSONL
//!   WAL before acknowledgement ([`journal`]); reopening replays pending
//!   work exactly once, tolerating torn trailing lines.
//! - **Admission control** — bounded queue depth and per-tenant in-flight
//!   caps shed load with a typed rejection instead of unbounded memory.
//! - **Fair scheduling** — deficit round-robin across tenants ([`queue`]),
//!   so a flooding tenant cannot starve a polite one.
//! - **Retries** — transient failures (injected faults, operator panics)
//!   re-dispatch with capped exponential backoff and deterministic jitter;
//!   deliberate terminations (cancel, deadline, budget) never retry.
//! - **Deadlines** — the submit-time budget covers queue wait: what's left
//!   when a worker picks the job up is what the engine's governor gets.
//! - **Graceful drain** — shutdown stops admission, finishes or
//!   checkpoint-aborts in-flight work, and flushes terminals so streaming
//!   subscribers always see an ending.
//!
//! The crate is engine-agnostic: execution is behind [`JobExecutor`] and
//! status reporting behind [`StatusObserver`], implemented by the root
//! `qprog` crate (SessionBuilder-backed executor) and `qprog-monitor`
//! (progress-directory bridge) respectively. Chaos tests drive the
//! `service/submit`, `service/journal/append`, `service/dispatch`, and
//! `service/retry` failpoints (see `qprog-fault`).

pub mod journal;
pub mod queue;
pub mod service;
pub mod spans;

pub use journal::{Journal, PendingEntry, Replay, JOURNAL_FILE};
pub use queue::{AdmissionConfig, JobSpec, RejectReason};
pub use service::{
    CancelOutcome, JobExecutor, JobOutcome, JobState, JobStatus, LocalIds, QueryService,
    RetryPolicy, ServiceConfig, ServiceStats, StatusObserver, SubmitError, SubmitRequest, Ticket,
    MAX_SQL_BYTES,
};
pub use spans::{SpanLog, SpanTotals};
