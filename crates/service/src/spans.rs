//! Per-job lifecycle span log.
//!
//! Every accepted submission carries a [`SpanLog`]: an append-only list of
//! typed [`SpanStart`](TraceEventKind::SpanStart) /
//! [`SpanEnd`](TraceEventKind::SpanEnd) events covering the query's whole
//! lifecycle — `submit → journal append → queue wait → dispatch attempt N
//! (→ backoff park → queue wait → dispatch attempt N+1 …) → finalize` —
//! all relative to one epoch (the submit instant), so span timestamps and
//! the journal's recorded wall time share a clock.
//!
//! The log is only ever touched under the service's state lock at
//! lifecycle transitions (a handful of events per query), so the traced
//! execution hot path gains no new atomics. Spans are maintained as a
//! stack: at any moment the open chain is `query → (one phase span)`,
//! which makes the tree *gapless by construction* — each lifecycle phase
//! starts exactly where the previous one ended, and
//! [`close_children`](SpanLog::close_children) ties the last phase to the
//! terminal timestamp. The summed child durations therefore reconcile
//! exactly with the journal record's wall time.

use std::time::Instant;

use qprog_exec::span::{SpanKind, NO_PARENT};
use qprog_exec::trace::{TraceEvent, TraceEventKind};

/// Summed lifecycle durations for one job, derived from its [`SpanLog`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanTotals {
    /// Root (`query`) span duration: submit → terminal.
    pub total_us: u64,
    /// Submit-side time (validation, admission, journal append).
    pub submit_us: u64,
    /// Time parked in the ready queue, summed over every wait.
    pub queue_wait_us: u64,
    /// Time parked for retry backoff, summed over every park.
    pub backoff_us: u64,
    /// Execution time, summed over every dispatch attempt.
    pub exec_us: u64,
    /// Terminal-processing time.
    pub finalize_us: u64,
    /// Dispatch attempts that reached the executor.
    pub attempts: u32,
}

/// Append-only span event log for one job. See the module docs.
#[derive(Debug)]
pub struct SpanLog {
    epoch: Instant,
    next_id: u32,
    seq: u64,
    open: Vec<u32>,
    events: Vec<TraceEvent>,
}

impl SpanLog {
    /// Start a log whose timestamps are measured from `epoch`.
    pub fn new(epoch: Instant) -> SpanLog {
        SpanLog {
            epoch,
            next_id: 0,
            seq: 0,
            open: Vec::with_capacity(4),
            events: Vec::with_capacity(16),
        }
    }

    /// Microseconds elapsed since the log's epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Number of currently-open spans (the root counts).
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// Open a span now, nested under the innermost open span.
    pub fn push(&mut self, kind: SpanKind, arg: u32) -> u32 {
        let at = self.now_us();
        self.push_at(at, kind, arg)
    }

    /// Open a span at an explicit timestamp (e.g. a backoff park's
    /// scheduled ready time, which precedes the worker's pop).
    pub fn push_at(&mut self, at_us: u64, kind: SpanKind, arg: u32) -> u32 {
        let span = self.next_id;
        self.next_id += 1;
        let parent = self.open.last().copied().unwrap_or(NO_PARENT);
        self.emit(
            at_us,
            TraceEventKind::SpanStart {
                span,
                parent,
                kind,
                arg,
            },
        );
        self.open.push(span);
        span
    }

    /// Close the innermost open span now.
    pub fn pop(&mut self) {
        let at = self.now_us();
        self.pop_at(at);
    }

    /// Close the innermost open span at an explicit timestamp.
    pub fn pop_at(&mut self, at_us: u64) {
        if let Some(span) = self.open.pop() {
            self.emit(at_us, TraceEventKind::SpanEnd { span });
        }
    }

    /// Close every open span except the root at `at_us` (deepest first).
    pub fn close_children(&mut self, at_us: u64) {
        while self.open.len() > 1 {
            self.pop_at(at_us);
        }
    }

    /// Close everything, root included, at `at_us`.
    pub fn close_all(&mut self, at_us: u64) {
        while !self.open.is_empty() {
            self.pop_at(at_us);
        }
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Sum recorded durations per lifecycle kind. Open spans count up to
    /// the latest recorded timestamp.
    pub fn totals(&self) -> SpanTotals {
        let t_max = self.events.iter().map(|e| e.at_us).max().unwrap_or(0);
        let mut t = SpanTotals::default();
        for e in &self.events {
            let TraceEventKind::SpanStart { span, kind, .. } = e.kind else {
                continue;
            };
            let end = self
                .events
                .iter()
                .find_map(|x| match x.kind {
                    TraceEventKind::SpanEnd { span: s } if s == span => Some(x.at_us),
                    _ => None,
                })
                .unwrap_or(t_max);
            let dur = end.saturating_sub(e.at_us);
            match kind {
                SpanKind::Query => t.total_us += dur,
                SpanKind::Submit => t.submit_us += dur,
                SpanKind::JournalAppend => {} // nested inside submit
                SpanKind::QueueWait => t.queue_wait_us += dur,
                SpanKind::BackoffPark => t.backoff_us += dur,
                SpanKind::Dispatch => {
                    t.exec_us += dur;
                    t.attempts += 1;
                }
                SpanKind::Finalize => t.finalize_us += dur,
            }
        }
        t
    }

    fn emit(&mut self, at_us: u64, kind: TraceEventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(TraceEvent { seq, at_us, kind });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_discipline_yields_gapless_tiling() {
        let mut log = SpanLog::new(Instant::now());
        let root = log.push_at(0, SpanKind::Query, 0);
        assert_eq!(root, 0);
        log.push_at(0, SpanKind::Submit, 0);
        log.push_at(2, SpanKind::JournalAppend, 0);
        log.pop_at(8);
        log.pop_at(10); // submit ends
        log.push_at(10, SpanKind::QueueWait, 0);
        log.pop_at(100);
        log.push_at(100, SpanKind::Dispatch, 0);
        log.pop_at(600);
        log.push_at(600, SpanKind::BackoffPark, 1);
        log.pop_at(800);
        log.push_at(800, SpanKind::QueueWait, 1);
        log.pop_at(850);
        log.push_at(850, SpanKind::Dispatch, 1);
        log.close_children(1000);
        log.push_at(1000, SpanKind::Finalize, 0);
        log.close_all(1020);
        assert_eq!(log.depth(), 0);
        let t = log.totals();
        assert_eq!(t.total_us, 1020);
        assert_eq!(t.submit_us, 10);
        assert_eq!(t.queue_wait_us, 90 + 50);
        assert_eq!(t.exec_us, 500 + 150);
        assert_eq!(t.backoff_us, 200);
        assert_eq!(t.finalize_us, 20);
        assert_eq!(t.attempts, 2);
        assert_eq!(
            t.submit_us + t.queue_wait_us + t.backoff_us + t.exec_us + t.finalize_us,
            t.total_us,
            "children tile the root exactly"
        );
    }

    #[test]
    fn parents_nest_by_stack_position() {
        let mut log = SpanLog::new(Instant::now());
        log.push_at(0, SpanKind::Query, 0);
        log.push_at(1, SpanKind::Submit, 0);
        log.push_at(2, SpanKind::JournalAppend, 0);
        let parents: Vec<(u32, u32)> = log
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::SpanStart { span, parent, .. } => Some((span, parent)),
                _ => None,
            })
            .collect();
        assert_eq!(parents, vec![(0, NO_PARENT), (1, 0), (2, 1)]);
    }

    #[test]
    fn open_spans_count_to_latest_timestamp() {
        let mut log = SpanLog::new(Instant::now());
        log.push_at(0, SpanKind::Query, 0);
        log.push_at(5, SpanKind::QueueWait, 0);
        // Never closed: totals still attribute up to the last event seen.
        let t = log.totals();
        assert_eq!(t.queue_wait_us, 0); // t_max == 5, zero elapsed
        log.push_at(50, SpanKind::Dispatch, 0);
        let t = log.totals();
        assert_eq!(t.queue_wait_us, 45);
    }
}
