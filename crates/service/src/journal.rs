//! Crash-safe submit journal: a JSONL write-ahead log of accepted
//! submissions and their terminal outcomes.
//!
//! The journal follows the trace-corpus durability discipline (see
//! `qprog-obs::corpus`): the *intent* record is appended and flushed
//! **before** the submission is acknowledged or enqueued, and the terminal
//! record is appended only after the outcome is known. On reopen the file is
//! replayed tolerantly — a torn trailing line (the classic
//! crash-mid-append artifact) or an interior garbage line is skipped and
//! reported as a diagnostic, never an error — and the surviving records are
//! reduced to the set of *pending* submissions: every `submit` without a
//! matching `terminal`. Reopening also compacts the file (tmp + rename,
//! pending records only) so diagnostics do not recur and the log does not
//! grow without bound across restarts.
//!
//! Durability is process-crash safety: every append is flushed to the OS
//! before the caller proceeds, but no `fsync` is issued per record (the
//! submit path is latency-gated in CI; surviving power loss is out of
//! scope, matching the corpus).

use std::collections::BTreeSet;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

use qprog_exec::sync::Mutex;

/// Journal file name inside the service directory.
pub const JOURNAL_FILE: &str = "queue.jsonl";

/// One accepted-but-not-terminal submission, as persisted in the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingEntry {
    /// Process-unique query id (stable across restarts).
    pub id: u64,
    /// Submitting tenant.
    pub tenant: String,
    /// Human-readable label shown by the monitor.
    pub label: String,
    /// Workload text handed to the executor.
    pub sql: String,
    /// Total deadline budget measured from submission, if any.
    pub deadline: Option<Duration>,
}

/// What a reopen recovered from disk.
#[derive(Debug, Default)]
pub struct Replay {
    /// Submissions with no terminal record, in original submit order.
    pub pending: Vec<PendingEntry>,
    /// Human-readable recovery notes (torn lines, unparseable records,
    /// orphan terminals). Empty on a clean reopen.
    pub diagnostics: Vec<String>,
    /// Lowest id guaranteed not to collide with any journaled id.
    pub next_id: u64,
}

enum Record {
    Submit(PendingEntry),
    Terminal { id: u64 },
}

/// Append-only journal handle. All appends flush before returning.
pub struct Journal {
    path: PathBuf,
    inner: Mutex<Inner>,
}

struct Inner {
    file: File,
    /// Terminal records appended since the last compaction; used by the
    /// service to decide when a live rewrite is worthwhile.
    terminals: u64,
}

impl Journal {
    /// Open (creating if absent) the journal under `dir`, replaying any
    /// existing records. The returned [`Replay`] lists pending work and
    /// recovery diagnostics; the on-disk file is compacted to pending
    /// records only whenever the previous incarnation left terminals or
    /// damage behind.
    pub fn open(dir: &Path) -> io::Result<(Journal, Replay)> {
        fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let mut replay = Replay::default();
        let mut submits: Vec<PendingEntry> = Vec::new();
        let mut terminals: BTreeSet<u64> = BTreeSet::new();
        let mut max_id = 0u64;
        let mut damaged = false;
        if path.exists() {
            let data = fs::read(&path)?;
            let text = String::from_utf8_lossy(&data);
            let mut rest = text.as_ref();
            let mut lineno = 0usize;
            while !rest.is_empty() {
                lineno += 1;
                let (line, tail, complete) = match rest.find('\n') {
                    Some(i) => (&rest[..i], &rest[i + 1..], true),
                    None => (rest, "", false),
                };
                rest = tail;
                let trimmed = line.trim_end_matches('\r');
                if trimmed.is_empty() {
                    continue;
                }
                if !complete {
                    replay.diagnostics.push(format!(
                        "journal line {lineno}: torn trailing record ({} bytes) dropped",
                        trimmed.len()
                    ));
                    damaged = true;
                    break;
                }
                match parse_line(trimmed) {
                    Ok(Record::Submit(e)) => {
                        max_id = max_id.max(e.id);
                        submits.push(e);
                    }
                    Ok(Record::Terminal { id }) => {
                        max_id = max_id.max(id);
                        if submits.iter().all(|s| s.id != id) {
                            replay.diagnostics.push(format!(
                                "journal line {lineno}: terminal for unknown id {id}"
                            ));
                        }
                        terminals.insert(id);
                    }
                    Err(msg) => {
                        replay
                            .diagnostics
                            .push(format!("journal line {lineno}: {msg}"));
                        damaged = true;
                    }
                }
            }
        }
        replay.pending = submits
            .into_iter()
            .filter(|s| !terminals.contains(&s.id))
            .collect();
        replay.next_id = max_id + 1;
        // Compact whenever the old file carried anything beyond the live
        // pending set, so recovered diagnostics are reported exactly once.
        if damaged || !terminals.is_empty() {
            rewrite(&path, &replay.pending)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok((
            Journal {
                path,
                inner: Mutex::new(Inner { file, terminals: 0 }),
            },
            replay,
        ))
    }

    /// Journal file path (tests peek at it to simulate crashes).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Durably record an accepted submission. Must succeed before the
    /// submission is acknowledged; carries the `service/journal/append`
    /// failpoint so chaos tests can fail the WAL itself.
    pub fn append_submit(&self, e: &PendingEntry) -> io::Result<()> {
        qprog_fault::eval("service/journal/append").map_err(io::Error::other)?;
        let mut line = format!(
            "{{\"op\":\"submit\",\"id\":{},\"tenant\":\"{}\",\"label\":\"{}\"",
            e.id,
            escape(&e.tenant),
            escape(&e.label)
        );
        if let Some(d) = e.deadline {
            line.push_str(&format!(",\"deadline_ms\":{}", d.as_millis()));
        }
        line.push_str(&format!(",\"sql\":\"{}\"}}\n", escape(&e.sql)));
        let mut inner = self.inner.lock();
        inner.file.write_all(line.as_bytes())?;
        inner.file.flush()
    }

    /// Record a terminal outcome for `id` (`finished` or a failure kind).
    /// `wall_us` is the submit→terminal wall time on the job's span clock;
    /// the reconciliation tests assert it equals the summed span durations.
    pub fn append_terminal(&self, id: u64, state: &str, wall_us: u64) -> io::Result<()> {
        let line = format!(
            "{{\"op\":\"terminal\",\"id\":{id},\"state\":\"{}\",\"wall_us\":{wall_us}}}\n",
            escape(state)
        );
        let mut inner = self.inner.lock();
        inner.file.write_all(line.as_bytes())?;
        inner.terminals += 1;
        inner.file.flush()
    }

    /// Terminal records appended since open/compaction.
    pub fn terminal_count(&self) -> u64 {
        self.inner.lock().terminals
    }

    /// Rewrite the journal to contain exactly `live` (tmp + rename), e.g.
    /// when the terminal tail dwarfs the pending set. `live` must include
    /// every submission that has not yet reached a terminal state —
    /// queued, delayed *and* running.
    pub fn compact(&self, live: &[PendingEntry]) -> io::Result<()> {
        let mut inner = self.inner.lock();
        rewrite(&self.path, live)?;
        inner.file = OpenOptions::new().append(true).open(&self.path)?;
        inner.terminals = 0;
        Ok(())
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").field("path", &self.path).finish()
    }
}

fn rewrite(path: &Path, pending: &[PendingEntry]) -> io::Result<()> {
    let tmp = path.with_extension("jsonl.tmp");
    {
        let mut f = File::create(&tmp)?;
        for e in pending {
            let mut line = format!(
                "{{\"op\":\"submit\",\"id\":{},\"tenant\":\"{}\",\"label\":\"{}\"",
                e.id,
                escape(&e.tenant),
                escape(&e.label)
            );
            if let Some(d) = e.deadline {
                line.push_str(&format!(",\"deadline_ms\":{}", d.as_millis()));
            }
            line.push_str(&format!(",\"sql\":\"{}\"}}\n", escape(&e.sql)));
            f.write_all(line.as_bytes())?;
        }
        f.flush()?;
    }
    fs::rename(&tmp, path)
}

fn parse_line(line: &str) -> Result<Record, String> {
    if !line.starts_with('{') || !line.ends_with('}') {
        return Err("not a JSON object".to_string());
    }
    let op = string_field(line, "op").ok_or("missing \"op\"")?;
    let id = u64_field(line, "id").ok_or("missing \"id\"")?;
    match op.as_str() {
        "submit" => Ok(Record::Submit(PendingEntry {
            id,
            tenant: string_field(line, "tenant").ok_or("missing \"tenant\"")?,
            label: string_field(line, "label").ok_or("missing \"label\"")?,
            sql: string_field(line, "sql").ok_or("missing \"sql\"")?,
            deadline: u64_field(line, "deadline_ms").map(Duration::from_millis),
        })),
        "terminal" => Ok(Record::Terminal { id }),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// JSON string escaping for journal values (quotes, backslashes, control
/// characters). The inverse of [`unescape`].
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            '/' => out.push('/'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Extract string field `key` from a flat JSON object, handling escaped
/// quotes inside the value (unlike `qprog_obs::json::raw_field`, which is
/// only safe for pre-sanitized values — journal entries carry raw SQL).
pub(crate) fn string_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let start = line.find(&needle)? + needle.len();
    let bytes = line.as_bytes();
    let mut i = start;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return unescape(&line[start..i]),
            _ => i += 1,
        }
    }
    None
}

/// Extract numeric field `key` from a flat JSON object.
pub(crate) fn u64_field(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "qprog-journal-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn entry(id: u64, sql: &str) -> PendingEntry {
        PendingEntry {
            id,
            tenant: "acme".to_string(),
            label: format!("job-{id}"),
            sql: sql.to_string(),
            deadline: if id.is_multiple_of(2) {
                Some(Duration::from_millis(1500))
            } else {
                None
            },
        }
    }

    #[test]
    fn submit_terminal_round_trip() {
        let dir = tmpdir("roundtrip");
        {
            let (j, replay) = Journal::open(&dir).unwrap();
            assert!(replay.pending.is_empty());
            assert!(replay.diagnostics.is_empty());
            j.append_submit(&entry(1, "select 1")).unwrap();
            j.append_submit(&entry(2, "select \"q\" from t where a='x'"))
                .unwrap();
            j.append_submit(&entry(3, "line1\nline2\t\\end")).unwrap();
            j.append_terminal(1, "finished", 1234).unwrap();
        }
        let (_, replay) = Journal::open(&dir).unwrap();
        assert!(replay.diagnostics.is_empty(), "{:?}", replay.diagnostics);
        assert_eq!(replay.pending.len(), 2);
        assert_eq!(
            replay.pending[0],
            entry(2, "select \"q\" from t where a='x'")
        );
        assert_eq!(replay.pending[1], entry(3, "line1\nline2\t\\end"));
        assert_eq!(replay.next_id, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_line_is_dropped_with_diagnostic_and_does_not_recur() {
        let dir = tmpdir("torn");
        {
            let (j, _) = Journal::open(&dir).unwrap();
            j.append_submit(&entry(1, "select 1")).unwrap();
            j.append_submit(&entry(2, "select 2")).unwrap();
        }
        let path = dir.join(JOURNAL_FILE);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"op\":\"submit\",\"id\":3,\"ten").unwrap();
        drop(f);
        let (_, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay.pending.len(), 2);
        assert_eq!(replay.diagnostics.len(), 1, "{:?}", replay.diagnostics);
        assert!(
            replay.diagnostics[0].contains("torn"),
            "{:?}",
            replay.diagnostics
        );
        // The compaction rewrote the file: a second reopen is clean.
        let (_, replay2) = Journal::open(&dir).unwrap();
        assert!(replay2.diagnostics.is_empty(), "{:?}", replay2.diagnostics);
        assert_eq!(replay2.pending.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interior_garbage_and_orphan_terminals_are_diagnosed() {
        let dir = tmpdir("garbage");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join(JOURNAL_FILE),
            "{\"op\":\"submit\",\"id\":1,\"tenant\":\"t\",\"label\":\"l\",\"sql\":\"s\"}\n\
             not json at all\n\
             {\"op\":\"terminal\",\"id\":9,\"state\":\"finished\"}\n",
        )
        .unwrap();
        let (_, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay.pending.len(), 1);
        assert_eq!(replay.diagnostics.len(), 2, "{:?}", replay.diagnostics);
        assert!(replay.next_id >= 10, "{}", replay.next_id);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_drops_terminal_tail() {
        let dir = tmpdir("compact");
        let (j, _) = Journal::open(&dir).unwrap();
        for id in 1..=20 {
            j.append_submit(&entry(id, "select 1")).unwrap();
            if id <= 18 {
                j.append_terminal(id, "finished", id * 10).unwrap();
            }
        }
        assert_eq!(j.terminal_count(), 18);
        let live = vec![entry(19, "select 1"), entry(20, "select 1")];
        j.compact(&live).unwrap();
        assert_eq!(j.terminal_count(), 0);
        // post-compaction appends land after the rewritten records
        j.append_terminal(19, "finished", 42).unwrap();
        let (_, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay.pending, vec![entry(20, "select 1")]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn string_field_handles_escapes() {
        let line = "{\"op\":\"submit\",\"sql\":\"a \\\"b\\\" \\\\ c\",\"id\":7}";
        assert_eq!(string_field(line, "sql").unwrap(), "a \"b\" \\ c");
        assert_eq!(u64_field(line, "id"), Some(7));
        assert_eq!(string_field(line, "missing"), None);
    }
}
