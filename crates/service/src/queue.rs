//! Tenant-fair ready queue with delayed (retry-backoff) entries.
//!
//! Scheduling is deficit round-robin: tenants with ready work sit in a
//! rotation; each visit credits the tenant one quantum of deficit and
//! serves its head job when the accumulated deficit covers the job's cost.
//! All jobs currently cost one unit, so the rotation degenerates to strict
//! round-robin — which is exactly the fairness the service needs: a tenant
//! flooding the queue with hundreds of submissions still only gets one slot
//! per rotation, so a polite tenant's single query dispatches after at most
//! `#tenants` pops, never after the flood.
//!
//! Retry backoff lands in a delayed min-heap keyed by ready time; due
//! entries are promoted into their tenant's ready queue before every pop,
//! and poppers sleep no longer than the next promotion time.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// One unit of scheduling credit per rotation visit.
const QUANTUM: u32 = 1;
/// Cost charged per dispatched job.
const JOB_COST: u32 = 1;

/// A submission travelling through the queue/dispatch lifecycle.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Process-unique query id.
    pub id: u64,
    /// Submitting tenant (fairness + quota key).
    pub tenant: String,
    /// Monitor-facing label.
    pub label: String,
    /// Workload text.
    pub sql: String,
    /// Total deadline budget measured from `submitted`.
    pub deadline: Option<Duration>,
    /// When the submission was accepted (or recovered) — queue wait counts
    /// against the deadline from here.
    pub submitted: Instant,
    /// Completed execution attempts so far (0 for a fresh submission).
    pub attempt: u32,
}

/// Admission-control bounds enforced at submit time.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Max submissions queued or delayed across all tenants.
    pub max_queue_depth: usize,
    /// Max in-system (queued + delayed + running) submissions per tenant.
    pub max_tenant_inflight: usize,
    /// `Retry-After` hint handed to shed clients.
    pub retry_after: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_queue_depth: 256,
            max_tenant_inflight: 32,
            retry_after: Duration::from_secs(1),
        }
    }
}

/// Why a submission was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The global queue is at `max_queue_depth`.
    QueueFull,
    /// The tenant is at `max_tenant_inflight`.
    TenantCap,
}

impl RejectReason {
    /// Stable label used in metrics and error bodies.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::TenantCap => "tenant_cap",
        }
    }
}

/// Outcome of a blocking pop.
#[derive(Debug)]
pub enum Pop {
    /// A job is ready to dispatch.
    Job(JobSpec),
    /// Nothing became ready within the timeout.
    Timeout,
    /// The queue was closed; workers should exit without draining.
    Closed,
}

#[derive(Default)]
struct Tenant {
    ready: VecDeque<JobSpec>,
    deficit: u32,
}

#[derive(Default)]
struct QState {
    tenants: BTreeMap<String, Tenant>,
    /// Rotation of tenant names with non-empty ready queues.
    rotation: VecDeque<String>,
    /// (ready_at, id) min-heap of backoff entries.
    delayed: BinaryHeap<Reverse<(Instant, u64)>>,
    delayed_jobs: BTreeMap<u64, JobSpec>,
    ready: usize,
    closed: bool,
}

/// The service's ready queue. Thread-safe; poppers block on a condvar.
#[derive(Default)]
pub(crate) struct ReadyQueue {
    state: Mutex<QState>,
    cv: Condvar,
}

impl ReadyQueue {
    pub fn new() -> Self {
        ReadyQueue::default()
    }

    fn lock(&self) -> MutexGuard<'_, QState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Enqueue a ready job at its tenant's tail.
    pub fn push(&self, job: JobSpec) {
        let mut s = self.lock();
        Self::push_locked(&mut s, job);
        drop(s);
        self.cv.notify_one();
    }

    fn push_locked(s: &mut QState, job: JobSpec) {
        let tenant = s.tenants.entry(job.tenant.clone()).or_default();
        let was_empty = tenant.ready.is_empty();
        if was_empty {
            s.rotation.push_back(job.tenant.clone());
        }
        tenant.ready.push_back(job);
        s.ready += 1;
    }

    /// Park a job until `ready_at` (retry backoff).
    pub fn push_delayed(&self, job: JobSpec, ready_at: Instant) {
        let mut s = self.lock();
        s.delayed.push(Reverse((ready_at, job.id)));
        s.delayed_jobs.insert(job.id, job);
        drop(s);
        // Wake a popper so its sleep shrinks to the new promotion time.
        self.cv.notify_one();
    }

    /// Queued + delayed jobs (the admission-control depth).
    pub fn depth(&self) -> usize {
        let s = self.lock();
        s.ready + s.delayed_jobs.len()
    }

    /// Remove a queued or delayed job by id (cancellation). Returns the
    /// job if it had not yet been dispatched.
    pub fn remove(&self, id: u64) -> Option<JobSpec> {
        let mut s = self.lock();
        if let Some(job) = s.delayed_jobs.remove(&id) {
            // The heap entry stays; promotion skips ids no longer present.
            return Some(job);
        }
        for tenant in s.tenants.values_mut() {
            if let Some(pos) = tenant.ready.iter().position(|j| j.id == id) {
                let job = tenant.ready.remove(pos);
                s.ready -= 1;
                return job;
            }
        }
        None
    }

    /// Remove and return everything still queued or delayed (drain).
    pub fn drain_all(&self) -> Vec<JobSpec> {
        let mut s = self.lock();
        let mut out = Vec::with_capacity(s.ready + s.delayed_jobs.len());
        for (_, tenant) in std::mem::take(&mut s.tenants) {
            out.extend(tenant.ready);
        }
        s.rotation.clear();
        s.ready = 0;
        s.delayed.clear();
        out.extend(std::mem::take(&mut s.delayed_jobs).into_values());
        out.sort_by_key(|j| j.id);
        out
    }

    /// Close the queue: poppers drain to [`Pop::Closed`] without taking
    /// further work, leaving queued jobs journaled as pending.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }

    /// Blocking pop with deficit round-robin tenant selection.
    pub fn pop(&self, timeout: Duration) -> Pop {
        let deadline = Instant::now() + timeout;
        let mut s = self.lock();
        loop {
            if s.closed {
                return Pop::Closed;
            }
            Self::promote_due(&mut s, Instant::now());
            if let Some(job) = Self::pop_locked(&mut s) {
                return Pop::Job(job);
            }
            let now = Instant::now();
            if now >= deadline {
                return Pop::Timeout;
            }
            let mut wait = deadline - now;
            if let Some(&Reverse((at, _))) = s.delayed.peek() {
                wait = wait
                    .min(at.saturating_duration_since(now))
                    .max(Duration::from_millis(1));
            }
            s = self
                .cv
                .wait_timeout(s, wait)
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .0;
        }
    }

    fn promote_due(s: &mut QState, now: Instant) {
        while let Some(&Reverse((at, id))) = s.delayed.peek() {
            if at > now {
                break;
            }
            s.delayed.pop();
            // Cancelled-while-delayed jobs leave a stale heap entry.
            if let Some(job) = s.delayed_jobs.remove(&id) {
                Self::push_locked(s, job);
            }
        }
    }

    fn pop_locked(s: &mut QState) -> Option<JobSpec> {
        // Bounded by one full rotation: every visited tenant either serves
        // (deficit covers cost) or accumulates credit for the next visit.
        for _ in 0..s.rotation.len() {
            let name = s.rotation.pop_front()?;
            let tenant = match s.tenants.get_mut(&name) {
                Some(t) if !t.ready.is_empty() => t,
                _ => continue, // drained or drained-and-removed: drop from rotation
            };
            tenant.deficit += QUANTUM;
            if tenant.deficit >= JOB_COST {
                tenant.deficit -= JOB_COST;
                let job = tenant.ready.pop_front().expect("checked non-empty");
                s.ready -= 1;
                if tenant.ready.is_empty() {
                    tenant.deficit = 0;
                    s.tenants.remove(&name);
                } else {
                    s.rotation.push_back(name);
                }
                return Some(job);
            }
            s.rotation.push_back(name);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn job(id: u64, tenant: &str) -> JobSpec {
        JobSpec {
            id,
            tenant: tenant.to_string(),
            label: format!("j{id}"),
            sql: "select 1".to_string(),
            deadline: None,
            submitted: Instant::now(),
            attempt: 0,
        }
    }

    fn pop_id(q: &ReadyQueue) -> u64 {
        match q.pop(Duration::from_millis(500)) {
            Pop::Job(j) => j.id,
            other => panic!("expected a job, got {other:?}"),
        }
    }

    #[test]
    fn round_robin_interleaves_a_flooding_tenant() {
        let q = ReadyQueue::new();
        for id in 1..=6 {
            q.push(job(id, "flood"));
        }
        q.push(job(10, "polite"));
        q.push(job(11, "calm"));
        // flood arrived first so it leads the rotation, but polite and calm
        // each get a slot per rotation instead of waiting out the flood.
        let order: Vec<u64> = (0..8).map(|_| pop_id(&q)).collect();
        assert_eq!(order[..4], [1, 10, 11, 2], "{order:?}");
        assert_eq!(order[4..], [3, 4, 5, 6], "{order:?}");
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn delayed_jobs_promote_at_ready_time() {
        let q = ReadyQueue::new();
        q.push_delayed(job(1, "t"), Instant::now() + Duration::from_millis(40));
        assert_eq!(q.depth(), 1);
        assert!(matches!(q.pop(Duration::from_millis(5)), Pop::Timeout));
        let start = Instant::now();
        assert_eq!(pop_id(&q), 1);
        assert!(
            start.elapsed() >= Duration::from_millis(20),
            "{:?}",
            start.elapsed()
        );
    }

    #[test]
    fn remove_covers_ready_and_delayed() {
        let q = ReadyQueue::new();
        q.push(job(1, "t"));
        q.push_delayed(job(2, "t"), Instant::now() + Duration::from_secs(60));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.remove(2).map(|j| j.id), Some(2));
        assert_eq!(q.remove(1).map(|j| j.id), Some(1));
        assert!(q.remove(1).is_none());
        assert_eq!(q.depth(), 0);
        // The stale heap entry for 2 must not resurrect anything.
        assert!(matches!(q.pop(Duration::from_millis(5)), Pop::Timeout));
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(ReadyQueue::new());
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(matches!(h.join().unwrap(), Pop::Closed));
    }

    #[test]
    fn drain_all_empties_both_stores() {
        let q = ReadyQueue::new();
        q.push(job(1, "a"));
        q.push(job(2, "b"));
        q.push_delayed(job(3, "a"), Instant::now() + Duration::from_secs(60));
        let drained: Vec<u64> = q.drain_all().into_iter().map(|j| j.id).collect();
        assert_eq!(drained, vec![1, 2, 3]);
        assert_eq!(q.depth(), 0);
    }
}
