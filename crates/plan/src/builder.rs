//! Fluent construction of logical plans with name resolution and
//! bottom-up cardinality estimation.

use std::sync::Arc;

use qprog_core::join_est::JoinKind;
use qprog_exec::expr::Expr;
use qprog_exec::ops::agg::{AggFunc, AggSpec};
use qprog_exec::ops::sort::SortKey;
use qprog_storage::Catalog;
use qprog_types::{Field, QError, QResult, Schema};

use crate::cardinality::{group_estimate, join_node_estimate, predicate_selectivity};
use crate::logical::{ColStat, JoinAlgo, JoinCondition, LogicalPlan, Node};

/// Entry point for building logical plans against a catalog.
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    catalog: Catalog,
}

impl PlanBuilder {
    /// New builder over a catalog.
    pub fn new(catalog: Catalog) -> Self {
        PlanBuilder { catalog }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Start a plan with a base-table scan.
    pub fn scan(&self, table: &str) -> QResult<LogicalPlan> {
        let table = self.catalog.table(table)?;
        let stats = self.catalog.stats(table.name())?;
        let col_stats: Vec<ColStat> = stats
            .columns
            .iter()
            .map(|c| Some(Arc::new(c.clone())))
            .collect();
        Ok(LogicalPlan {
            schema: Arc::clone(table.schema()),
            estimate: stats.row_count as f64,
            col_stats,
            node: Node::Scan { table },
        })
    }
}

impl LogicalPlan {
    /// Resolve a column reference (`name` or `table.name`) to its index in
    /// this plan's output schema.
    pub fn col(&self, reference: &str) -> QResult<usize> {
        self.schema.index_of(reference)
    }

    /// Column-reference expression by name.
    pub fn col_expr(&self, reference: &str) -> QResult<Expr> {
        Ok(Expr::Column(self.col(reference)?))
    }

    /// Re-qualify every output column with a table alias (`FROM t AS x`).
    pub fn with_alias(self, alias: &str) -> LogicalPlan {
        LogicalPlan {
            schema: self.schema.with_qualifier(alias).into_ref(),
            ..self
        }
    }

    /// Apply a filter.
    pub fn filter(self, predicate: Expr) -> QResult<LogicalPlan> {
        let selectivity = predicate_selectivity(&predicate, &self.col_stats);
        let estimate = (self.estimate * selectivity).max(1.0);
        Ok(LogicalPlan {
            schema: Arc::clone(&self.schema),
            col_stats: self.col_stats.clone(),
            estimate,
            node: Node::Filter {
                input: Box::new(self),
                predicate,
            },
        })
    }

    /// Project onto named expressions.
    pub fn project(self, exprs: Vec<(Expr, &str)>) -> QResult<LogicalPlan> {
        let mut fields = Vec::with_capacity(exprs.len());
        let mut col_stats = Vec::with_capacity(exprs.len());
        for (e, name) in &exprs {
            let dt = e.output_type(&self.schema)?;
            fields.push(Field::new(*name, dt).with_nullable(true));
            col_stats.push(match e {
                Expr::Column(i) => self.col_stats.get(*i).cloned().flatten(),
                _ => None,
            });
        }
        Ok(LogicalPlan {
            schema: Schema::new(fields).into_ref(),
            col_stats,
            estimate: self.estimate,
            node: Node::Project {
                input: Box::new(self),
                exprs: exprs.into_iter().map(|(e, _)| e).collect(),
            },
        })
    }

    /// Equi-join with `build` as the build (left) side and `self` as the
    /// probe (right, streaming) side. Keys are resolved against the
    /// respective child schemas; output schema is `build ++ probe`.
    pub fn join_build(
        self,
        build: LogicalPlan,
        build_key: &str,
        probe_key: &str,
        algo: JoinAlgo,
    ) -> QResult<LogicalPlan> {
        self.join_build_kind(build, build_key, probe_key, algo, JoinKind::Inner)
    }

    /// Equi-join with explicit [`JoinKind`] semantics. `Semi`/`Anti` output
    /// only the probe side's columns; `LeftOuter` preserves unmatched probe
    /// rows (NULL-padding the build columns). Non-inner kinds require the
    /// hash algorithm.
    pub fn join_build_kind(
        self,
        build: LogicalPlan,
        build_key: &str,
        probe_key: &str,
        algo: JoinAlgo,
        kind: JoinKind,
    ) -> QResult<LogicalPlan> {
        if kind != JoinKind::Inner && algo != JoinAlgo::Hash {
            return Err(QError::plan(format!(
                "{kind:?} joins are only implemented for the hash algorithm"
            )));
        }
        let bk = build.col(build_key)?;
        let pk = self.col(probe_key)?;
        let bt = build.schema.field(bk)?.data_type;
        let pt = self.schema.field(pk)?.data_type;
        if !bt.is_key_type() || !pt.is_key_type() {
            return Err(QError::plan(format!(
                "join keys must be key types, got {bt} and {pt}"
            )));
        }
        let condition = JoinCondition::Equi {
            build_key: bk,
            probe_key: pk,
        };
        let inner_estimate = join_node_estimate(&build, &self, &condition);
        // Kind-specific cardinality: semi ≈ matching fraction of the probe
        // side (containment), anti its complement, outer = inner + anti.
        let probe_rows = self.estimate;
        let match_fraction = {
            let ndv = |p: &LogicalPlan, c: usize| {
                p.col_stats
                    .get(c)
                    .and_then(|s| s.as_ref())
                    .map(|s| s.ndv.max(1) as f64)
            };
            match (ndv(&build, bk), ndv(&self, pk)) {
                (Some(nb), Some(np)) => (nb / np).min(1.0),
                _ => 0.5,
            }
        };
        let estimate = match kind {
            JoinKind::Inner => inner_estimate,
            JoinKind::Semi => (probe_rows * match_fraction).max(1.0),
            JoinKind::Anti => (probe_rows * (1.0 - match_fraction)).max(1.0),
            JoinKind::LeftOuter => {
                (inner_estimate + probe_rows * (1.0 - match_fraction)).max(probe_rows)
            }
        };
        let (schema, col_stats) = match kind {
            JoinKind::Inner => {
                let mut cs = build.col_stats.clone();
                cs.extend(self.col_stats.iter().cloned());
                (build.schema.join(&self.schema).into_ref(), cs)
            }
            JoinKind::LeftOuter => {
                let nullable_build = qprog_types::Schema::new(
                    build
                        .schema
                        .fields()
                        .iter()
                        .map(|f| f.clone().with_nullable(true))
                        .collect(),
                );
                let mut cs = build.col_stats.clone();
                cs.extend(self.col_stats.iter().cloned());
                (nullable_build.join(&self.schema).into_ref(), cs)
            }
            JoinKind::Semi | JoinKind::Anti => (Arc::clone(&self.schema), self.col_stats.clone()),
        };
        Ok(LogicalPlan {
            schema,
            col_stats,
            estimate,
            node: Node::Join {
                build: Box::new(build),
                probe: Box::new(self),
                condition,
                algo,
                kind,
            },
        })
    }

    /// Hash equi-join (the common case).
    pub fn hash_join(
        self,
        build: LogicalPlan,
        build_key: &str,
        probe_key: &str,
    ) -> QResult<LogicalPlan> {
        self.join_build(build, build_key, probe_key, JoinAlgo::Hash)
    }

    /// Probe-preserving left outer hash join (`self LEFT JOIN build`).
    pub fn left_outer_join(
        self,
        build: LogicalPlan,
        build_key: &str,
        probe_key: &str,
    ) -> QResult<LogicalPlan> {
        self.join_build_kind(
            build,
            build_key,
            probe_key,
            JoinAlgo::Hash,
            JoinKind::LeftOuter,
        )
    }

    /// Semi hash join: probe rows with at least one build match (`EXISTS`).
    pub fn semi_join(
        self,
        build: LogicalPlan,
        build_key: &str,
        probe_key: &str,
    ) -> QResult<LogicalPlan> {
        self.join_build_kind(build, build_key, probe_key, JoinAlgo::Hash, JoinKind::Semi)
    }

    /// Anti hash join: probe rows with no build match (`NOT EXISTS`).
    pub fn anti_join(
        self,
        build: LogicalPlan,
        build_key: &str,
        probe_key: &str,
    ) -> QResult<LogicalPlan> {
        self.join_build_kind(build, build_key, probe_key, JoinAlgo::Hash, JoinKind::Anti)
    }

    /// Nested-loops join with an arbitrary condition; `self` is the outer
    /// (streaming) side. The theta predicate indexes the concatenated
    /// (inner-build ++ outer) schema... note: for consistency with the other
    /// joins the build (left) side comes first in the output schema, and it
    /// is also the materialized inner side; `self` streams.
    pub fn nl_join(self, inner: LogicalPlan, condition: JoinCondition) -> QResult<LogicalPlan> {
        if let JoinCondition::Equi {
            build_key,
            probe_key,
        } = &condition
        {
            inner.schema.field(*build_key)?;
            self.schema.field(*probe_key)?;
        }
        let estimate = join_node_estimate(&inner, &self, &condition);
        let mut col_stats = inner.col_stats.clone();
        col_stats.extend(self.col_stats.iter().cloned());
        Ok(LogicalPlan {
            schema: inner.schema.join(&self.schema).into_ref(),
            col_stats,
            estimate,
            node: Node::Join {
                build: Box::new(inner),
                probe: Box::new(self),
                condition,
                algo: JoinAlgo::NestedLoops,
                kind: JoinKind::Inner,
            },
        })
    }

    /// GROUP BY with aggregates. `aggs` are `(function, input column name
    /// or None for COUNT(*), output alias)`.
    pub fn aggregate(
        self,
        group_by: &[&str],
        aggs: &[(AggFunc, Option<&str>, &str)],
    ) -> QResult<LogicalPlan> {
        let group_cols: Vec<usize> = group_by
            .iter()
            .map(|g| self.col(g))
            .collect::<QResult<_>>()?;
        let mut fields = Vec::new();
        let mut col_stats: Vec<ColStat> = Vec::new();
        for &g in &group_cols {
            fields.push(self.schema.field(g)?.clone());
            col_stats.push(self.col_stats.get(g).cloned().flatten());
        }
        let mut specs = Vec::with_capacity(aggs.len());
        for (func, col_name, alias) in aggs {
            let col = match col_name {
                Some(n) => Some(self.col(n)?),
                None => {
                    if *func != AggFunc::CountStar {
                        return Err(QError::plan(format!("{func:?} requires an input column")));
                    }
                    None
                }
            };
            let input_type = col
                .map(|c| self.schema.field(c))
                .transpose()?
                .map(|f| f.data_type);
            fields.push(Field::new(*alias, func.output_type(input_type)).with_nullable(true));
            col_stats.push(None);
            specs.push(AggSpec { func: *func, col });
        }
        let group_stats: Vec<&ColStat> = group_cols.iter().map(|&g| &self.col_stats[g]).collect();
        let estimate = group_estimate(self.estimate, &group_stats);
        Ok(LogicalPlan {
            schema: Schema::new(fields).into_ref(),
            col_stats,
            estimate,
            node: Node::Aggregate {
                input: Box::new(self),
                group_cols,
                aggs: specs,
            },
        })
    }

    /// ORDER BY.
    pub fn sort(self, keys: &[(&str, bool)]) -> QResult<LogicalPlan> {
        let keys: Vec<SortKey> = keys
            .iter()
            .map(|(name, ascending)| {
                Ok(SortKey {
                    col: self.col(name)?,
                    ascending: *ascending,
                })
            })
            .collect::<QResult<_>>()?;
        Ok(LogicalPlan {
            schema: Arc::clone(&self.schema),
            col_stats: self.col_stats.clone(),
            estimate: self.estimate,
            node: Node::Sort {
                input: Box::new(self),
                keys,
            },
        })
    }

    /// LIMIT.
    pub fn limit(self, n: usize) -> QResult<LogicalPlan> {
        let estimate = self.estimate.min(n as f64);
        Ok(LogicalPlan {
            schema: Arc::clone(&self.schema),
            col_stats: self.col_stats.clone(),
            estimate,
            node: Node::Limit {
                input: Box::new(self),
                n,
            },
        })
    }
}

/// Literal expression helper re-exported for plan construction.
pub fn lit(v: impl Into<qprog_types::Value>) -> Expr {
    Expr::Literal(v.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qprog_exec::expr::BinOp;
    use qprog_storage::Table;
    use qprog_types::row;
    use qprog_types::DataType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut customer = Table::new(
            "customer",
            Schema::new(vec![
                Field::new("custkey", DataType::Int64),
                Field::new("nationkey", DataType::Int64),
            ]),
        );
        for i in 0..1000i64 {
            customer.push(row![i, i % 25]).unwrap();
        }
        let mut nation = Table::new(
            "nation",
            Schema::new(vec![
                Field::new("nationkey", DataType::Int64),
                Field::new("name", DataType::Utf8),
            ]),
        );
        for i in 0..25i64 {
            nation.push(row![i, format!("nation{i}")]).unwrap();
        }
        c.register(customer).unwrap();
        c.register(nation).unwrap();
        c
    }

    #[test]
    fn scan_carries_stats_and_estimate() {
        let b = PlanBuilder::new(catalog());
        let p = b.scan("customer").unwrap();
        assert_eq!(p.estimate, 1000.0);
        assert_eq!(p.col_stats.len(), 2);
        assert!(p.col_stats[1].as_ref().unwrap().ndv == 25);
        assert!(b.scan("nosuch").is_err());
    }

    #[test]
    fn filter_scales_estimate() {
        let b = PlanBuilder::new(catalog());
        let p = b.scan("customer").unwrap();
        let pred = Expr::binary(BinOp::Lt, p.col_expr("custkey").unwrap(), lit(500i64));
        let p = p.filter(pred).unwrap();
        assert!((400.0..=600.0).contains(&p.estimate), "{}", p.estimate);
    }

    #[test]
    fn join_schema_and_estimate() {
        let b = PlanBuilder::new(catalog());
        let probe = b.scan("customer").unwrap();
        let build = b.scan("nation").unwrap();
        let j = probe
            .hash_join(build, "nation.nationkey", "customer.nationkey")
            .unwrap();
        assert_eq!(j.schema.arity(), 4);
        // PK-FK: |C|·|N| / 25 = 1000
        assert!((j.estimate - 1000.0).abs() < 1.0, "{}", j.estimate);
        // qualified resolution works on the join schema
        assert!(j.col("customer.nationkey").is_ok());
        assert!(j.col("nation.nationkey").is_ok());
        assert!(j.col("nationkey").is_err()); // ambiguous
    }

    #[test]
    fn join_rejects_bad_keys() {
        let b = PlanBuilder::new(catalog());
        let probe = b.scan("customer").unwrap();
        let build = b.scan("nation").unwrap();
        assert!(probe.hash_join(build, "nation.nosuch", "custkey").is_err());
    }

    #[test]
    fn aggregate_schema_and_estimate() {
        let b = PlanBuilder::new(catalog());
        let p = b
            .scan("customer")
            .unwrap()
            .aggregate(
                &["nationkey"],
                &[
                    (AggFunc::CountStar, None, "cnt"),
                    (AggFunc::Sum, Some("custkey"), "total"),
                ],
            )
            .unwrap();
        assert_eq!(p.schema.arity(), 3);
        assert_eq!(p.estimate, 25.0);
        assert_eq!(p.schema.field(1).unwrap().name, "cnt");
        assert_eq!(p.schema.field(2).unwrap().data_type, DataType::Int64);
    }

    #[test]
    fn aggregate_rejects_missing_column_for_sum() {
        let b = PlanBuilder::new(catalog());
        let p = b.scan("customer").unwrap();
        assert!(p.aggregate(&[], &[(AggFunc::Sum, None, "s")]).is_err());
    }

    #[test]
    fn sort_limit_project() {
        let b = PlanBuilder::new(catalog());
        let p = b
            .scan("customer")
            .unwrap()
            .sort(&[("custkey", false)])
            .unwrap()
            .limit(10)
            .unwrap();
        assert_eq!(p.estimate, 10.0);
        let p2 = b
            .scan("customer")
            .unwrap()
            .project(vec![(Expr::col(0), "k")])
            .unwrap();
        assert_eq!(p2.schema.arity(), 1);
        assert!(p2.col_stats[0].is_some());
    }

    #[test]
    fn display_renders_tree() {
        let b = PlanBuilder::new(catalog());
        let probe = b.scan("customer").unwrap();
        let build = b.scan("nation").unwrap();
        let j = probe
            .hash_join(build, "nation.nationkey", "customer.nationkey")
            .unwrap();
        let d = j.display();
        assert!(d.contains("Join[Hash/Inner]"));
        assert!(d.contains("Scan customer"));
        assert_eq!(j.operator_count(), 3);
    }
}
