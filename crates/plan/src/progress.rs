//! The live progress tracker bridging operator metrics to the gnm model.

use qprog_core::gnm::{PipelineProgress, PipelineState, ProgressSnapshot};
use qprog_exec::metrics::MetricsRegistry;

use crate::pipeline::PipelineSet;

/// Polls a query's operator metrics and produces gnm
/// [`ProgressSnapshot`]s. Cheap to clone and `Send`, so a monitor thread
/// can observe a query executing elsewhere.
///
/// **Future-pipeline refinement** (§4.4 / Chaudhuri et al.): an operator
/// that has not started yet still carries its optimizer estimate — but when
/// the online framework refines an estimate *below* it (e.g. a pipeline's
/// joins converge to exact cardinalities), every pending ancestor's `N_i`
/// is rescaled by the ratio `refined(input) / optimizer(input)`, clamped to
/// the hard lower bound of work already observed.
#[derive(Debug, Clone)]
pub struct ProgressTracker {
    registry: MetricsRegistry,
    pipelines: PipelineSet,
    /// Optimizer estimates frozen at compile time, per registry index.
    initial_estimates: Vec<f64>,
    /// Direct input operators (registry indices), per registry index.
    op_inputs: Vec<Vec<usize>>,
    /// Highest fraction any snapshot of this query has reported, as f64
    /// bits (non-negative floats order identically as u64 bits). Shared
    /// across clones so every watcher sees one monotone series: batch
    /// execution advances `K_i` and publishes `N_i` in separate atomic
    /// writes, and a sampler landing between them would otherwise see the
    /// ratio dip.
    high_water: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl ProgressTracker {
    /// New tracker over a compiled query's metrics and pipeline
    /// decomposition, without refinement structure (estimates are read
    /// as-published).
    pub fn new(registry: MetricsRegistry, pipelines: PipelineSet) -> Self {
        let n = registry.len();
        ProgressTracker {
            registry,
            pipelines,
            initial_estimates: Vec::new(),
            op_inputs: vec![Vec::new(); n],
            high_water: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    /// Attach the refinement structure: the compile-time optimizer estimate
    /// and the direct-input registry indices of every operator.
    pub fn with_refinement(
        mut self,
        initial_estimates: Vec<f64>,
        op_inputs: Vec<Vec<usize>>,
    ) -> Self {
        debug_assert_eq!(initial_estimates.len(), self.registry.len());
        debug_assert_eq!(op_inputs.len(), self.registry.len());
        self.initial_estimates = initial_estimates;
        self.op_inputs = op_inputs;
        self
    }

    /// The metrics registry (per-operator `K_i` and `N_i` estimates).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Per-operator `N_i` estimates with future-pipeline refinement
    /// applied: started operators report their own (online) estimate;
    /// pending ones scale their optimizer estimate by their inputs'
    /// refinement ratios.
    pub fn refined_estimates(&self) -> Vec<f64> {
        let n = self.registry.len();
        let mut refined = vec![f64::NAN; n];
        for i in 0..n {
            self.refine_op(i, &mut refined);
        }
        refined
    }

    /// Memoized bottom-up refinement of one operator (the input graph is a
    /// tree, so recursion depth is the plan depth).
    fn refine_op(&self, i: usize, refined: &mut [f64]) -> f64 {
        if !refined[i].is_nan() {
            return refined[i];
        }
        let m = self.registry.get(i).expect("index in range");
        let started = m.is_finished() || m.emitted() > 0 || m.driver_consumed() > 0;
        let value = if started || self.initial_estimates.is_empty() {
            m.estimated_total()
        } else {
            let mut ratio = 1.0f64;
            for &c in &self.op_inputs[i] {
                let init = self.initial_estimates[c].max(1.0);
                ratio *= (self.refine_op(c, refined) / init).max(0.0);
            }
            (self.initial_estimates[i] * ratio).max(m.emitted() as f64)
        };
        refined[i] = value;
        value
    }

    /// Point-in-time gnm snapshot (with refinement applied to pending
    /// pipelines).
    pub fn snapshot(&self) -> ProgressSnapshot {
        let refined = self.refined_estimates();
        let pipelines = self
            .pipelines
            .groups()
            .iter()
            .enumerate()
            .map(|(id, ops)| {
                let mut done: u64 = 0;
                let mut total: f64 = 0.0;
                let mut all_finished = !ops.is_empty();
                let mut any_activity = false;
                for &op in ops {
                    let m = self
                        .registry
                        .get(op)
                        .expect("pipeline references a registered operator");
                    done += m.emitted();
                    total += refined[op];
                    all_finished &= m.is_finished();
                    any_activity |= m.emitted() > 0 || m.driver_consumed() > 0 || m.is_finished();
                }
                let state = if all_finished {
                    PipelineState::Finished
                } else if any_activity {
                    PipelineState::Running
                } else {
                    PipelineState::Pending
                };
                let mut p = match state {
                    PipelineState::Finished => PipelineProgress::finished(id, done),
                    PipelineState::Running => PipelineProgress::running(id, done, total),
                    PipelineState::Pending => PipelineProgress::pending(id, total),
                };
                p.done = done;
                p
            })
            .collect();
        let snap = ProgressSnapshot::new(pipelines);
        // Monotone clamp: remember the highest fraction ever reported and
        // never report below it. Non-negative f64 bit patterns compare
        // identically as integers, so fetch_max on the bits suffices.
        let bits = snap.raw_fraction().to_bits();
        let prev = self
            .high_water
            .fetch_max(bits, std::sync::atomic::Ordering::AcqRel);
        snap.with_floor(f64::from_bits(prev.max(bits)))
    }

    /// Convenience: the gnm progress fraction right now.
    pub fn fraction(&self) -> f64 {
        self.snapshot().fraction()
    }

    /// Confidence bounds on the progress fraction: operators that publish
    /// estimate intervals (the `once` estimators do, per §4.1's guarantees)
    /// contribute their bounds to `T(Q)`; others contribute their refined
    /// point estimate. Returns `(lo, hi)` with `lo ≤ fraction ≤ hi`.
    pub fn fraction_bounds(&self) -> (f64, f64) {
        let refined = self.refined_estimates();
        let mut current: u64 = 0;
        let mut total_lo = 0.0f64;
        let mut total_hi = 0.0f64;
        for (i, (_, m)) in self.registry.iter().enumerate() {
            current += m.emitted();
            match m.estimated_bounds() {
                Some((lo, hi)) => {
                    total_lo += lo;
                    total_hi += hi;
                }
                None => {
                    total_lo += refined[i];
                    total_hi += refined[i];
                }
            }
        }
        let frac = |total: f64| {
            if total <= 0.0 {
                0.0
            } else {
                (current as f64 / total).clamp(0.0, 1.0)
            }
        };
        // a larger T(Q) means a smaller progress fraction
        (frac(total_hi), frac(total_lo.max(current as f64)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_metrics() {
        let mut reg = MetricsRegistry::new();
        let a = reg.register("scan", 100.0);
        let b = reg.register("join", 300.0);
        let mut pipes = PipelineSet::new();
        let p0 = pipes.new_pipeline();
        let p1 = pipes.new_pipeline();
        pipes.assign(p0, 0);
        pipes.assign(p1, 1);

        let tracker = ProgressTracker::new(reg, pipes);
        // nothing has run: all pending, fraction 0
        let s = tracker.snapshot();
        assert_eq!(s.fraction(), 0.0);
        assert_eq!(s.pipelines().len(), 2);

        // scan finishes 100, join halfway
        for _ in 0..100 {
            a.record_emitted();
        }
        a.mark_finished();
        for _ in 0..150 {
            b.record_emitted();
        }
        let s = tracker.snapshot();
        assert_eq!(s.current(), 250);
        assert!((s.total() - 400.0).abs() < 1e-9);
        assert!((s.fraction() - 0.625).abs() < 1e-9);

        b.mark_finished();
        assert!(tracker.snapshot().is_complete());
        assert_eq!(tracker.fraction(), 1.0);
    }

    #[test]
    fn snapshot_fraction_never_regresses_when_estimates_rise() {
        // Batch execution publishes K_i and N_i in separate atomic writes;
        // a sampler between them must not see the fraction dip.
        let mut reg = MetricsRegistry::new();
        let scan = reg.register("scan", 1000.0);
        let agg = reg.register("hash_agg", 50.0);
        let mut pipes = PipelineSet::new();
        let p0 = pipes.new_pipeline();
        let p1 = pipes.new_pipeline();
        pipes.assign(p0, 0);
        pipes.assign(p1, 1);
        let tracker = ProgressTracker::new(reg, pipes);
        scan.set_estimated_total(1000.0);
        for _ in 0..500 {
            scan.record_emitted();
        }
        agg.record_driver(500);
        let before = tracker.snapshot().fraction();
        // the group estimate rises with no counter advance: raw ratio drops
        agg.set_estimated_total(120.0);
        let after = tracker.snapshot().fraction();
        assert!(
            tracker.snapshot().raw_fraction() < before,
            "premise: the raw ratio did dip"
        );
        assert!(
            after >= before,
            "clamped fraction regressed: {after} < {before}"
        );
        // clones share the high-water mark
        assert!(tracker.clone().snapshot().fraction() >= before);
    }

    #[test]
    fn tracker_is_cloneable_and_shares_state() {
        let mut reg = MetricsRegistry::new();
        let a = reg.register("op", 10.0);
        let mut pipes = PipelineSet::new();
        let p = pipes.new_pipeline();
        pipes.assign(p, 0);
        let tracker = ProgressTracker::new(reg, pipes);
        let clone = tracker.clone();
        a.record_emitted();
        assert_eq!(clone.snapshot().current(), 1);
    }

    #[test]
    fn fraction_bounds_bracket_the_point_estimate() {
        let mut reg = MetricsRegistry::new();
        let a = reg.register("join", 100.0);
        let mut pipes = PipelineSet::new();
        let p = pipes.new_pipeline();
        pipes.assign(p, 0);
        let tracker = ProgressTracker::new(reg, pipes);
        for _ in 0..40 {
            a.record_emitted();
        }
        a.set_estimated_total(100.0);
        a.set_estimated_bounds(80.0, 120.0);
        let (lo, hi) = tracker.fraction_bounds();
        let point = tracker.fraction();
        assert!(lo <= point && point <= hi, "{lo} ≤ {point} ≤ {hi}");
        assert!((lo - 40.0 / 120.0).abs() < 1e-9);
        assert!((hi - 40.0 / 80.0).abs() < 1e-9);
        // once finished, bounds collapse
        a.mark_finished();
        let (lo, hi) = tracker.fraction_bounds();
        assert_eq!((lo, hi), (1.0, 1.0));
    }

    #[test]
    fn pending_estimates_scale_with_refined_inputs() {
        // plan: agg(idx 0) over join(idx 1); optimizer says join = 1000,
        // agg = 100. The join refines to 10× (10_000) while the agg is
        // still pending → the agg's N should scale to 1000.
        let mut reg = MetricsRegistry::new();
        let _agg = reg.register("hash_agg", 100.0);
        let join = reg.register("hash_join", 1000.0);
        let mut pipes = PipelineSet::new();
        let p0 = pipes.new_pipeline();
        let p1 = pipes.new_pipeline();
        pipes.assign(p0, 0);
        pipes.assign(p1, 1);
        let tracker = ProgressTracker::new(reg, pipes)
            .with_refinement(vec![100.0, 1000.0], vec![vec![1], vec![]]);

        // join started and refined its estimate online
        join.record_driver(1);
        join.set_estimated_total(10_000.0);
        let refined = tracker.refined_estimates();
        assert_eq!(refined[1], 10_000.0);
        assert_eq!(refined[0], 1_000.0, "pending agg scales by the input ratio");

        // once the agg starts, its own estimate takes over
        let m0 = tracker.registry().get(0).unwrap();
        m0.record_driver(1);
        m0.set_estimated_total(4242.0);
        assert_eq!(tracker.refined_estimates()[0], 4242.0);
    }

    #[test]
    fn refinement_cascades_through_pending_chain() {
        // limit(0) ← sort(1) ← join(2); join refines 2×, both pending
        // ancestors scale 2×.
        let mut reg = MetricsRegistry::new();
        reg.register("limit", 50.0);
        reg.register("sort", 500.0);
        let join = reg.register("hash_join", 1000.0);
        let mut pipes = PipelineSet::new();
        let p = pipes.new_pipeline();
        for i in 0..3 {
            pipes.assign(p, i);
        }
        let tracker = ProgressTracker::new(reg, pipes)
            .with_refinement(vec![50.0, 500.0, 1000.0], vec![vec![1], vec![2], vec![]]);
        join.record_driver(1);
        join.set_estimated_total(2000.0);
        let refined = tracker.refined_estimates();
        assert_eq!(refined[2], 2000.0);
        assert_eq!(refined[1], 1000.0);
        assert_eq!(refined[0], 100.0);
    }

    #[test]
    fn refinement_never_drops_below_observed_work() {
        let mut reg = MetricsRegistry::new();
        let top = reg.register("filter", 100.0);
        let child = reg.register("scan", 1000.0);
        let mut pipes = PipelineSet::new();
        let p = pipes.new_pipeline();
        pipes.assign(p, 0);
        pipes.assign(p, 1);
        let tracker = ProgressTracker::new(reg, pipes)
            .with_refinement(vec![100.0, 1000.0], vec![vec![1], vec![]]);
        // child collapses to 1 row...
        child.record_driver(1);
        child.set_estimated_total(1.0);
        // ...but the filter already emitted 7
        for _ in 0..7 {
            top.record_emitted();
        }
        // started ops use their own estimate; simulate pending by a fresh
        // op: here top has emitted, so it reports its own estimate (≥ 7)
        assert!(tracker.refined_estimates()[0] >= 7.0);
    }
}
