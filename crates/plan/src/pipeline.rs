//! Pipeline decomposition bookkeeping.
//!
//! Pipelines are maximal subtrees of concurrently executing operators,
//! delimited by blocking operators (§3). The physical compiler assigns every
//! operator a pipeline id as it walks the plan:
//!
//! - filter / project / limit run in their parent's pipeline;
//! - a sort or aggregation is a blocking boundary: its *input* subtree forms
//!   a new pipeline, while the operator itself emits into the parent's;
//! - a hash join's build subtree is a new pipeline; the probe subtree and
//!   the join itself stay in the parent's;
//! - a merge join blocks both inputs (each becomes a pipeline);
//! - a nested-loops join materializes its inner input (new pipeline).

/// Accumulates the operator→pipeline assignment during compilation.
#[derive(Debug, Default, Clone)]
pub struct PipelineSet {
    groups: Vec<Vec<usize>>,
}

impl PipelineSet {
    /// Empty set.
    pub fn new() -> Self {
        PipelineSet::default()
    }

    /// Allocate a new, empty pipeline; returns its id.
    pub fn new_pipeline(&mut self) -> usize {
        self.groups.push(Vec::new());
        self.groups.len() - 1
    }

    /// Assign operator `op` (a metrics-registry index) to pipeline `p`.
    pub fn assign(&mut self, pipeline: usize, op: usize) {
        self.groups[pipeline].push(op);
    }

    /// Number of pipelines.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True iff no pipelines exist.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Operator indices of pipeline `p`.
    pub fn ops(&self, pipeline: usize) -> &[usize] {
        &self.groups[pipeline]
    }

    /// All pipelines.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_and_assignment() {
        let mut p = PipelineSet::new();
        assert!(p.is_empty());
        let a = p.new_pipeline();
        let b = p.new_pipeline();
        assert_eq!((a, b), (0, 1));
        p.assign(a, 10);
        p.assign(b, 11);
        p.assign(a, 12);
        assert_eq!(p.len(), 2);
        assert_eq!(p.ops(0), &[10, 12]);
        assert_eq!(p.ops(1), &[11]);
        assert_eq!(p.groups().len(), 2);
    }
}
