//! Planning: logical plans, optimizer cardinality estimates, physical
//! compilation with estimator wiring, pipeline decomposition, and the
//! progress tracker.
//!
//! The optimizer's cardinality estimation ([`cardinality`]) is deliberately
//! classical — equi-width histograms, uniformity within buckets,
//! independence across columns, containment for joins. Under Zipfian skew
//! its estimates are badly wrong (the paper's Fig. 4(a) observes a ~13×
//! error from PostgreSQL), which is precisely what the online framework
//! corrects.
//!
//! Physical compilation ([`physical`]) wires the chosen
//! [`EstimationMode`](qprog_core::EstimationMode) into the operators:
//!
//! - `Once`: hash-join chains connected through probe inputs become one
//!   [`PipelineEstimator`](qprog_core::pipeline_est::PipelineEstimator)
//!   (Algorithm 1 push-down, with `AttrSource` resolution through column
//!   provenance); single joins get the binary estimator; a GROUP BY on a
//!   join attribute directly above a hash join shares a
//!   [`DistinctTracker`](qprog_core::distinct::DistinctTracker) pushed into
//!   the join; other aggregations track their input; selections use dne.
//! - `Dne` / `Byte`: every join and selection gets the corresponding
//!   baseline estimator seeded with the optimizer estimate.
//! - `Off`: no estimation (the overhead baseline).

pub mod builder;
pub mod cardinality;
pub mod logical;
pub mod physical;
pub mod pipeline;
pub mod progress;

pub use builder::PlanBuilder;
pub use logical::{JoinAlgo, JoinCondition, LogicalPlan, Node};
pub use physical::{CompiledQuery, PhysicalOptions};
pub use progress::ProgressTracker;
