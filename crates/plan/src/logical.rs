//! Logical query plans.
//!
//! Plans are built by [`PlanBuilder`](crate::builder::PlanBuilder) (or the
//! SQL binder) with column references already resolved to indices; every
//! node carries its output schema, per-column statistics provenance, and
//! the optimizer's cardinality estimate computed bottom-up at construction.

use std::sync::Arc;

use qprog_core::join_est::JoinKind;
use qprog_exec::expr::Expr;
use qprog_exec::ops::agg::AggSpec;
use qprog_exec::ops::sort::SortKey;
use qprog_storage::stats::ColumnStats;
use qprog_storage::Table;
use qprog_types::SchemaRef;

/// Join algorithm choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgo {
    Hash,
    Merge,
    NestedLoops,
}

/// Join condition.
#[derive(Debug, Clone)]
pub enum JoinCondition {
    /// Equi-join: key column index in the build (left) child and in the
    /// probe (right) child.
    Equi { build_key: usize, probe_key: usize },
    /// Theta join over the concatenated (build ++ probe) row — only valid
    /// with [`JoinAlgo::NestedLoops`].
    Theta(Expr),
    /// Cross product — only valid with [`JoinAlgo::NestedLoops`].
    Cross,
}

/// Statistics provenance for one output column.
pub type ColStat = Option<Arc<ColumnStats>>;

/// A logical plan node with derived metadata.
#[derive(Debug, Clone)]
pub struct LogicalPlan {
    pub node: Node,
    /// Output schema.
    pub schema: SchemaRef,
    /// Per-output-column base statistics, where still traceable to a base
    /// table column.
    pub col_stats: Vec<ColStat>,
    /// Optimizer cardinality estimate for this node's output.
    pub estimate: f64,
}

/// The node variants.
#[derive(Debug, Clone)]
pub enum Node {
    Scan {
        table: Arc<Table>,
    },
    Filter {
        input: Box<LogicalPlan>,
        predicate: Expr,
    },
    Project {
        input: Box<LogicalPlan>,
        exprs: Vec<Expr>,
    },
    Join {
        /// Build (left) child.
        build: Box<LogicalPlan>,
        /// Probe (right) child — the side that streams.
        probe: Box<LogicalPlan>,
        condition: JoinCondition,
        algo: JoinAlgo,
        /// Inner / probe-preserving outer / semi / anti semantics.
        kind: JoinKind,
    },
    Aggregate {
        input: Box<LogicalPlan>,
        group_cols: Vec<usize>,
        aggs: Vec<AggSpec>,
    },
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<SortKey>,
    },
    Limit {
        input: Box<LogicalPlan>,
        n: usize,
    },
}

impl LogicalPlan {
    /// Number of operators in the plan tree.
    pub fn operator_count(&self) -> usize {
        1 + match &self.node {
            Node::Scan { .. } => 0,
            Node::Filter { input, .. }
            | Node::Project { input, .. }
            | Node::Aggregate { input, .. }
            | Node::Sort { input, .. }
            | Node::Limit { input, .. } => input.operator_count(),
            Node::Join { build, probe, .. } => build.operator_count() + probe.operator_count(),
        }
    }

    /// Pretty multi-line plan rendering (EXPLAIN-style).
    pub fn display(&self) -> String {
        let mut out = String::new();
        self.render(0, &mut out);
        out
    }

    fn render(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let line = match &self.node {
            Node::Scan { table } => format!("Scan {} (rows={})", table.name(), table.num_rows()),
            Node::Filter { .. } => "Filter".to_string(),
            Node::Project { .. } => "Project".to_string(),
            Node::Join {
                condition,
                algo,
                kind,
                ..
            } => match condition {
                JoinCondition::Equi {
                    build_key,
                    probe_key,
                } => format!("Join[{algo:?}/{kind:?}] build.{build_key} = probe.{probe_key}"),
                JoinCondition::Theta(_) => format!("Join[{algo:?}/{kind:?}] theta"),
                JoinCondition::Cross => format!("Join[{algo:?}/{kind:?}] cross"),
            },
            Node::Aggregate { group_cols, .. } => format!("Aggregate group_by={group_cols:?}"),
            Node::Sort { .. } => "Sort".to_string(),
            Node::Limit { n, .. } => format!("Limit {n}"),
        };
        out.push_str(&format!("{pad}{line} (est={:.0})\n", self.estimate));
        match &self.node {
            Node::Scan { .. } => {}
            Node::Filter { input, .. }
            | Node::Project { input, .. }
            | Node::Aggregate { input, .. }
            | Node::Sort { input, .. }
            | Node::Limit { input, .. } => input.render(depth + 1, out),
            Node::Join { build, probe, .. } => {
                build.render(depth + 1, out);
                probe.render(depth + 1, out);
            }
        }
    }
}
