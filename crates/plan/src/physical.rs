//! Physical compilation: logical plans → instrumented operator trees with
//! estimator wiring and pipeline decomposition.

use std::sync::Arc;

use qprog_core::distinct::DistinctTracker;
use qprog_core::join_est::JoinKind;
use qprog_core::pipeline_est::{AttrSource, JoinSpec, PipelineEstimator};
use qprog_core::EstimationMode;
use qprog_exec::governor::{Budgets, CancellationToken, Governor};
use qprog_exec::metrics::{MetricsRegistry, OpMetrics};
use qprog_exec::ops::agg::AggEstimation;
use qprog_exec::ops::hash_join::{JoinEstimation, PipelineShared};
use qprog_exec::ops::merge_join::{MergeJoin, MergeJoinEstimation};
use qprog_exec::ops::nl_join::{NestedLoopsJoin, NlCondition};
use qprog_exec::ops::{
    BoxedOp, Filter, HashAggregate, HashJoin, Limit, Project, Sort, SortAggregate, TableScan,
};
use qprog_exec::runtime::run_with_observer;
use qprog_exec::sync::Mutex;
use qprog_exec::trace::{AbortKind, EventBus, TraceEventKind};
use qprog_types::{QError, QResult, Row};

use crate::logical::{JoinAlgo, JoinCondition, LogicalPlan, Node};
use crate::pipeline::PipelineSet;
use crate::progress::ProgressTracker;

/// Knobs for physical compilation.
#[derive(Debug, Clone, Copy)]
pub struct PhysicalOptions {
    /// Online estimation strategy wired into the operators.
    pub mode: EstimationMode,
    /// Block-sample fraction delivered first by every table scan
    /// (0 disables sampling; the paper's experiments use 0.05–0.10).
    pub sample_fraction: f64,
    /// Seed for sampling randomness.
    pub seed: u64,
    /// Grace hash-join partition count.
    pub partitions: usize,
    /// Simulated per-block scan I/O latency in microseconds (0 = in-memory).
    /// Reproduces the paper's disk-resident cost model for the overhead
    /// experiments.
    pub block_io_us: u64,
    /// Use sort-based aggregation instead of hash aggregation (§4.2's
    /// alternative implementation; estimation behaves identically).
    pub sort_aggregate: bool,
    /// Hard budget: maximum tuples processed across all operators; on
    /// breach the query aborts with `BudgetExceeded`. `None` = unlimited.
    pub max_rows: Option<u64>,
    /// Soft budget: per-operator estimator histogram memory in bytes; on
    /// breach the estimator *degrades* to the dne baseline (trace event +
    /// metrics counter) instead of aborting. `None` = unlimited.
    pub max_hist_bytes: Option<usize>,
    /// Degree of partition parallelism for hash-join build/probe drains
    /// (1 = serial, the default; the `QPROG_THREADS` env var overrides the
    /// default). Any value keeps results and converged estimates identical
    /// to the serial engine.
    pub threads: usize,
    /// Row-batch capacity for vectorized execution (the `QPROG_BATCH_ROWS`
    /// env var overrides the default of
    /// [`qprog_types::DEFAULT_BATCH_ROWS`]). `1` is strict equivalence
    /// mode: the engine degenerates to tuple-at-a-time pulls and reproduces
    /// the serial per-row trace byte-for-byte. Any value keeps results,
    /// converged estimates, and published progress fractions identical —
    /// only the granularity of checkpoints and metric updates changes.
    pub batch_rows: usize,
}

impl Default for PhysicalOptions {
    fn default() -> Self {
        PhysicalOptions {
            mode: EstimationMode::Once,
            sample_fraction: 0.10,
            seed: 42,
            partitions: 16,
            block_io_us: 0,
            sort_aggregate: false,
            max_rows: None,
            max_hist_bytes: None,
            threads: std::env::var("QPROG_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(1)
                .max(1),
            batch_rows: std::env::var("QPROG_BATCH_ROWS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(qprog_types::DEFAULT_BATCH_ROWS)
                .max(1),
        }
    }
}

impl PhysicalOptions {
    /// Options with a specific estimation mode and the other defaults.
    pub fn with_mode(mode: EstimationMode) -> Self {
        PhysicalOptions {
            mode,
            ..PhysicalOptions::default()
        }
    }

    /// The lifecycle budgets these options request.
    pub fn budgets(&self) -> Budgets {
        Budgets {
            max_rows: self.max_rows,
            max_hist_bytes: self.max_hist_bytes,
        }
    }
}

/// A compiled, instrumented, ready-to-run query.
pub struct CompiledQuery {
    root: BoxedOp,
    /// Registry index of the plan-root operator. Usually `0` (registration
    /// is top-down), but a join chain at the root registers bottom-up.
    root_op: usize,
    registry: MetricsRegistry,
    pipelines: PipelineSet,
    /// Compile-time optimizer estimates per operator (registry order).
    initial_estimates: Vec<f64>,
    /// Direct-input operator indices per operator, for future-pipeline
    /// refinement.
    op_inputs: Vec<Vec<usize>>,
    /// Which estimator drives each operator's `N_i` (registry order) —
    /// surfaced by EXPLAIN ANALYZE.
    estimator_labels: Vec<&'static str>,
    /// Trace bus (from [`compile_traced`]); `QueryFinished` is published
    /// here exactly once when the root is exhausted.
    bus: Option<Arc<EventBus>>,
    /// Output rows pulled so far (for the `QueryFinished` payload).
    rows_emitted: u64,
    finished_published: bool,
    aborted_published: bool,
    /// Root batch capacity for [`collect`](Self::collect)/
    /// [`run_with`](Self::run_with) (from `PhysicalOptions::batch_rows`).
    batch_rows: usize,
    /// Single-row buffer for [`step`](Self::step) (Volcano stepping stays
    /// tuple-granular regardless of `batch_rows`).
    step_buf: Option<qprog_types::RowBatch>,
    step_pos: usize,
    step_exhausted: bool,
}

impl CompiledQuery {
    /// Per-operator metrics in registration order.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The pipeline decomposition.
    pub fn pipelines(&self) -> &PipelineSet {
        &self.pipelines
    }

    /// Compile-time optimizer estimates per operator (registry order).
    pub fn initial_estimates(&self) -> &[f64] {
        &self.initial_estimates
    }

    /// Direct-input operator indices per operator (registry order).
    pub fn op_inputs(&self) -> &[Vec<usize>] {
        &self.op_inputs
    }

    /// Registry index of the plan-root operator (the top of the
    /// [`op_inputs`](Self::op_inputs) tree).
    pub fn root_op(&self) -> usize {
        self.root_op
    }

    /// Which estimator drives each operator's `N_i` (registry order):
    /// `"exact"`, `"framework"`, `"pipeline"`, `"gee/mle"`, `"pushdown"`,
    /// `"dne"`, `"byte"`, or `"optimizer"`.
    pub fn estimator_labels(&self) -> &[&'static str] {
        &self.estimator_labels
    }

    /// The trace bus, when compiled with [`compile_traced`].
    pub fn bus(&self) -> Option<&Arc<EventBus>> {
        self.bus.as_ref()
    }

    fn publish_query_finished(&mut self) {
        if self.finished_published || self.aborted_published {
            return;
        }
        self.finished_published = true;
        if let Some(bus) = &self.bus {
            bus.publish(TraceEventKind::QueryFinished {
                rows: self.rows_emitted,
            });
        }
    }

    /// Publish the terminal `QueryAborted` event for `error` (at most one
    /// terminal event is ever published). Estimates are deliberately *not*
    /// pinned (`finish_all`): an aborted query never reached its totals, so
    /// progress must freeze where it stopped rather than jump to 1.0.
    fn publish_query_aborted(&mut self, error: &QError) {
        if self.finished_published || self.aborted_published {
            return;
        }
        self.aborted_published = true;
        if let Some(bus) = &self.bus {
            bus.publish(TraceEventKind::QueryAborted {
                reason: AbortKind::from_error(error),
                rows: self.rows_emitted,
            });
        }
    }

    /// The root batch capacity rows are pulled at.
    pub fn batch_rows(&self) -> usize {
        self.batch_rows
    }

    /// Override the root batch capacity for subsequent
    /// [`collect`](Self::collect)/[`run_with`](Self::run_with) calls
    /// (clamped to ≥ 1; `1` is strict per-row equivalence mode). Operators
    /// size their internal scratch batches from the capacity of the batch
    /// they are handed, so the override applies to the whole plan.
    pub fn set_batch_rows(&mut self, n: usize) {
        self.batch_rows = n.max(1);
    }

    /// The query's lifecycle governor (attached at compile time).
    pub fn governor(&self) -> Option<&Arc<Governor>> {
        self.registry.governor()
    }

    /// A cloneable token that cancels this query cooperatively; operators
    /// observe it at their next checkpoint.
    pub fn cancellation_token(&self) -> Option<CancellationToken> {
        self.governor().map(|g| g.token().clone())
    }

    /// Request cooperative cancellation.
    pub fn cancel(&self) {
        if let Some(g) = self.governor() {
            g.cancel();
        }
    }

    /// Arm a wall-clock deadline `after` from now; on expiry the query
    /// aborts with `DeadlineExceeded` at its next checkpoint stride.
    pub fn set_deadline(&self, after: std::time::Duration) {
        if let Some(g) = self.governor() {
            g.set_deadline(after);
        }
    }

    /// A cloneable, thread-safe progress tracker for this query, with
    /// future-pipeline refinement wired in (§4.4).
    pub fn tracker(&self) -> ProgressTracker {
        ProgressTracker::new(self.registry.clone(), self.pipelines.clone())
            .with_refinement(self.initial_estimates.clone(), self.op_inputs.clone())
    }

    /// Run to completion, collecting all output rows. On failure —
    /// cancellation, deadline, budget breach, operator panic, injected
    /// fault, or organic error — the terminal `QueryAborted` event is
    /// published and the error propagates.
    pub fn collect(&mut self) -> QResult<Vec<Row>> {
        let rows = match qprog_exec::runtime::collect(self.root.as_mut(), self.batch_rows) {
            Ok(rows) => rows,
            Err(e) => {
                self.publish_query_aborted(&e);
                return Err(e);
            }
        };
        // The root is exhausted: operators abandoned by early termination
        // (LIMIT) will never run again — pin their totals so progress
        // reads 1.0 and monitors observe completion.
        self.registry.finish_all();
        self.rows_emitted += rows.len() as u64;
        self.publish_query_finished();
        Ok(rows)
    }

    /// Run to completion, invoking `observer` with a progress snapshot
    /// after every `every_n` output rows and at completion.
    pub fn run_with(
        &mut self,
        every_n: u64,
        mut observer: impl FnMut(&qprog_core::gnm::ProgressSnapshot),
    ) -> QResult<Vec<Row>> {
        let tracker = self.tracker();
        let rows = match run_with_observer(self.root.as_mut(), every_n, self.batch_rows, |_| {
            observer(&tracker.snapshot());
        }) {
            Ok(rows) => rows,
            Err(e) => {
                self.publish_query_aborted(&e);
                return Err(e);
            }
        };
        self.registry.finish_all();
        self.rows_emitted += rows.len() as u64;
        self.publish_query_finished();
        observer(&tracker.snapshot());
        Ok(rows)
    }

    /// Pull a single output row (Volcano-style stepping, for monitors that
    /// want finer control than [`run_with`](Self::run_with)). Stepping
    /// always pulls through a single-row batch, so it is tuple-granular
    /// regardless of the configured `batch_rows`.
    pub fn step(&mut self) -> QResult<Option<Row>> {
        if self.step_buf.is_none() {
            let arity = self.root.schema().arity();
            self.step_buf = Some(qprog_types::RowBatch::with_capacity(arity, 1));
        }
        loop {
            let buf = self.step_buf.as_mut().expect("step buffer just ensured");
            if self.step_pos < buf.len() {
                let row = buf.row(self.step_pos);
                self.step_pos += 1;
                self.rows_emitted += 1;
                return Ok(Some(row));
            }
            if self.step_exhausted {
                self.registry.finish_all();
                self.publish_query_finished();
                return Ok(None);
            }
            self.step_pos = 0;
            let status = match qprog_exec::governor::guarded_next_batch(self.root.as_mut(), buf) {
                Ok(status) => status,
                Err(e) => {
                    self.publish_query_aborted(&e);
                    return Err(e);
                }
            };
            if status.is_exhausted() {
                self.step_exhausted = true;
            }
        }
    }
}

/// Compile a logical plan.
pub fn compile(plan: &LogicalPlan, opts: &PhysicalOptions) -> QResult<CompiledQuery> {
    compile_traced(plan, opts, None)
}

/// Compile a logical plan with an optional trace bus attached: every
/// operator's metrics publish [`qprog_exec::trace::TraceEvent`]s
/// (phase transitions, estimate refinements) to `bus`, and the compiled
/// query publishes `QueryFinished` when its root is exhausted.
pub fn compile_traced(
    plan: &LogicalPlan,
    opts: &PhysicalOptions,
    bus: Option<Arc<EventBus>>,
) -> QResult<CompiledQuery> {
    let mut registry = match &bus {
        Some(b) => MetricsRegistry::traced(Arc::clone(b)),
        None => MetricsRegistry::new(),
    };
    // Every compiled query gets a governor: cancellation/deadline support
    // costs one relaxed load + one relaxed fetch_add per checkpoint, within
    // the paper's per-tuple budget.
    registry.set_governor(Arc::new(Governor::new(opts.budgets())));
    let mut c = Compiler {
        opts,
        registry,
        pipelines: PipelineSet::new(),
        initial_estimates: Vec::new(),
        op_inputs: Vec::new(),
        estimator_labels: Vec::new(),
        scan_counter: 0,
        chain_root: None,
    };
    let root_pipeline = c.pipelines.new_pipeline();
    let root = c.compile(plan, root_pipeline)?;
    let root_op = c.chain_root.take().unwrap_or(0);
    Ok(CompiledQuery {
        root,
        root_op,
        registry: c.registry,
        pipelines: c.pipelines,
        initial_estimates: c.initial_estimates,
        op_inputs: c.op_inputs,
        estimator_labels: c.estimator_labels,
        bus,
        rows_emitted: 0,
        finished_published: false,
        aborted_published: false,
        batch_rows: opts.batch_rows.max(1),
        step_buf: None,
        step_pos: 0,
        step_exhausted: false,
    })
}

struct Compiler<'a> {
    opts: &'a PhysicalOptions,
    registry: MetricsRegistry,
    pipelines: PipelineSet,
    initial_estimates: Vec<f64>,
    op_inputs: Vec<Vec<usize>>,
    estimator_labels: Vec<&'static str>,
    scan_counter: u64,
    /// Set by [`compile_join_chain`](Self::compile_join_chain): a compiled
    /// chain registers its joins bottom-up, so the subtree's root operator
    /// is NOT the first index registered (the default assumption of
    /// [`compile_child`](Self::compile_child)). The chain leaves its true
    /// root index here for the caller to consume.
    chain_root: Option<usize>,
}

impl Compiler<'_> {
    fn register_idx(
        &mut self,
        name: &str,
        estimate: f64,
        pipeline: usize,
    ) -> (usize, Arc<OpMetrics>) {
        let idx = self.registry.len();
        let m = self.registry.register(name, estimate);
        self.pipelines.assign(pipeline, idx);
        self.initial_estimates.push(estimate);
        self.op_inputs.push(Vec::new());
        self.estimator_labels.push("optimizer");
        (idx, m)
    }

    /// Record which estimator drives operator `idx`'s lifetime total.
    fn set_label(&mut self, idx: usize, label: &'static str) {
        self.estimator_labels[idx] = label;
    }

    /// The label for a join estimation mode under the current options.
    fn join_label(&self) -> &'static str {
        match self.opts.mode {
            EstimationMode::Off => "optimizer",
            EstimationMode::Once => "framework",
            EstimationMode::Dne => "dne",
            EstimationMode::Byte => "byte",
        }
    }

    /// Compile a child plan and record the edge from `parent` to the
    /// child's root operator (for future-pipeline refinement).
    fn compile_child(
        &mut self,
        parent: usize,
        plan: &LogicalPlan,
        pipeline: usize,
    ) -> QResult<BoxedOp> {
        let child_idx = self.registry.len();
        let op = self.compile(plan, pipeline)?;
        let child_idx = self.chain_root.take().unwrap_or(child_idx);
        self.op_inputs[parent].push(child_idx);
        Ok(op)
    }

    fn compile(&mut self, plan: &LogicalPlan, pipeline: usize) -> QResult<BoxedOp> {
        match &plan.node {
            Node::Scan { table } => {
                let (idx, m) =
                    self.register_idx(&format!("scan({})", table.name()), plan.estimate, pipeline);
                // A scan's lifetime total is its table's row count.
                self.set_label(idx, "exact");
                self.scan_counter += 1;
                let scan = TableScan::sampled(
                    Arc::clone(table),
                    self.opts.sample_fraction,
                    self.opts.seed.wrapping_add(self.scan_counter),
                    m,
                )
                .with_io_cost(std::time::Duration::from_micros(self.opts.block_io_us));
                Ok(Box::new(scan))
            }
            Node::Filter { input, predicate } => {
                let (idx, m) = self.register_idx("filter", plan.estimate, pipeline);
                let input_estimate = input.estimate;
                let child = self.compile_child(idx, input, pipeline)?;
                let mut f = Filter::new(child, predicate.clone(), m);
                if self.opts.mode != EstimationMode::Off {
                    // §4.3: selections have no preprocessing phase → dne.
                    f = f.with_dne(input_estimate.round() as u64, plan.estimate);
                    self.set_label(idx, "dne");
                }
                Ok(Box::new(f))
            }
            Node::Project { input, exprs } => {
                let (idx, m) = self.register_idx("project", plan.estimate, pipeline);
                let child = self.compile_child(idx, input, pipeline)?;
                Ok(Box::new(Project::new(
                    child,
                    exprs.clone(),
                    Arc::clone(&plan.schema),
                    m,
                )))
            }
            Node::Sort { input, keys } => {
                let (idx, m) = self.register_idx("sort", plan.estimate, pipeline);
                let input_pipeline = self.pipelines.new_pipeline();
                let child = self.compile_child(idx, input, input_pipeline)?;
                Ok(Box::new(Sort::new(child, keys.clone(), m)))
            }
            Node::Limit { input, n } => {
                let (idx, m) = self.register_idx("limit", plan.estimate, pipeline);
                let child = self.compile_child(idx, input, pipeline)?;
                Ok(Box::new(Limit::new(child, *n, m)))
            }
            Node::Aggregate {
                input,
                group_cols,
                aggs,
            } => self.compile_aggregate(plan, input, group_cols, aggs, pipeline),
            Node::Join { .. } => self.compile_join(plan, pipeline, None),
        }
    }

    fn compile_aggregate(
        &mut self,
        plan: &LogicalPlan,
        input: &LogicalPlan,
        group_cols: &[usize],
        aggs: &[qprog_exec::ops::agg::AggSpec],
        pipeline: usize,
    ) -> QResult<BoxedOp> {
        let agg_name = if self.opts.sort_aggregate {
            "sort_agg"
        } else {
            "hash_agg"
        };
        let (agg_idx, m) = self.register_idx(agg_name, plan.estimate, pipeline);
        let input_pipeline = self.pipelines.new_pipeline();

        // §4.2 (end): when grouping on the join attribute of a hash join
        // directly below, push distinct-value tracking into the join.
        let pushdown_tracker = if self.opts.mode == EstimationMode::Once
            && group_cols.len() == 1
            && group_col_is_join_key(input, group_cols[0])
        {
            Some(Arc::new(Mutex::new(DistinctTracker::new(
                input.estimate.round() as u64,
            ))))
        } else {
            None
        };

        let child_idx = self.registry.len();
        let child = match (&input.node, &pushdown_tracker) {
            (Node::Join { .. }, Some(tracker)) => {
                self.compile_join(input, input_pipeline, Some(Arc::clone(tracker)))?
            }
            _ => self.compile(input, input_pipeline)?,
        };
        let child_idx = self.chain_root.take().unwrap_or(child_idx);
        self.op_inputs[agg_idx].push(child_idx);

        let estimation = match (&pushdown_tracker, self.opts.mode) {
            (Some(tracker), _) => {
                self.set_label(agg_idx, "pushdown");
                AggEstimation::Pushdown(Arc::clone(tracker))
            }
            (None, EstimationMode::Off) => AggEstimation::Off,
            (None, _) => {
                self.set_label(agg_idx, "gee/mle");
                AggEstimation::Track {
                    input_size_hint: input.estimate.round() as u64,
                }
            }
        };
        if self.opts.sort_aggregate {
            Ok(Box::new(SortAggregate::new(
                child,
                group_cols.to_vec(),
                aggs.to_vec(),
                Arc::clone(&plan.schema),
                estimation,
                m,
            )))
        } else {
            Ok(Box::new(HashAggregate::new(
                child,
                group_cols.to_vec(),
                aggs.to_vec(),
                Arc::clone(&plan.schema),
                estimation,
                m,
            )))
        }
    }

    fn compile_join(
        &mut self,
        plan: &LogicalPlan,
        pipeline: usize,
        agg_tracker: Option<Arc<Mutex<DistinctTracker>>>,
    ) -> QResult<BoxedOp> {
        let Node::Join {
            build,
            probe,
            condition,
            algo,
            kind,
        } = &plan.node
        else {
            return Err(QError::internal("compile_join on a non-join node"));
        };
        match algo {
            JoinAlgo::Hash => {
                let JoinCondition::Equi { .. } = condition else {
                    return Err(QError::plan("hash join requires an equi-join condition"));
                };
                if self.opts.mode == EstimationMode::Once && *kind == JoinKind::Inner {
                    let chain = collect_join_chain(plan, JoinAlgo::Hash);
                    if chain.len() >= 2 {
                        match self.compile_join_chain(
                            &chain,
                            JoinAlgo::Hash,
                            pipeline,
                            agg_tracker.clone(),
                        ) {
                            Ok(op) => return Ok(op),
                            Err(QError::Estimation(_)) => {
                                // unsupported pipeline shape (e.g. shared
                                // derived sources): fall back to per-join
                                // binary estimation below
                            }
                            Err(e) => return Err(e),
                        }
                    }
                }
                self.compile_binary_hash_join(
                    plan,
                    build,
                    probe,
                    condition,
                    *kind,
                    pipeline,
                    agg_tracker,
                )
            }
            JoinAlgo::Merge => {
                let JoinCondition::Equi {
                    build_key,
                    probe_key,
                } = condition
                else {
                    return Err(QError::plan("merge join requires an equi-join condition"));
                };
                // §4.1.4.3: chains of sort-merge joins share one push-down
                // estimator just like hash pipelines.
                if self.opts.mode == EstimationMode::Once && *kind == JoinKind::Inner {
                    let chain = collect_join_chain(plan, JoinAlgo::Merge);
                    if chain.len() >= 2 {
                        match self.compile_join_chain(&chain, JoinAlgo::Merge, pipeline, None) {
                            Ok(op) => return Ok(op),
                            Err(QError::Estimation(_)) => {}
                            Err(e) => return Err(e),
                        }
                    }
                }
                let (idx, m) = self.register_idx("merge_join", plan.estimate, pipeline);
                self.set_label(idx, self.join_label());
                let build_pipeline = self.pipelines.new_pipeline();
                let probe_pipeline = self.pipelines.new_pipeline();
                let probe_estimate = probe.estimate;
                let build_op = self.compile_child(idx, build, build_pipeline)?;
                let probe_op = self.compile_child(idx, probe, probe_pipeline)?;
                let estimation = match self.opts.mode {
                    EstimationMode::Off => MergeJoinEstimation::Off,
                    EstimationMode::Once => MergeJoinEstimation::Once {
                        probe_size_hint: probe_estimate.round() as u64,
                    },
                    EstimationMode::Dne => MergeJoinEstimation::Dne {
                        optimizer_estimate: plan.estimate,
                    },
                    EstimationMode::Byte => MergeJoinEstimation::Byte {
                        optimizer_estimate: plan.estimate,
                        probe_row_bytes: row_bytes(probe),
                    },
                };
                Ok(Box::new(MergeJoin::new(
                    build_op, probe_op, *build_key, *probe_key, estimation, m,
                )))
            }
            JoinAlgo::NestedLoops => {
                let (idx, m) = self.register_idx("nl_join", plan.estimate, pipeline);
                let inner_pipeline = self.pipelines.new_pipeline();
                let outer_estimate = probe.estimate;
                let inner_op = self.compile_child(idx, build, inner_pipeline)?;
                let outer_op = self.compile_child(idx, probe, pipeline)?;
                let cond = match condition {
                    // exec's NL join streams the OUTER first in its output
                    // schema; our logical schema is build ++ probe, so the
                    // materialized inner (build) side is the exec outer...
                    // To keep build ++ probe column order, exec outer =
                    // build is wrong — instead we materialize the build
                    // side as exec's inner and flip the concat by making
                    // the probe stream the exec outer, then reproject.
                    JoinCondition::Equi {
                        build_key,
                        probe_key,
                    } => NlCondition::Equi(*probe_key, *build_key),
                    JoinCondition::Theta(e) => NlCondition::Theta(remap_theta(
                        e,
                        build.schema.arity(),
                        probe.schema.arity(),
                    )),
                    JoinCondition::Cross => NlCondition::Cross,
                };
                // exec output = outer(probe) ++ inner(build); we need
                // build ++ probe, so append a projection that swaps sides.
                let mut nl = NestedLoopsJoin::new(outer_op, inner_op, cond, Arc::clone(&m));
                if self.opts.mode != EstimationMode::Off {
                    // §4.1.3: nested-loops estimation reduces to dne.
                    nl = nl.with_dne(outer_estimate.round() as u64, plan.estimate);
                    self.set_label(idx, "dne");
                }
                let probe_arity = probe.schema.arity();
                let build_arity = build.schema.arity();
                let swap: Vec<qprog_exec::expr::Expr> = (0..build_arity)
                    .map(|i| qprog_exec::expr::Expr::Column(probe_arity + i))
                    .chain((0..probe_arity).map(qprog_exec::expr::Expr::Column))
                    .collect();
                let (pidx, pm) = self.register_idx("project(swap)", plan.estimate, pipeline);
                self.op_inputs[pidx].push(idx);
                Ok(Box::new(Project::new(
                    Box::new(nl),
                    swap,
                    Arc::clone(&plan.schema),
                    pm,
                )))
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn compile_binary_hash_join(
        &mut self,
        plan: &LogicalPlan,
        build: &LogicalPlan,
        probe: &LogicalPlan,
        condition: &JoinCondition,
        kind: JoinKind,
        pipeline: usize,
        agg_tracker: Option<Arc<Mutex<DistinctTracker>>>,
    ) -> QResult<BoxedOp> {
        let JoinCondition::Equi {
            build_key,
            probe_key,
        } = condition
        else {
            return Err(QError::plan("hash join requires an equi-join condition"));
        };
        let (idx, m) = self.register_idx("hash_join", plan.estimate, pipeline);
        self.set_label(idx, self.join_label());
        let build_pipeline = self.pipelines.new_pipeline();
        let probe_estimate = probe.estimate;
        let build_op = self.compile_child(idx, build, build_pipeline)?;
        let probe_op = self.compile_child(idx, probe, pipeline)?;
        let estimation = match self.opts.mode {
            EstimationMode::Off => JoinEstimation::Off,
            EstimationMode::Once => JoinEstimation::Once {
                probe_size_hint: probe_estimate.round() as u64,
            },
            EstimationMode::Dne => JoinEstimation::Dne {
                optimizer_estimate: plan.estimate,
            },
            EstimationMode::Byte => JoinEstimation::Byte {
                optimizer_estimate: plan.estimate,
                probe_row_bytes: row_bytes(probe),
            },
        };
        let mut hj = HashJoin::new(build_op, probe_op, *build_key, *probe_key, estimation, m)
            .with_join_kind(kind)
            .with_partitions(self.opts.partitions)
            .with_threads(self.opts.threads);
        if let Some(tracker) = agg_tracker {
            hj = hj.with_agg_pushdown(tracker);
        }
        Ok(Box::new(hj))
    }

    /// Compile a chain of ≥2 hash or merge joins as one Algorithm-1
    /// pipeline. `chain` is bottom-up: `chain[0]` is the lowest join.
    fn compile_join_chain(
        &mut self,
        chain: &[&LogicalPlan],
        algo: JoinAlgo,
        pipeline: usize,
        agg_tracker: Option<Arc<Mutex<DistinctTracker>>>,
    ) -> QResult<BoxedOp> {
        // Resolve the probe-attribute source of each join through column
        // provenance (join output schema = build ++ probe).
        let mut specs = Vec::with_capacity(chain.len());
        for (j, node) in chain.iter().enumerate() {
            let Node::Join {
                condition:
                    JoinCondition::Equi {
                        build_key,
                        probe_key,
                    },
                ..
            } = &node.node
            else {
                return Err(QError::internal("hash chain contains a non-equi join"));
            };
            specs.push(JoinSpec {
                build_attr_col: *build_key,
                probe_attr: resolve_attr_source(chain, j, *probe_key),
            });
        }
        let lowest_probe = join_probe_child(chain[0]);
        let probe_size = lowest_probe.estimate.round() as u64;
        // Validate the pipeline shape BEFORE registering any operators so a
        // fallback leaves no stray metrics behind.
        let estimator = PipelineEstimator::new(specs, probe_size)?;

        let op_name = match algo {
            JoinAlgo::Hash => "hash_join",
            JoinAlgo::Merge => "merge_join",
            JoinAlgo::NestedLoops => {
                return Err(QError::internal("nested-loops joins do not pipeline"))
            }
        };
        let mut join_indices = Vec::with_capacity(chain.len());
        let metrics: Vec<Arc<OpMetrics>> = chain
            .iter()
            .map(|node| {
                let (idx, m) = self.register_idx(op_name, node.estimate, pipeline);
                join_indices.push(idx);
                m
            })
            .collect();
        for &idx in &join_indices {
            self.set_label(idx, "pipeline");
        }
        let handle = Arc::new(Mutex::new(PipelineShared {
            estimator,
            metrics: metrics.clone(),
        }));

        let lowest_probe_idx = self.registry.len();
        let mut cur: BoxedOp = self.compile(lowest_probe, pipeline)?;
        let lowest_probe_idx = self.chain_root.take().unwrap_or(lowest_probe_idx);
        self.op_inputs[join_indices[0]].push(lowest_probe_idx);
        for (j, node) in chain.iter().enumerate() {
            let Node::Join {
                build,
                condition:
                    JoinCondition::Equi {
                        build_key,
                        probe_key,
                    },
                ..
            } = &node.node
            else {
                unreachable!("validated above");
            };
            let build_pipeline = self.pipelines.new_pipeline();
            let build_op = self.compile_child(join_indices[j], build, build_pipeline)?;
            if j > 0 {
                self.op_inputs[join_indices[j]].push(join_indices[j - 1]);
            }
            cur = match algo {
                JoinAlgo::Hash => {
                    let mut hj = HashJoin::new(
                        build_op,
                        cur,
                        *build_key,
                        *probe_key,
                        JoinEstimation::Pipeline {
                            handle: Arc::clone(&handle),
                            join_index: j,
                            lowest: j == 0,
                        },
                        Arc::clone(&metrics[j]),
                    )
                    .with_partitions(self.opts.partitions)
                    .with_threads(self.opts.threads);
                    if j == chain.len() - 1 {
                        if let Some(tracker) = &agg_tracker {
                            hj = hj.with_agg_pushdown(Arc::clone(tracker));
                        }
                    }
                    Box::new(hj)
                }
                JoinAlgo::Merge => Box::new(MergeJoin::new(
                    build_op,
                    cur,
                    *build_key,
                    *probe_key,
                    MergeJoinEstimation::Pipeline {
                        handle: Arc::clone(&handle),
                        join_index: j,
                        lowest: j == 0,
                    },
                    Arc::clone(&metrics[j]),
                )),
                JoinAlgo::NestedLoops => unreachable!("rejected above"),
            };
        }
        // Joins were registered bottom-up, so this subtree's root operator
        // is the LAST chain index, not the first one registered — leave it
        // for the caller's op-tree bookkeeping.
        self.chain_root = Some(*join_indices.last().expect("chain.len() >= 2"));
        Ok(cur)
    }
}

/// Collect the maximal chain of inner equi-joins of one algorithm
/// connected through probe children, returned bottom-up (`[0]` = lowest).
fn collect_join_chain(top: &LogicalPlan, chain_algo: JoinAlgo) -> Vec<&LogicalPlan> {
    let mut top_down = Vec::new();
    let mut cur = top;
    while let Node::Join {
        probe,
        condition: JoinCondition::Equi { .. },
        algo,
        kind: JoinKind::Inner,
        ..
    } = &cur.node
    {
        if *algo != chain_algo {
            break;
        }
        top_down.push(cur);
        cur = probe;
    }
    top_down.reverse();
    top_down
}

/// The probe child of a join node.
fn join_probe_child(plan: &LogicalPlan) -> &LogicalPlan {
    match &plan.node {
        Node::Join { probe, .. } => probe,
        _ => unreachable!("caller guarantees a join node"),
    }
}

/// Resolve where join `j`'s probe key (an index into its probe input's
/// schema) originates: a column of the lowest probe stream, or a column of
/// a lower join's build relation.
fn resolve_attr_source(chain: &[&LogicalPlan], j: usize, col: usize) -> AttrSource {
    if j == 0 {
        return AttrSource::Probe { col };
    }
    // Probe input of join j is the output of join j-1: build ++ probe.
    let below = chain[j - 1];
    let Node::Join { build, .. } = &below.node else {
        unreachable!("chain contains only joins");
    };
    let build_arity = build.schema.arity();
    if col < build_arity {
        AttrSource::Build { join: j - 1, col }
    } else {
        resolve_attr_source(chain, j - 1, col - build_arity)
    }
}

/// Whether aggregate group column `g` is the join key of the hash join
/// directly below (either side) — the §4.2 push-down condition.
fn group_col_is_join_key(input: &LogicalPlan, g: usize) -> bool {
    let Node::Join {
        build,
        condition: JoinCondition::Equi {
            build_key,
            probe_key,
        },
        algo: JoinAlgo::Hash,
        kind: JoinKind::Inner,
        ..
    } = &input.node
    else {
        return false;
    };
    let build_arity = build.schema.arity();
    (g < build_arity && g == *build_key) || (g >= build_arity && g - build_arity == *probe_key)
}

/// Fixed-width byte estimate of a plan's rows (for the byte baseline).
fn row_bytes(plan: &LogicalPlan) -> u64 {
    (plan.schema.arity() as u64) * 8
}

/// Rewrite a theta predicate from (build ++ probe) indexing to exec's
/// (outer=probe ++ inner=build) indexing.
fn remap_theta(
    e: &qprog_exec::expr::Expr,
    build_arity: usize,
    probe_arity: usize,
) -> qprog_exec::expr::Expr {
    use qprog_exec::expr::Expr;
    match e {
        Expr::Column(i) => {
            if *i < build_arity {
                Expr::Column(probe_arity + i)
            } else {
                Expr::Column(i - build_arity)
            }
        }
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Not(inner) => Expr::Not(Box::new(remap_theta(inner, build_arity, probe_arity))),
        Expr::IsNull { expr, negate } => Expr::IsNull {
            expr: Box::new(remap_theta(expr, build_arity, probe_arity)),
            negate: *negate,
        },
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(remap_theta(left, build_arity, probe_arity)),
            right: Box::new(remap_theta(right, build_arity, probe_arity)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use qprog_exec::expr::{BinOp, Expr};
    use qprog_exec::ops::agg::AggFunc;
    use qprog_storage::{Catalog, Table};
    use qprog_types::{row, DataType, Field, Schema};

    /// customer(custkey, nationkey) with skew-free keys; nation(nationkey).
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut customer = Table::new(
            "customer",
            Schema::new(vec![
                Field::new("custkey", DataType::Int64),
                Field::new("nationkey", DataType::Int64),
            ]),
        );
        for i in 0..2000i64 {
            customer.push(row![i, i % 25]).unwrap();
        }
        let mut nation = Table::new(
            "nation",
            Schema::new(vec![
                Field::new("nationkey", DataType::Int64),
                Field::new("regionkey", DataType::Int64),
            ]),
        );
        for i in 0..25i64 {
            nation.push(row![i, i % 5]).unwrap();
        }
        let mut region = Table::new(
            "region",
            Schema::new(vec![Field::new("regionkey", DataType::Int64)]),
        );
        for i in 0..5i64 {
            region.push(row![i]).unwrap();
        }
        c.register(customer).unwrap();
        c.register(nation).unwrap();
        c.register(region).unwrap();
        c
    }

    fn two_join_plan(b: &PlanBuilder) -> LogicalPlan {
        // region ⋈ (nation ⋈ customer): chain of 2 hash joins on
        // different attributes, Case 2 flavor (regionkey comes from nation,
        // the lower build relation).
        b.scan("customer")
            .unwrap()
            .hash_join(
                b.scan("nation").unwrap(),
                "nation.nationkey",
                "customer.nationkey",
            )
            .unwrap()
            .hash_join(
                b.scan("region").unwrap(),
                "region.regionkey",
                "nation.regionkey",
            )
            .unwrap()
    }

    fn run_all_modes(plan: &LogicalPlan) -> Vec<usize> {
        EstimationMode::ALL
            .iter()
            .map(|&mode| {
                let mut q = compile(plan, &PhysicalOptions::with_mode(mode)).unwrap();
                q.collect().unwrap().len()
            })
            .collect()
    }

    #[test]
    fn results_identical_across_modes() {
        let b = PlanBuilder::new(catalog());
        let plan = two_join_plan(&b);
        let counts = run_all_modes(&plan);
        assert!(counts.iter().all(|&c| c == 2000), "{counts:?}");
    }

    #[test]
    fn pipeline_chain_estimates_converge_early() {
        let b = PlanBuilder::new(catalog());
        let plan = two_join_plan(&b);
        let mut q = compile(&plan, &PhysicalOptions::with_mode(EstimationMode::Once)).unwrap();
        // one output row → preprocessing done → both joins exact
        let first = q.step().unwrap();
        assert!(first.is_some());
        let totals: Vec<(String, f64)> = q
            .registry()
            .iter()
            .filter(|(n, _)| *n == "hash_join")
            .map(|(n, m)| (n.to_string(), m.estimated_total()))
            .collect();
        assert_eq!(totals.len(), 2);
        for (_, t) in &totals {
            assert_eq!(
                *t, 2000.0,
                "join estimates must be exact after preprocessing"
            );
        }
    }

    #[test]
    fn pipelines_are_decomposed() {
        let b = PlanBuilder::new(catalog());
        let plan = two_join_plan(&b);
        let q = compile(&plan, &PhysicalOptions::default()).unwrap();
        // root pipeline + one per build side = 3
        assert_eq!(q.pipelines().len(), 3);
        let tracker = q.tracker();
        assert_eq!(tracker.fraction(), 0.0);
    }

    #[test]
    fn progress_reaches_one_at_completion() {
        let b = PlanBuilder::new(catalog());
        let plan = two_join_plan(&b);
        let mut q = compile(&plan, &PhysicalOptions::default()).unwrap();
        let tracker = q.tracker();
        let mut last = 0.0;
        let rows = q
            .run_with(100, |snap| {
                let f = snap.fraction();
                assert!((0.0..=1.0).contains(&f));
                last = f;
            })
            .unwrap();
        assert_eq!(rows.len(), 2000);
        assert_eq!(last, 1.0);
        assert!(tracker.snapshot().is_complete());
    }

    #[test]
    fn aggregation_pushdown_is_wired() {
        let b = PlanBuilder::new(catalog());
        // GROUP BY customer.nationkey directly above the nation⋈customer
        // hash join on nationkey → push-down applies.
        let plan = b
            .scan("customer")
            .unwrap()
            .hash_join(
                b.scan("nation").unwrap(),
                "nation.nationkey",
                "customer.nationkey",
            )
            .unwrap()
            .aggregate(
                &["customer.nationkey"],
                &[(AggFunc::CountStar, None, "cnt")],
            )
            .unwrap();
        let mut q = compile(&plan, &PhysicalOptions::with_mode(EstimationMode::Once)).unwrap();
        let rows = q.collect().unwrap();
        assert_eq!(rows.len(), 25);
        // The aggregate's estimate converged to the exact group count.
        let agg_total = q
            .registry()
            .iter()
            .find(|(n, _)| *n == "hash_agg")
            .map(|(_, m)| m.estimated_total())
            .unwrap();
        assert_eq!(agg_total, 25.0);
    }

    #[test]
    fn merge_and_nl_joins_compile_and_agree() {
        let b = PlanBuilder::new(catalog());
        for algo in [JoinAlgo::Merge, JoinAlgo::NestedLoops] {
            let plan = b
                .scan("customer")
                .unwrap()
                .join_build(
                    b.scan("nation").unwrap(),
                    "nation.nationkey",
                    "customer.nationkey",
                    algo,
                )
                .unwrap();
            for mode in EstimationMode::ALL {
                let mut q = compile(&plan, &PhysicalOptions::with_mode(mode)).unwrap();
                let rows = q.collect().unwrap();
                assert_eq!(rows.len(), 2000, "{algo:?}/{mode:?}");
                // schema order must be build ++ probe in all algos
                assert_eq!(rows[0].arity(), 4);
            }
        }
    }

    #[test]
    fn filter_and_projection_run() {
        let b = PlanBuilder::new(catalog());
        let scan = b.scan("customer").unwrap();
        let pred = Expr::binary(
            BinOp::Lt,
            scan.col_expr("custkey").unwrap(),
            Expr::lit(100i64),
        );
        let plan = scan
            .filter(pred)
            .unwrap()
            .project(vec![(Expr::col(1), "nk")])
            .unwrap()
            .sort(&[("nk", true)])
            .unwrap()
            .limit(7)
            .unwrap();
        let mut q = compile(&plan, &PhysicalOptions::default()).unwrap();
        let rows = q.collect().unwrap();
        assert_eq!(rows.len(), 7);
        assert!(rows.windows(2).all(|w| {
            w[0].get(0).unwrap().as_i64().unwrap() <= w[1].get(0).unwrap().as_i64().unwrap()
        }));
    }

    #[test]
    fn theta_nl_join_respects_schema_order() {
        let b = PlanBuilder::new(catalog());
        let probe = b.scan("region").unwrap();
        let build = b.scan("nation").unwrap();
        // condition in build ++ probe indexing: nation.regionkey(1) = region.regionkey(2)
        let pred = Expr::binary(BinOp::Eq, Expr::col(1), Expr::col(2));
        let plan = probe
            .nl_join(build, crate::logical::JoinCondition::Theta(pred))
            .unwrap();
        let mut q = compile(&plan, &PhysicalOptions::default()).unwrap();
        let rows = q.collect().unwrap();
        assert_eq!(rows.len(), 25);
        for r in &rows {
            assert_eq!(r.get(1).unwrap(), r.get(2).unwrap());
        }
    }

    #[test]
    fn sort_aggregate_option_agrees_with_hash_aggregate() {
        let b = PlanBuilder::new(catalog());
        let plan = b
            .scan("customer")
            .unwrap()
            .aggregate(&["nationkey"], &[(AggFunc::CountStar, None, "cnt")])
            .unwrap();
        let hash_rows: Vec<String> = compile(&plan, &PhysicalOptions::default())
            .unwrap()
            .collect()
            .unwrap()
            .iter()
            .map(|r| r.to_string())
            .collect();
        let opts = PhysicalOptions {
            sort_aggregate: true,
            ..PhysicalOptions::default()
        };
        let mut q = compile(&plan, &opts).unwrap();
        let sort_rows: Vec<String> = q.collect().unwrap().iter().map(|r| r.to_string()).collect();
        assert_eq!(hash_rows, sort_rows);
        let agg_total = q
            .registry()
            .iter()
            .find(|(n, _)| *n == "sort_agg")
            .map(|(_, m)| m.estimated_total())
            .unwrap();
        assert_eq!(agg_total, 25.0);
    }

    #[test]
    fn dne_and_byte_estimates_converge_by_completion() {
        let b = PlanBuilder::new(catalog());
        let plan = two_join_plan(&b);
        for mode in [EstimationMode::Dne, EstimationMode::Byte] {
            let mut q = compile(&plan, &PhysicalOptions::with_mode(mode)).unwrap();
            q.collect().unwrap();
            for (name, m) in q.registry().iter() {
                if name == "hash_join" {
                    assert_eq!(m.estimated_total(), 2000.0, "{mode:?}");
                }
            }
        }
    }
}

#[cfg(test)]
mod merge_chain_tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use qprog_storage::{Catalog, Table};
    use qprog_types::{row, DataType, Field, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for (name, domain) in [("t1", 40i64), ("t2", 40), ("t3", 40)] {
            let mut t = Table::new(name, Schema::new(vec![Field::new("k", DataType::Int64)]));
            for i in 0..800i64 {
                t.push(row![i % domain]).unwrap();
            }
            c.register(t).unwrap();
        }
        c
    }

    /// A chain of two merge joins on the same attribute shares one
    /// push-down estimator: both joins are exact after the lowest sort
    /// consume, before the upper merge emits (§4.1.4.3).
    #[test]
    fn merge_chain_estimates_converge_early() {
        let b = PlanBuilder::new(catalog());
        let plan = b
            .scan("t1")
            .unwrap()
            .join_build(b.scan("t2").unwrap(), "t2.k", "t1.k", JoinAlgo::Merge)
            .unwrap()
            .join_build(b.scan("t3").unwrap(), "t3.k", "t2.k", JoinAlgo::Merge)
            .unwrap();
        let mut q = compile(&plan, &PhysicalOptions::with_mode(EstimationMode::Once)).unwrap();
        let first = q.step().unwrap();
        assert!(first.is_some());
        let totals: Vec<f64> = q
            .registry()
            .iter()
            .filter(|(n, _)| *n == "merge_join")
            .map(|(_, m)| m.estimated_total())
            .collect();
        assert_eq!(totals.len(), 2);
        // count remaining output and compare
        let mut counts = [1u64; 1];
        while q.step().unwrap().is_some() {
            counts[0] += 1;
        }
        // chain metrics register bottom-up: totals[0] is the lower join
        // (800·20 = 16_000 rows), totals[1] the upper (×20 again)
        assert_eq!(totals[0], 16_000.0);
        assert_eq!(totals[1], 320_000.0);
        assert_eq!(counts[0], 320_000);
    }

    /// Merge chains and hash chains produce identical results.
    #[test]
    fn merge_chain_matches_hash_chain_results() {
        let b = PlanBuilder::new(catalog());
        let mut results = Vec::new();
        for algo in [JoinAlgo::Hash, JoinAlgo::Merge] {
            let plan = b
                .scan("t1")
                .unwrap()
                .join_build(b.scan("t2").unwrap(), "t2.k", "t1.k", algo)
                .unwrap()
                .join_build(b.scan("t3").unwrap(), "t3.k", "t2.k", algo)
                .unwrap();
            let mut q = compile(&plan, &PhysicalOptions::default()).unwrap();
            results.push(q.collect().unwrap().len());
        }
        assert_eq!(results[0], results[1]);
    }
}
