//! Optimizer-grade cardinality estimation.
//!
//! These are the *initial* estimates progress indicators start from; the
//! online framework's whole purpose is to refine them. The assumptions are
//! the textbook ones (and PostgreSQL's): uniformity within histogram
//! buckets, attribute independence, and join containment
//! (`|R ⋈ S| = |R|·|S| / max(ndv_R, ndv_S)`), all of which Zipfian skew
//! violates.

use qprog_exec::expr::{BinOp, Expr};
use qprog_types::Value;

use crate::logical::{ColStat, JoinCondition, LogicalPlan};

/// Default selectivity for predicates the estimator cannot analyze
/// (PostgreSQL uses 1/3 for range guesses).
pub const DEFAULT_SELECTIVITY: f64 = 0.33;

/// Default equality selectivity without statistics.
pub const DEFAULT_EQ_SELECTIVITY: f64 = 0.005;

/// Estimate the selectivity of `predicate` over input columns with the
/// given statistics provenance.
pub fn predicate_selectivity(predicate: &Expr, col_stats: &[ColStat]) -> f64 {
    match predicate {
        Expr::Binary { op, left, right } => match op {
            BinOp::And => {
                // independence assumption
                predicate_selectivity(left, col_stats) * predicate_selectivity(right, col_stats)
            }
            BinOp::Or => {
                let a = predicate_selectivity(left, col_stats);
                let b = predicate_selectivity(right, col_stats);
                (a + b - a * b).clamp(0.0, 1.0)
            }
            BinOp::Eq => comparison_selectivity(left, right, col_stats, ComparisonKind::Eq),
            BinOp::Lt | BinOp::LtEq => {
                comparison_selectivity(left, right, col_stats, ComparisonKind::Lt)
            }
            BinOp::Gt | BinOp::GtEq => {
                comparison_selectivity(left, right, col_stats, ComparisonKind::Gt)
            }
            BinOp::NotEq => {
                1.0 - comparison_selectivity(left, right, col_stats, ComparisonKind::Eq)
            }
            _ => DEFAULT_SELECTIVITY,
        },
        Expr::Not(inner) => 1.0 - predicate_selectivity(inner, col_stats),
        Expr::Literal(Value::Bool(true)) => 1.0,
        Expr::Literal(Value::Bool(false)) => 0.0,
        _ => DEFAULT_SELECTIVITY,
    }
}

enum ComparisonKind {
    Eq,
    Lt,
    Gt,
}

fn comparison_selectivity(
    left: &Expr,
    right: &Expr,
    col_stats: &[ColStat],
    kind: ComparisonKind,
) -> f64 {
    // Only `col op literal` / `literal op col` is analyzed.
    let (col, lit, flipped) = match (left, right) {
        (Expr::Column(c), Expr::Literal(v)) => (*c, v, false),
        (Expr::Literal(v), Expr::Column(c)) => (*c, v, true),
        _ => return DEFAULT_SELECTIVITY,
    };
    let Some(Some(stats)) = col_stats.get(col) else {
        return match kind {
            ComparisonKind::Eq => DEFAULT_EQ_SELECTIVITY,
            _ => DEFAULT_SELECTIVITY,
        };
    };
    match kind {
        ComparisonKind::Eq => stats.eq_selectivity(lit),
        ComparisonKind::Lt | ComparisonKind::Gt => {
            let lt = match (&stats.histogram, lit) {
                (Some(h), Value::Int64(v)) => h.lt_selectivity(*v),
                _ => return DEFAULT_SELECTIVITY,
            };
            let effective_lt = if flipped { 1.0 - lt } else { lt };
            match kind {
                ComparisonKind::Lt => effective_lt,
                ComparisonKind::Gt => 1.0 - effective_lt,
                ComparisonKind::Eq => unreachable!(),
            }
        }
    }
}

/// Containment-assumption equi-join estimate.
pub fn join_estimate(
    build_rows: f64,
    probe_rows: f64,
    build_stat: &ColStat,
    probe_stat: &ColStat,
) -> f64 {
    let ndv_build = build_stat.as_ref().map(|s| s.ndv).unwrap_or(0);
    let ndv_probe = probe_stat.as_ref().map(|s| s.ndv).unwrap_or(0);
    let max_ndv = ndv_build.max(ndv_probe) as f64;
    if max_ndv < 1.0 {
        // no stats: fall back to a fixed key-selectivity guess
        return (build_rows * probe_rows * DEFAULT_EQ_SELECTIVITY).max(1.0);
    }
    (build_rows * probe_rows / max_ndv).max(1.0)
}

/// Group-count estimate for an aggregation.
pub fn group_estimate(input_rows: f64, group_stats: &[&ColStat]) -> f64 {
    if group_stats.is_empty() {
        return 1.0; // global aggregation
    }
    // independence: product of per-column NDVs, capped by input size
    let mut ndv = 1.0f64;
    let mut any = false;
    for s in group_stats {
        if let Some(st) = s.as_ref() {
            ndv *= st.ndv.max(1) as f64;
            any = true;
        }
    }
    if !any {
        ndv = (input_rows / 10.0).max(1.0); // PostgreSQL-style fallback
    }
    ndv.min(input_rows).max(1.0)
}

/// Estimate the output cardinality of a join node given its children.
pub fn join_node_estimate(
    build: &LogicalPlan,
    probe: &LogicalPlan,
    condition: &JoinCondition,
) -> f64 {
    match condition {
        JoinCondition::Cross => (build.estimate * probe.estimate).max(1.0),
        JoinCondition::Theta(_) => (build.estimate * probe.estimate * DEFAULT_SELECTIVITY).max(1.0),
        JoinCondition::Equi {
            build_key,
            probe_key,
        } => {
            let none: ColStat = None;
            let bs = build.col_stats.get(*build_key).unwrap_or(&none);
            let ps = probe.col_stats.get(*probe_key).unwrap_or(&none);
            join_estimate(build.estimate, probe.estimate, bs, ps)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qprog_storage::stats::{ColumnStats, EquiWidthHistogram};
    use std::sync::Arc;

    fn uniform_stats(n: u64, ndv: u64) -> ColStat {
        let vals: Vec<i64> = (0..n as i64).map(|i| i % ndv as i64).collect();
        Some(Arc::new(ColumnStats {
            ndv,
            null_count: 0,
            histogram: EquiWidthHistogram::build(vals, 16),
        }))
    }

    #[test]
    fn eq_selectivity_uses_stats() {
        let stats = vec![uniform_stats(1000, 100)];
        let pred = Expr::binary(BinOp::Eq, Expr::col(0), Expr::lit(42i64));
        let s = predicate_selectivity(&pred, &stats);
        assert!((s - 0.01).abs() < 0.005, "got {s}");
    }

    #[test]
    fn range_selectivity_interpolates() {
        let stats = vec![uniform_stats(1000, 1000)];
        let pred = Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(250i64));
        let s = predicate_selectivity(&pred, &stats);
        assert!((s - 0.25).abs() < 0.05, "got {s}");
        // flipped literal: 250 < col ⇒ ~0.75
        let pred = Expr::binary(BinOp::Lt, Expr::lit(250i64), Expr::col(0));
        let s = predicate_selectivity(&pred, &stats);
        assert!((s - 0.75).abs() < 0.05, "got {s}");
    }

    #[test]
    fn and_multiplies_or_adds() {
        let stats = vec![uniform_stats(1000, 1000), uniform_stats(1000, 1000)];
        let half = |c| Expr::binary(BinOp::Lt, Expr::col(c), Expr::lit(500i64));
        let s_and = predicate_selectivity(&half(0).and(half(1)), &stats);
        assert!((s_and - 0.25).abs() < 0.05, "got {s_and}");
        let s_or = predicate_selectivity(&Expr::binary(BinOp::Or, half(0), half(1)), &stats);
        assert!((s_or - 0.75).abs() < 0.05, "got {s_or}");
    }

    #[test]
    fn unanalyzable_predicates_get_default() {
        let pred = Expr::binary(BinOp::Eq, Expr::col(0), Expr::col(1));
        assert_eq!(
            predicate_selectivity(&pred, &[None, None]),
            DEFAULT_SELECTIVITY
        );
        let pred = Expr::binary(BinOp::Eq, Expr::col(0), Expr::lit(1i64));
        assert_eq!(
            predicate_selectivity(&pred, &[None]),
            DEFAULT_EQ_SELECTIVITY
        );
    }

    #[test]
    fn join_containment() {
        let a = uniform_stats(0, 100);
        let b = uniform_stats(0, 25);
        let est = join_estimate(1000.0, 500.0, &a, &b);
        assert!((est - 1000.0 * 500.0 / 100.0).abs() < 1e-9);
        // no stats fallback
        let est = join_estimate(1000.0, 500.0, &None, &None);
        assert!(est > 1.0);
    }

    #[test]
    fn group_estimates() {
        let s = uniform_stats(0, 40);
        assert_eq!(group_estimate(1000.0, &[&s]), 40.0);
        // capped at input size
        let s = uniform_stats(0, 5000);
        assert_eq!(group_estimate(1000.0, &[&s]), 1000.0);
        // global agg
        assert_eq!(group_estimate(1000.0, &[]), 1.0);
        // no stats fallback
        assert_eq!(group_estimate(1000.0, &[&None]), 100.0);
    }

    #[test]
    fn not_inverts() {
        let stats = vec![uniform_stats(1000, 1000)];
        let pred = Expr::Not(Box::new(Expr::binary(
            BinOp::Lt,
            Expr::col(0),
            Expr::lit(250i64),
        )));
        let s = predicate_selectivity(&pred, &stats);
        assert!((s - 0.75).abs() < 0.05, "got {s}");
    }
}
