//! Prometheus text exposition format (version 0.0.4) rendering.
//!
//! Families render in sorted name order, children in sorted label-signature
//! order, so consecutive scrapes of an unchanged registry are byte-stable.

use crate::{Family, Instrument, LabelSet, Registry, Sample};

/// Content-Type for the rendered output.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Escape a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape `# HELP` text: `\` → `\\`, newline → `\n`.
pub fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// A float in exposition form (`+Inf`/`-Inf`/`NaN` per the format spec).
pub fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", parts.join(","))
}

fn with_le(labels: &LabelSet, le: &str) -> Vec<(String, String)> {
    let mut l = labels.clone();
    l.push(("le".to_string(), le.to_string()));
    l
}

fn family_samples(name: &str, family: &Family, out: &mut Vec<Sample>) {
    for (labels, child) in &family.children {
        match child {
            Instrument::Counter(c) => out.push(Sample {
                name: name.to_string(),
                labels: labels.clone(),
                value: c.get() as f64,
            }),
            Instrument::Gauge(g) => out.push(Sample {
                name: name.to_string(),
                labels: labels.clone(),
                value: g.get(),
            }),
            Instrument::Histogram(h) => {
                let cum = h.cumulative_counts();
                for (i, &bound) in h.bounds().iter().enumerate() {
                    out.push(Sample {
                        name: format!("{name}_bucket"),
                        labels: with_le(labels, &format_value(bound)),
                        value: cum[i] as f64,
                    });
                }
                out.push(Sample {
                    name: format!("{name}_bucket"),
                    labels: with_le(labels, "+Inf"),
                    value: *cum.last().expect("histogram has a +Inf bucket") as f64,
                });
                out.push(Sample {
                    name: format!("{name}_sum"),
                    labels: labels.clone(),
                    value: h.sum(),
                });
                out.push(Sample {
                    name: format!("{name}_count"),
                    labels: labels.clone(),
                    value: cum[cum.len() - 1] as f64,
                });
            }
        }
    }
}

pub(crate) fn snapshot(registry: &Registry) -> Vec<Sample> {
    let families = registry
        .families
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut out = Vec::new();
    for (name, family) in families.iter() {
        family_samples(name, family, &mut out);
    }
    out
}

pub(crate) fn render(registry: &Registry) -> String {
    let families = registry
        .families
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut out = String::new();
    for (name, family) in families.iter() {
        if !family.help.is_empty() {
            out.push_str(&format!("# HELP {name} {}\n", escape_help(&family.help)));
        }
        out.push_str(&format!("# TYPE {name} {}\n", family.kind.name()));
        let mut samples = Vec::new();
        family_samples(name, family, &mut samples);
        for s in samples {
            out.push_str(&format!(
                "{}{} {}\n",
                s.name,
                label_block(&s.labels),
                format_value(s.value)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn families_render_sorted_with_help_and_type() {
        let r = Registry::new();
        r.counter("zeta_total", "last metric", &[]).inc();
        r.gauge("alpha", "first metric", &[]).set(2.5);
        let text = r.render();
        let alpha = text.find("# TYPE alpha gauge").expect("alpha family");
        let zeta = text.find("# TYPE zeta_total counter").expect("zeta family");
        assert!(alpha < zeta, "families sorted by name:\n{text}");
        assert!(text.contains("# HELP alpha first metric\n"));
        assert!(text.contains("alpha 2.5\n"));
        assert!(text.contains("zeta_total 1\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("m_total", "", &[("q", "a\"b\\c\nd")]).inc();
        let text = r.render();
        assert!(
            text.contains(r#"m_total{q="a\"b\\c\nd"} 1"#),
            "escaped label value:\n{text}"
        );
    }

    #[test]
    fn help_text_is_escaped() {
        let r = Registry::new();
        r.counter("m_total", "line1\nline2 \\ done", &[]);
        let text = r.render();
        assert!(text.contains("# HELP m_total line1\\nline2 \\\\ done\n"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets_sum_count_in_order() {
        let r = Registry::new();
        let h = r.histogram("lat", "latency", &[("op", "scan")], &[1.0, 2.0]);
        for v in [0.5, 1.5, 9.0] {
            h.observe(v);
        }
        let text = r.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                "# HELP lat latency",
                "# TYPE lat histogram",
                "lat_bucket{op=\"scan\",le=\"1\"} 1",
                "lat_bucket{op=\"scan\",le=\"2\"} 2",
                "lat_bucket{op=\"scan\",le=\"+Inf\"} 3",
                "lat_sum{op=\"scan\"} 11",
                "lat_count{op=\"scan\"} 3",
            ]
        );
    }

    #[test]
    fn children_render_in_stable_label_order() {
        let r = Registry::new();
        r.counter("m_total", "", &[("x", "b")]).inc();
        r.counter("m_total", "", &[("x", "a")]).add(2);
        let text = r.render();
        let a = text.find("m_total{x=\"a\"} 2").unwrap();
        let b = text.find("m_total{x=\"b\"} 1").unwrap();
        assert!(a < b, "{text}");
    }

    #[test]
    fn snapshot_expands_histograms() {
        let r = Registry::new();
        r.histogram("h", "", &[], &[1.0]).observe(0.5);
        let names: Vec<String> = r.snapshot().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["h_bucket", "h_bucket", "h_sum", "h_count"]);
    }
}
