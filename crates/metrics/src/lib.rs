//! A lock-cheap metrics registry with Prometheus text exposition.
//!
//! The design separates **registration** (rare, takes a short mutex) from
//! **updates** (hot, lock-free): [`Registry::counter`] /
//! [`Registry::gauge`] / [`Registry::histogram`] resolve a labeled child
//! once and hand back an `Arc` handle whose operations are plain relaxed
//! atomics. Re-registering the same `(name, labels)` pair returns the
//! existing handle, so instruments can be resolved from anywhere without
//! coordination.
//!
//! Snapshots ([`Registry::render`], [`Registry::snapshot`]) iterate every
//! family in stable (sorted) name order and read the live atomics — no
//! stop-the-world, no double buffering. Counter and histogram reads taken
//! while writers are running are therefore *monotone* across consecutive
//! snapshots, which is exactly what scrape-based consumers assume.
//!
//! The whole crate is `std`-only (no external dependencies), matching the
//! workspace's offline build constraint.

pub mod expose;
pub mod histogram;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub use histogram::Histogram;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a float that can move in either direction (stored as f64 bits).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (CAS loop; gauges are updated rarely).
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(c) => cur = c,
            }
        }
    }

    /// Subtract `delta`.
    pub fn sub(&self, delta: f64) {
        self.add(-delta);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// The kind of a metric family (drives `# TYPE` and rendering shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Free-moving gauge.
    Gauge,
    /// Fixed-bucket histogram.
    Histogram,
}

impl MetricKind {
    /// Prometheus `# TYPE` keyword.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One labeled child of a family.
#[derive(Debug, Clone)]
pub(crate) enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Label pairs, sorted by key at registration so identical label sets
/// compare equal regardless of caller ordering.
pub(crate) type LabelSet = Vec<(String, String)>;

#[derive(Debug)]
pub(crate) struct Family {
    pub(crate) help: String,
    pub(crate) kind: MetricKind,
    /// Children sorted by label signature for stable exposition order.
    pub(crate) children: BTreeMap<LabelSet, Instrument>,
}

/// The registry: metric families keyed by name.
///
/// Cloneable by wrapping in `Arc`; all methods take `&self`.
#[derive(Debug, Default)]
pub struct Registry {
    pub(crate) families: Mutex<BTreeMap<String, Family>>,
}

fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    set.sort();
    set
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Resolve (registering on first use) a counter named `name` with the
    /// given label pairs. Returns the same handle for the same
    /// `(name, labels)` thereafter.
    ///
    /// # Panics
    /// Panics if `name` is already registered with a different kind.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.instrument(name, help, MetricKind::Counter, labels, || {
            Instrument::Counter(Arc::new(Counter::default()))
        }) {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked in instrument()"),
        }
    }

    /// Resolve (registering on first use) a gauge.
    ///
    /// # Panics
    /// Panics if `name` is already registered with a different kind.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.instrument(name, help, MetricKind::Gauge, labels, || {
            Instrument::Gauge(Arc::new(Gauge::default()))
        }) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked in instrument()"),
        }
    }

    /// Resolve (registering on first use) a fixed-bucket histogram. The
    /// bucket bounds apply on first registration; later resolutions of the
    /// same child ignore `buckets`.
    ///
    /// # Panics
    /// Panics if `name` is already registered with a different kind, or if
    /// `buckets` is empty or not strictly increasing.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        buckets: &[f64],
    ) -> Arc<Histogram> {
        match self.instrument(name, help, MetricKind::Histogram, labels, || {
            Instrument::Histogram(Arc::new(Histogram::new(buckets)))
        }) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked in instrument()"),
        }
    }

    fn instrument(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        let set = label_set(labels);
        let mut families = self
            .families
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            children: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name} already registered as {} (requested {})",
            family.kind.name(),
            kind.name()
        );
        family.children.entry(set).or_insert_with(make).clone()
    }

    /// Number of registered families.
    pub fn len(&self) -> usize {
        self.families
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// True iff nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render the whole registry in Prometheus text exposition format
    /// (metric families sorted by name, children by label signature).
    pub fn render(&self) -> String {
        expose::render(self)
    }

    /// Flat snapshot of every sample the registry would expose:
    /// `(metric_name, labels, value)` rows in exposition order. Histogram
    /// children expand to their `_bucket`/`_sum`/`_count` series.
    pub fn snapshot(&self) -> Vec<Sample> {
        expose::snapshot(self)
    }
}

/// One exposed sample, as produced by [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Exposed series name (`foo`, `foo_bucket`, `foo_sum`, ...).
    pub name: String,
    /// Label pairs, sorted by key (`le` appended last for buckets).
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let r = Registry::new();
        let c = r.counter("requests_total", "requests", &[("route", "/x")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // same (name, labels) resolves to the same handle
        let c2 = r.counter("requests_total", "requests", &[("route", "/x")]);
        c2.inc();
        assert_eq!(c.get(), 6);
        // different labels, different child
        let c3 = r.counter("requests_total", "requests", &[("route", "/y")]);
        assert_eq!(c3.get(), 0);

        let g = r.gauge("live", "live", &[]);
        g.set(3.5);
        g.add(1.0);
        g.sub(0.5);
        assert_eq!(g.get(), 4.0);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn label_order_is_normalized() {
        let r = Registry::new();
        let a = r.counter("m", "", &[("b", "2"), ("a", "1")]);
        let b = r.counter("m", "", &[("a", "1"), ("b", "2")]);
        a.inc();
        assert_eq!(b.get(), 1, "same child regardless of label order");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("m", "", &[]);
        r.gauge("m", "", &[]);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let r = Arc::new(Registry::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let c = r.counter("hits_total", "", &[("t", "x")]);
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.counter("hits_total", "", &[("t", "x")]).get(), 80_000);
    }
}
