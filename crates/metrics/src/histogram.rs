//! Fixed-bucket histograms with lock-free observation.

use std::sync::atomic::{AtomicU64, Ordering};

/// A histogram over fixed, strictly increasing bucket upper bounds (an
/// implicit `+Inf` bucket is always appended). `observe` is a couple of
/// relaxed atomic operations — no locks, no allocation.
#[derive(Debug)]
pub struct Histogram {
    /// Finite upper bounds, strictly increasing.
    bounds: Vec<f64>,
    /// Per-bucket counts (len = bounds.len() + 1; last is the +Inf bucket).
    /// Non-cumulative internally; exposition accumulates.
    counts: Vec<AtomicU64>,
    /// Sum of observed values (f64 bits, CAS-accumulated).
    sum_bits: AtomicU64,
    /// Total observations.
    count: AtomicU64,
}

impl Histogram {
    /// A histogram with the given finite bucket upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty, non-finite, or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite (+Inf is implicit)"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Exponential buckets: `start * factor^i` for `i in 0..count`.
    ///
    /// # Panics
    /// Panics if `start <= 0`, `factor <= 1`, or `count == 0`.
    pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
        assert!(start > 0.0 && factor > 1.0 && count > 0);
        (0..count).map(|i| start * factor.powi(i as i32)).collect()
    }

    /// Record one observation. NaN observations are counted in `+Inf` (they
    /// fit no finite bucket) and excluded from the sum.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() {
            let mut cur = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + v).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(c) => cur = c,
                }
            }
        }
    }

    /// The finite bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Cumulative bucket counts in bound order, ending with the `+Inf`
    /// total (equal to [`count`](Self::count) when no observation raced the
    /// read).
    pub fn cumulative_counts(&self) -> Vec<u64> {
        let mut cum = 0u64;
        self.counts
            .iter()
            .map(|c| {
                cum += c.load(Ordering::Relaxed);
                cum
            })
            .collect()
    }

    /// Sum of all finite observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_the_right_buckets() {
        let h = Histogram::new(&[1.0, 2.0, 5.0]);
        for v in [0.5, 1.0, 1.5, 3.0, 10.0] {
            h.observe(v);
        }
        // buckets: ≤1 → {0.5, 1.0}, ≤2 → +{1.5}, ≤5 → +{3.0}, +Inf → +{10.0}
        assert_eq!(h.cumulative_counts(), vec![2, 3, 4, 5]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn boundary_values_are_inclusive() {
        let h = Histogram::new(&[1.0]);
        h.observe(1.0);
        assert_eq!(h.cumulative_counts(), vec![1, 1]);
    }

    #[test]
    fn nan_goes_to_inf_without_poisoning_sum() {
        let h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(0.5);
        assert_eq!(h.cumulative_counts(), vec![1, 3]);
        assert_eq!(h.sum(), 0.5);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn exponential_buckets_grow_by_factor() {
        let b = Histogram::exponential_buckets(1.0, 2.0, 4);
        assert_eq!(b, vec![1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        Histogram::new(&[2.0, 1.0]);
    }
}
